"""Runtime determinism sanitizer — the dynamic half of the purity contract.

The static half (``repro lint --whole-program``, :mod:`repro.lint.purity`)
proves from source that nothing reachable from the purity roots reads the
wall clock, draws from a hidden global RNG, or mutates cross-session module
state.  Static analysis over-approximates; this module *under*-approximates
from the other side: with ``REPRO_SANITIZE=1`` the session path runs with
tripwires armed, and any impure act that actually executes raises
:class:`SanitizerViolation` at the exact call site.  A fixture that the
static pass flags must also trip here — ``tests/lint/test_purity_crosscheck``
holds the two halves together.

Tripwires (armed only *inside* a :func:`guard` scope, so pytest, hypothesis
and the import machinery are untouched):

* **wall clock** — ``time.time``/``perf_counter``/``monotonic``/
  ``process_time`` (and their ``_ns`` twins) are wrapped; a read inside the
  guard raises unless the calling line (or the line above it) carries a
  ``# repro: allow-...(reason)`` comment — the same inline allowances the
  static pass honours — or the caller lives in the quarantined
  :mod:`repro.obs` package.
* **hidden global RNGs** — module-level draws on :mod:`random` and
  ``numpy.random`` (the shared ``RandomState``) are wrapped the same way.
  Seeded ``random.Random`` / ``numpy`` ``Generator`` instances are
  untouched: per-session RNGs are the *contract*, not a violation.
* **seed registry** — every *materialized* seed (int or flat int tuple)
  passed to ``numpy.random.default_rng`` inside a guard is recorded with
  its call site; constructing a second generator from the **same** seed at
  a **different** site trips (two independent consumers drawing identical
  streams — the dynamic form of SEED002).  Same-site re-construction is
  exempt: rebuilding the same stream for replay is the reproducibility
  contract, not a bug.  The registry clears on entry to each outermost
  guard, so independent sessions never cross-talk.
* **process-boundary generators** — ``repro.experiment.parallel.fork_map``
  is wrapped: shipping a ``numpy`` ``Generator``/``RandomState`` across
  the fork boundary (directly, or inside a tuple/list/dict payload) trips
  inside a guard — the dynamic form of SEED004.  Only container structure
  is scanned, never object attributes: algorithm instances legitimately
  carry internal RNGs across the fork.
* **environment writes** — a :func:`sys.addaudithook` hook trips on
  ``os.putenv`` / ``os.unsetenv`` (which ``os.environ`` mutation routes
  through) and on files opened for writing inside the guard.  Audit hooks
  cannot be removed, so the hook consults module state and goes inert after
  :func:`uninstall`.
* **module-state mutation** — :func:`guard` digests the namespaces of the
  purity roots' host modules (``snapshot_modules`` in ``purity-roots.json``)
  on entry and exit; a changed digest means the session leaked state into
  the process, exactly what PURE001 forbids statically.  The digest recurses
  simple values and in-module classes but reduces foreign instances to
  their type name — algorithm objects legitimately mutate *internal* state
  during a session.
* **hash-seed canary** — :func:`hash_canary` digests the iteration order of
  a fixed string set, which varies with ``PYTHONHASHSEED``.  It does not
  raise (simulation results are required to be hash-seed independent and
  the test suite proves it); runners log it so two runs can prove they
  shared a seed, and the cross-check test asserts it *differs* across
  subprocesses with different seeds.

``datetime.datetime.now`` and friends are static-only: wrapping methods of
C-implemented types is not supported, and DET002 already rejects them at
lint time.
"""

from __future__ import annotations

import hashlib
import linecache
import os
import sys
import types
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

ENV_FLAG = "REPRO_SANITIZE"

DEFAULT_SNAPSHOT_MODULES = (
    "repro.experiment.harness",
    "repro.experiment.parallel",
    "repro.fleet.runner",
)
"""Modules whose namespaces are digested around every guard scope.

Mirrors ``snapshot_modules`` in the checked-in ``purity-roots.json``; the
CLI loads the config when available, while library use (and pool workers,
which must not depend on the CWD) fall back to this constant.
"""

_F = TypeVar("_F", bound=Callable[..., Any])


class SanitizerViolation(RuntimeError):
    """An impure act executed inside a sanitized session scope."""


# ---------------------------------------------------------------------------
# State.
# ---------------------------------------------------------------------------


@dataclass
class _SanitizerState:
    """Process-wide sanitizer bookkeeping (single-threaded by design)."""

    installed: bool = False
    depth: int = 0
    in_hook: bool = False
    snapshot_modules: Tuple[str, ...] = ()
    originals: Dict[str, Tuple[Any, str, Callable[..., Any]]] = field(
        default_factory=dict
    )
    seed_seen: Dict[Tuple[Any, ...], str] = field(default_factory=dict)
    """Normalized materialized seed -> first call site (cleared per guard)."""

    seed_log: List[Tuple[Tuple[Any, ...], str]] = field(default_factory=list)
    """Materialization order, for inspection by tests/tools."""


_STATE = _SanitizerState()
_AUDIT_HOOK_ADDED = False

# Wall-clock functions wrapped on the ``time`` module — mirrors the static
# DET002/PURE002 target list (minus datetime, see module docstring).
_TIME_FUNCTIONS = (
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
)

# Module-level draws on the stdlib's hidden global RNG (subset of the
# static ``_STDLIB_RANDOM_GLOBALS`` list that exists as module functions).
_RANDOM_FUNCTIONS = (
    "random",
    "uniform",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "seed",
    "getrandbits",
    "gauss",
    "normalvariate",
    "expovariate",
    "setstate",
)

# Module-level draws on numpy's shared legacy RandomState.
_NUMPY_RANDOM_FUNCTIONS = (
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "uniform",
    "normal",
    "choice",
    "shuffle",
    "permutation",
    "seed",
)


def enabled() -> bool:
    """Is ``REPRO_SANITIZE`` requested in the environment?"""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def installed() -> bool:
    return _STATE.installed


def active() -> bool:
    """Are tripwires currently armed (installed *and* inside a guard)?"""
    return _STATE.installed and _STATE.depth > 0


# ---------------------------------------------------------------------------
# Allowance: the runtime honours the same inline comments as the linter.
# ---------------------------------------------------------------------------


def _frame_allowed(frame: types.FrameType) -> bool:
    """Does *frame*'s current line carry an inline lint allowance, or does
    the frame live in the quarantined observability package?"""
    filename = frame.f_code.co_filename
    normalized = filename.replace(os.sep, "/")
    if "/repro/obs/" in normalized or normalized.endswith("/repro/obs.py"):
        return True
    for lineno in (frame.f_lineno, frame.f_lineno - 1):
        if lineno <= 0:
            continue
        line = linecache.getline(filename, lineno)
        if "repro: allow-" in line:
            return True
    return False


def _trip(kind: str, name: str, frame: Optional[types.FrameType]) -> None:
    """Raise unless the calling site is allowed."""
    if frame is not None and _frame_allowed(frame):
        return
    location = "<unknown>"
    if frame is not None:
        location = f"{frame.f_code.co_filename}:{frame.f_lineno}"
    raise SanitizerViolation(
        f"{kind} via {name} inside a sanitized session scope at {location} "
        "— the purity contract (see EXPERIMENTS.md) forbids this on the "
        "session path; derive it from the session seed or add a reasoned "
        "'# repro: allow-...' comment"
    )


# ---------------------------------------------------------------------------
# Monkeypatch tripwires (wall clock + global RNGs).
# ---------------------------------------------------------------------------


def _wrap(
    module: Any, attr: str, kind: str, registry_key: str
) -> None:
    original = getattr(module, attr, None)
    if original is None or registry_key in _STATE.originals:
        return

    def tripwire(*args: Any, **kwargs: Any) -> Any:
        if _STATE.installed and _STATE.depth > 0:
            _trip(kind, registry_key, sys._getframe(1))
        return original(*args, **kwargs)

    tripwire.__name__ = getattr(original, "__name__", attr)
    tripwire.__qualname__ = tripwire.__name__
    tripwire.__doc__ = getattr(original, "__doc__", None)
    _STATE.originals[registry_key] = (module, attr, original)
    setattr(module, attr, tripwire)


def install(snapshot_modules: Sequence[str] = ()) -> None:
    """Arm the tripwires (idempotent).

    Patches stay benign outside :func:`guard` scopes: every wrapper defers
    straight to the original unless the guard depth is positive.
    """
    global _AUDIT_HOOK_ADDED
    if _STATE.installed:
        if snapshot_modules:
            _STATE.snapshot_modules = tuple(snapshot_modules)
        return
    import random as _random
    import time as _time

    for name in _TIME_FUNCTIONS:
        _wrap(_time, name, "wall-clock read", f"time.{name}")
    for name in _RANDOM_FUNCTIONS:
        _wrap(_random, name, "global-RNG draw", f"random.{name}")
    try:
        import numpy.random as _np_random
    except ImportError:  # pragma: no cover - numpy is a baked-in dep
        _np_random = None
    if _np_random is not None:
        for name in _NUMPY_RANDOM_FUNCTIONS:
            _wrap(
                _np_random, name, "global-RNG draw", f"numpy.random.{name}"
            )
        _wrap_unseeded_default_rng(_np_random)
    try:
        from repro.experiment import parallel as _parallel
    except ImportError:  # pragma: no cover - core package
        _parallel = None  # type: ignore[assignment]
    if _parallel is not None:
        _wrap_fork_map(_parallel)
    if not _AUDIT_HOOK_ADDED:
        sys.addaudithook(_audit_hook)
        _AUDIT_HOOK_ADDED = True
    _STATE.snapshot_modules = tuple(snapshot_modules)
    _STATE.installed = True


def _normalize_seed(seed: Any) -> Optional[Tuple[Any, ...]]:
    """Registry key for a materialized seed: ints and flat int tuples.

    Anything else (``None``, ``SeedSequence``, arrays, nested tuples) is
    not registered — the registry checks the repo's own seed idioms, not
    every value numpy happens to accept.
    """
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - numpy is a baked-in dep
        _np = None  # type: ignore[assignment]

    def as_int(value: Any) -> Optional[int]:
        if isinstance(value, bool):
            return None
        if isinstance(value, int):
            return int(value)
        if _np is not None and isinstance(value, _np.integer):
            return int(value)
        return None

    direct = as_int(seed)
    if direct is not None:
        return ("int", direct)
    if isinstance(seed, (tuple, list)):
        values: List[int] = []
        for item in seed:
            converted = as_int(item)
            if converted is None:
                return None
            values.append(converted)
        return ("tuple",) + tuple(values)
    return None


def _record_seed(seed: Any, frame: types.FrameType) -> None:
    """Register a materialized seed; trip on a duplicate at a new site."""
    key = _normalize_seed(seed)
    if key is None:
        return
    site = f"{frame.f_code.co_filename}:{frame.f_lineno}"
    prior = _STATE.seed_seen.get(key)
    if prior is None:
        _STATE.seed_seen[key] = site
        _STATE.seed_log.append((key, site))
    elif prior != site:
        _trip(
            "duplicate materialized seed",
            f"numpy.random.default_rng({seed!r}) "
            f"(first materialized at {prior})",
            frame,
        )


def seed_records() -> List[Tuple[Tuple[Any, ...], str]]:
    """Snapshot of the seed registry (normalized seed, first site)."""
    return list(_STATE.seed_log)


def _wrap_unseeded_default_rng(np_random: Any) -> None:
    """Trip *unseeded* ``numpy.random.default_rng()`` construction, and
    feed seeded constructions into the duplicate-seed registry.

    The dynamic counterpart of PURE003/DET001 (unseeded) and SEED002
    (duplicate): a seeded construction is the determinism contract, an
    entropy-seeded one silently breaks replay, and the *same* seed
    materialized at two distinct sites means two independent consumers
    draw identical streams.
    """
    registry_key = "numpy.random.default_rng"
    original = getattr(np_random, "default_rng", None)
    if original is None or registry_key in _STATE.originals:
        return

    def tripwire(seed: Any = None, *args: Any, **kwargs: Any) -> Any:
        if _STATE.installed and _STATE.depth > 0:
            if seed is None:
                _trip(
                    "unseeded RNG construction",
                    "numpy.random.default_rng()",
                    sys._getframe(1),
                )
            else:
                _record_seed(seed, sys._getframe(1))
        return original(seed, *args, **kwargs)

    tripwire.__name__ = "default_rng"
    tripwire.__qualname__ = "default_rng"
    tripwire.__doc__ = getattr(original, "__doc__", None)
    _STATE.originals[registry_key] = (np_random, "default_rng", original)
    np_random.default_rng = tripwire


def _contains_generator(value: Any, depth: int = 3) -> bool:
    """Is a ``Generator``/``RandomState`` visible in container structure?

    Deliberately shallow: tuples/lists/sets/dict-values only, never object
    attributes — fork payloads legitimately carry algorithm instances with
    internal RNGs, and those cross the boundary *inside* their owner.
    """
    try:
        import numpy.random as _np_random
    except ImportError:  # pragma: no cover - numpy is a baked-in dep
        return False
    if isinstance(value, (_np_random.Generator, _np_random.RandomState)):
        return True
    if depth <= 0:
        return False
    if isinstance(value, (list, tuple, set, frozenset)):
        return any(_contains_generator(item, depth - 1) for item in value)
    if isinstance(value, dict):
        return any(
            _contains_generator(item, depth - 1) for item in value.values()
        )
    return False


def _wrap_fork_map(parallel: Any) -> None:
    """Trip when a numpy Generator crosses the fork boundary (SEED004's
    dynamic half).  The check precedes the call, so it fires even on the
    serial (``workers<=1``) fallback path."""
    registry_key = "repro.experiment.parallel.fork_map"
    original = getattr(parallel, "fork_map", None)
    if original is None or registry_key in _STATE.originals:
        return

    def tripwire(*args: Any, **kwargs: Any) -> Any:
        if _STATE.installed and _STATE.depth > 0:
            for value in list(args) + list(kwargs.values()):
                if _contains_generator(value):
                    _trip(
                        "generator crossed a process boundary",
                        "repro.experiment.parallel.fork_map(...)",
                        sys._getframe(1),
                    )
                    break
        return original(*args, **kwargs)

    tripwire.__name__ = "fork_map"
    tripwire.__qualname__ = "fork_map"
    tripwire.__doc__ = getattr(original, "__doc__", None)
    _STATE.originals[registry_key] = (parallel, "fork_map", original)
    parallel.fork_map = tripwire


def uninstall() -> None:
    """Restore every patched function; the audit hook goes inert."""
    for module, attr, original in _STATE.originals.values():
        setattr(module, attr, original)
    _STATE.originals.clear()
    _STATE.installed = False
    _STATE.depth = 0
    _STATE.seed_seen.clear()
    _STATE.seed_log.clear()


# ---------------------------------------------------------------------------
# Audit-hook tripwires (environment + filesystem writes).
# ---------------------------------------------------------------------------

_WRITE_MODE_CHARS = ("w", "a", "x", "+")


def _user_frame() -> Optional[types.FrameType]:
    """First caller frame outside this module and the import machinery."""
    frame: Optional[types.FrameType] = sys._getframe(1)
    here = __file__
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != here and not filename.startswith("<frozen"):
            return frame
        frame = frame.f_back
    return None


def _audit_hook(event: str, args: Tuple[Any, ...]) -> None:
    if not _STATE.installed or _STATE.depth <= 0 or _STATE.in_hook:
        return
    _STATE.in_hook = True
    try:
        if event in ("os.putenv", "os.unsetenv"):
            _trip("environment write", event, _user_frame())
        elif event == "open":
            mode = args[1] if len(args) > 1 else "r"
            if isinstance(mode, str) and any(
                ch in mode for ch in _WRITE_MODE_CHARS
            ):
                _trip(
                    "file opened for writing",
                    f"open({args[0]!r}, {mode!r})",
                    _user_frame(),
                )
    finally:
        _STATE.in_hook = False


# ---------------------------------------------------------------------------
# Module-namespace snapshots (the dynamic PURE001 check).
# ---------------------------------------------------------------------------

_SNAPSHOT_DEPTH = 4


def _stable_repr(value: Any, module_name: str, depth: int = 0) -> str:
    """Digestible representation of a module-global value.

    Simple values and containers recurse; classes *defined in* the module
    being snapshotted expose their instance ``__dict__`` (that is where
    session-leaking caches live); foreign objects reduce to their type name
    so legitimate internal mutation (algorithm state, RNG state) does not
    fire the tripwire.
    """
    if depth > _SNAPSHOT_DEPTH:
        return "<depth>"
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, (list, tuple)):
        open_, close = ("[", "]") if isinstance(value, list) else ("(", ")")
        inner = ", ".join(
            _stable_repr(item, module_name, depth + 1) for item in value
        )
        return f"{open_}{inner}{close}"
    if isinstance(value, dict):
        items = sorted(
            (
                _stable_repr(k, module_name, depth + 1),
                _stable_repr(v, module_name, depth + 1),
            )
            for k, v in value.items()
        )
        inner = ", ".join(f"{k}: {v}" for k, v in items)
        return f"{{{inner}}}"
    if isinstance(value, (set, frozenset)):
        inner = ", ".join(
            sorted(_stable_repr(item, module_name, depth + 1) for item in value)
        )
        return f"set({inner})"
    if isinstance(value, type):
        head = f"<class {value.__module__}.{value.__qualname__}"
        if value.__module__ == module_name:
            attrs = []
            for name, item in sorted(vars(value).items()):
                if name.startswith("__") or callable(item):
                    continue
                if isinstance(item, (classmethod, staticmethod, property)):
                    continue
                attrs.append(
                    f"{name}={_stable_repr(item, module_name, depth + 1)}"
                )
            if attrs:
                return head + " " + ", ".join(attrs) + ">"
        return head + ">"
    if isinstance(value, types.ModuleType):
        return f"<module {value.__name__}>"
    if callable(value) and hasattr(value, "__qualname__"):
        return f"<callable {value.__module__}.{value.__qualname__}>"
    cls = type(value)
    if cls.__module__ == module_name and hasattr(value, "__dict__"):
        inner = ", ".join(
            f"{name}={_stable_repr(item, module_name, depth + 1)}"
            for name, item in sorted(vars(value).items())
        )
        return f"<{cls.__qualname__} {inner}>"
    return f"<{cls.__module__}.{cls.__qualname__}>"


def snapshot_digest(module_name: str) -> str:
    """Digest of one module's global namespace (imported modules only)."""
    module = sys.modules.get(module_name)
    if module is None:
        return "<unloaded>"
    digest = hashlib.sha256()
    for name in sorted(vars(module)):
        if name.startswith("__"):
            continue
        digest.update(name.encode("utf-8"))
        digest.update(b"=")
        digest.update(
            _stable_repr(vars(module)[name], module_name).encode(
                "utf-8", "backslashreplace"
            )
        )
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def snapshot_digests(module_names: Sequence[str]) -> Dict[str, str]:
    return {name: snapshot_digest(name) for name in module_names}


# ---------------------------------------------------------------------------
# Hash-seed canary.
# ---------------------------------------------------------------------------

_CANARY_TOKENS = frozenset(
    {
        "fugu",
        "bba",
        "bola",
        "mpc_hm",
        "robust_mpc",
        "pensieve",
        "rate_based",
        "oboe",
        "cs2p",
        "puffer",
        "emulator",
        "in_situ",
    }
)


def hash_canary() -> str:
    """Digest of a fixed string set's iteration order.

    Set iteration order over strings depends on ``PYTHONHASHSEED``; two
    processes that disagree on the canary cannot be expected to agree on
    any hash-ordered iteration.  The simulator is required to be hash-seed
    independent, so this is a *diagnostic*, not a tripwire.
    """
    digest = hashlib.sha256()
    for token in _CANARY_TOKENS:
        digest.update(token.encode("utf-8"))
        digest.update(b"|")
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------------------
# Guard scope.
# ---------------------------------------------------------------------------


@contextmanager
def guard(label: str = "session") -> Iterator[None]:
    """Arm the tripwires for the duration of one pure-region call.

    No-op when :func:`install` has not run.  On exit the snapshot modules'
    namespace digests must match their entry values — a mismatch is the
    dynamic form of PURE001 (module state leaked out of the session).
    """
    if not _STATE.installed:
        yield
        return
    if _STATE.depth == 0:
        # Outermost guard: independent sessions must not see each other's
        # materialized seeds (replaying a session *is* the contract).
        _STATE.seed_seen.clear()
        _STATE.seed_log.clear()
    before = snapshot_digests(_STATE.snapshot_modules)
    _STATE.depth += 1
    try:
        yield
    finally:
        _STATE.depth -= 1
        after = snapshot_digests(_STATE.snapshot_modules)
        changed = sorted(
            name for name in before if before[name] != after.get(name)
        )
        if changed:
            raise SanitizerViolation(
                f"module state mutated during sanitized {label}: "
                f"{', '.join(changed)} — session code must not write "
                "module globals (dynamic PURE001)"
            )


def guarded(label: str) -> Callable[[_F], _F]:
    """Decorator form of :func:`guard` for pure entrypoints.

    The wrapper is free when the sanitizer is not installed (one attribute
    check), so production entrypoints carry it unconditionally.
    """

    def decorate(fn: _F) -> _F:
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _STATE.installed:
                # Self-arming under REPRO_SANITIZE=1: pool workers (fork or
                # spawn) reach the entrypoint without anyone having called
                # install() in their process.
                if not enabled():
                    return fn(*args, **kwargs)
                install(DEFAULT_SNAPSHOT_MODULES)
            with guard(label):
                return fn(*args, **kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__module__ = fn.__module__
        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def install_from_env(snapshot_modules: Sequence[str] = ()) -> bool:
    """Install iff ``REPRO_SANITIZE`` is set; returns whether installed."""
    if enabled():
        install(snapshot_modules)
        return True
    return False

"""Streaming stack: playback buffer, chunk-level simulator, telemetry.

Replaces Puffer's media server + browser player (§3.2–3.3) with a
discrete-event model at chunk granularity. The ABR control loop — observe
buffer and TCP state, pick a version, transmit, account stalls — is
identical in shape to the real system's.
"""

from repro.streaming.buffer import MAX_BUFFER_S, PlaybackBuffer
from repro.streaming.replacement import (
    ReplacementPolicy,
    ReplacementStreamResult,
    simulate_stream_with_replacement,
)
from repro.streaming.session import StreamResult
from repro.streaming.simulator import DEFAULT_LOOKAHEAD, simulate_stream
from repro.streaming.telemetry import (
    BufferEvent,
    ClientBufferRecord,
    TelemetryLog,
    VideoAckedRecord,
    VideoSentRecord,
)

__all__ = [
    "MAX_BUFFER_S",
    "PlaybackBuffer",
    "StreamResult",
    "simulate_stream",
    "ReplacementPolicy",
    "ReplacementStreamResult",
    "simulate_stream_with_replacement",
    "DEFAULT_LOOKAHEAD",
    "TelemetryLog",
    "VideoSentRecord",
    "VideoAckedRecord",
    "ClientBufferRecord",
    "BufferEvent",
]

"""Client playback buffer.

The playhead drains the buffer at 1 s/s while chunks arrive at irregular
intervals (§2). Puffer's player caps the buffer at 15 seconds (§3.3); when
the cap is reached the server pauses until there is room for another chunk.
"""

from __future__ import annotations

from repro import obs

MAX_BUFFER_S = 15.0
"""Puffer's client buffer cap in seconds of video."""

BUFFER_EPSILON_S = 1e-9
"""Float-tolerance on the buffer cap, shared by every occupancy comparison
(and by the batch kernel in :mod:`repro.batch`).  ``room_for`` admits a
chunk when ``level + duration <= cap + BUFFER_EPSILON_S`` and ``add`` only
raises beyond the same slack, so a chunk admitted by ``room_for`` can never
overflow ``add`` — the tolerances must stay one constant or accumulated
rounding in ``level_s`` opens a gap between the two checks."""


class PlaybackBuffer:
    """Seconds of downloaded-but-unplayed video.

    The buffer only models *quantity* of queued video; chunk identity is
    tracked by the simulator. ``drain`` is called as playback time passes,
    ``add`` when a chunk finishes arriving.
    """

    def __init__(self, max_buffer_s: float = MAX_BUFFER_S) -> None:
        if max_buffer_s <= 0:
            raise ValueError("buffer cap must be positive")
        self.max_buffer_s = max_buffer_s
        self.level_s = 0.0

    def add(self, duration_s: float) -> None:
        """Enqueue a chunk's worth of video."""
        if duration_s <= 0:
            raise ValueError("chunk duration must be positive")
        self.level_s += duration_s
        if self.level_s > self.max_buffer_s + BUFFER_EPSILON_S:
            raise RuntimeError(
                "buffer overflow: server must pause before exceeding the cap"
            )

    def drain(self, play_time_s: float) -> float:
        """Play ``play_time_s`` seconds; returns the stall time incurred
        (the shortfall when the buffer runs dry)."""
        if play_time_s < 0:
            raise ValueError("play time must be non-negative")
        if play_time_s <= self.level_s:
            self.level_s -= play_time_s
            return 0.0
        shortfall = play_time_s - self.level_s
        self.level_s = 0.0
        if shortfall > 0 and obs.ENABLED:
            obs.counter_inc("buffer.underruns")
            obs.observe("buffer.underrun_s", shortfall, spec=obs.TIME_SPEC)
        return shortfall

    def room_for(self, duration_s: float) -> bool:
        """Whether a chunk of ``duration_s`` fits under the cap."""
        return self.level_s + duration_s <= self.max_buffer_s + BUFFER_EPSILON_S

    def time_until_room(self, duration_s: float) -> float:
        """Playback time the server must wait before sending the next chunk."""
        if self.room_for(duration_s):
            return 0.0
        return self.level_s + duration_s - self.max_buffer_s

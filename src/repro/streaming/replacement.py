"""Chunk replacement — an extension beyond the paper's Fugu.

§6.2: "Fugu does not consider several issues that other research has
concerned itself with — e.g., being able to 'replace' already-downloaded
chunks in the buffer with higher quality versions [35]."

This module implements that capability (in the spirit of Spiteri et al.'s
DASH-player work) as a separate simulation loop: whenever the playback
buffer is full — time the plain server would spend idle — the client may
instead re-download a buffered, not-yet-played chunk at a higher rung,
provided the predicted fetch time fits comfortably inside that chunk's play
deadline. Replacement trades upstream bytes (the discarded lower-quality
copy) for higher played SSIM without added stall risk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.abr.base import AbrAlgorithm, AbrContext, ChunkRecord, harmonic_mean_throughput
from repro.media.chunk import ChunkMenu, EncodedChunk
from repro.net.tcp import TcpConnection
from repro.streaming.buffer import MAX_BUFFER_S
from repro.streaming.session import StreamResult
from repro.streaming.simulator import DEFAULT_LOOKAHEAD, _MenuWindow


@dataclass
class ReplacementPolicy:
    """Decides which buffered chunk (if any) to upgrade during idle time.

    Parameters
    ----------
    safety_factor:
        Fraction of a chunk's play deadline the predicted re-download must
        fit within; below 1.0 leaves headroom so replacement cannot cause a
        stall under mildly wrong throughput estimates.
    min_gain_db:
        Minimum SSIM improvement worth spending bytes on.
    """

    safety_factor: float = 0.5
    min_gain_db: float = 0.5

    def select(
        self,
        buffered: "List[Tuple[ChunkMenu, int]]",
        play_offsets: List[float],
        throughput_bps: Optional[float],
    ) -> Optional[Tuple[int, int]]:
        """Return ``(buffer_position, new_rung)`` or None.

        ``buffered[i]`` is the menu and currently-held rung of the i-th
        queued chunk; ``play_offsets[i]`` is the time until it starts
        playing.
        """
        if throughput_bps is None or throughput_bps <= 0:
            return None
        best: Optional[Tuple[int, int]] = None
        best_gain = self.min_gain_db
        for position, (menu, rung) in enumerate(buffered):
            current = menu[rung]
            deadline = play_offsets[position] * self.safety_factor
            for candidate in range(len(menu) - 1, rung, -1):
                version = menu[candidate]
                fetch_time = version.size_bits / throughput_bps
                if fetch_time > deadline:
                    continue
                gain = version.ssim_db - current.ssim_db
                if gain > best_gain:
                    best_gain = gain
                    best = (position, candidate)
                break  # lower candidates have smaller gains
        return best


@dataclass
class ReplacementStreamResult(StreamResult):
    """Stream outcome with replacement accounting."""

    replacements: int = 0
    wasted_bytes: float = 0.0
    """Bytes of discarded lower-quality copies."""


def simulate_stream_with_replacement(
    menus: Iterable[ChunkMenu],
    abr: AbrAlgorithm,
    connection: TcpConnection,
    watch_time_s: float,
    policy: Optional[ReplacementPolicy] = None,
    max_buffer_s: float = MAX_BUFFER_S,
    lookahead: int = DEFAULT_LOOKAHEAD,
    stream_id: int = 0,
) -> ReplacementStreamResult:
    """Chunk-level simulation with buffered-chunk replacement.

    The ABR scheme chooses each newly-fetched chunk exactly as in
    :func:`repro.streaming.simulator.simulate_stream`; the replacement
    policy spends buffer-full idle time on upgrades. Played SSIM is
    computed from the versions actually played.
    """
    if watch_time_s < 0:
        raise ValueError("watch time must be non-negative")
    policy = policy if policy is not None else ReplacementPolicy()
    abr.begin_stream()
    result = ReplacementStreamResult(stream_id=stream_id, scheme_name=abr.name)
    window = _MenuWindow(menus, lookahead)
    # The buffer holds explicit chunks: (menu, rung, seconds_unplayed).
    queue: List[List] = []  # [menu, rung, remaining_duration]
    t = 0.0
    playing = False
    last_ssim: Optional[float] = None
    fetch_history: List[ChunkRecord] = []

    def buffer_level() -> float:
        return sum(entry[2] for entry in queue)

    def drain(play_s: float) -> float:
        """Advance playback; returns stall time incurred."""
        nonlocal playing
        remaining = play_s
        while remaining > 1e-12 and queue:
            entry = queue[0]
            step = min(entry[2], remaining)
            entry[2] -= step
            remaining -= step
            if entry[2] <= 1e-12:
                menu, rung, _ = entry
                result.records.append(
                    ChunkRecord(
                        chunk_index=menu.chunk_index,
                        rung=rung,
                        size_bytes=menu[rung].size_bytes,
                        ssim_db=menu[rung].ssim_db,
                        transmission_time=0.0,
                        info_at_send=connection.tcp_info(),
                        send_time=t,
                    )
                )
                queue.pop(0)
        return remaining

    while t < watch_time_s:
        if window.exhausted:
            break
        duration = window.peek()[0].duration
        room = buffer_level() + duration <= max_buffer_s + 1e-9

        if not room:
            # Idle period: try a replacement before waiting.
            throughput = harmonic_mean_throughput(fetch_history)
            offsets = []
            acc = 0.0
            for entry in queue:
                offsets.append(acc)
                acc += entry[2]
            # Never replace the chunk currently playing (offset 0, partial).
            candidates = [
                (queue[i][0], queue[i][1]) for i in range(len(queue))
            ]
            choice = policy.select(candidates, offsets, throughput)
            if choice is not None and playing:
                position, new_rung = choice
                entry = queue[position]
                old_version: EncodedChunk = entry[0][entry[1]]
                new_version: EncodedChunk = entry[0][new_rung]
                tx = connection.transmit(new_version.size_bytes, t)
                stall = drain(tx.transmission_time) if playing else 0.0
                play = tx.transmission_time - stall
                result.play_time += play
                result.stall_time += stall
                t += tx.transmission_time
                fetch_history.append(
                    ChunkRecord(
                        chunk_index=entry[0].chunk_index,
                        rung=new_rung,
                        size_bytes=new_version.size_bytes,
                        ssim_db=new_version.ssim_db,
                        transmission_time=tx.transmission_time,
                        info_at_send=tx.info_at_send,
                        send_time=t,
                    )
                )
                # Upgrade only if the chunk is still unplayed in full.
                if entry in queue and entry[2] >= entry[0].duration - 1e-9:
                    entry[1] = new_rung
                    result.replacements += 1
                    result.wasted_bytes += old_version.size_bytes
                continue
            # Nothing worth replacing: wait for room.
            wait = min(
                buffer_level() + duration - max_buffer_s,
                max(watch_time_s - t, 0.0),
            )
            if wait <= 0:
                break
            result.play_time += wait - drain(wait)
            t += wait
            continue

        context = AbrContext(
            lookahead=window.peek(),
            buffer_s=buffer_level(),
            tcp_info=connection.tcp_info(),
            history=fetch_history,
            last_ssim_db=last_ssim,
            startup=not playing,
        )
        rung = abr.choose(context)
        menu = window.pop()
        version = menu[rung]
        tx = connection.transmit(version.size_bytes, t)
        if playing:
            stall = drain(tx.transmission_time)
            result.play_time += tx.transmission_time - stall
            result.stall_time += stall
        t += tx.transmission_time
        queue.append([menu, rung, menu.duration])
        if not playing:
            playing = True
            result.startup_delay = t
        record = ChunkRecord(
            chunk_index=menu.chunk_index,
            rung=rung,
            size_bytes=version.size_bytes,
            ssim_db=version.ssim_db,
            transmission_time=tx.transmission_time,
            info_at_send=tx.info_at_send,
            send_time=t - tx.transmission_time,
        )
        fetch_history.append(record)
        abr.on_chunk_complete(record)
        last_ssim = version.ssim_db

    # Drain the remaining buffer until the viewer leaves.
    if playing and t < watch_time_s:
        tail = min(buffer_level(), watch_time_s - t)
        result.play_time += tail - drain(tail)
        t += tail
    result.total_time = min(t, watch_time_s)
    result.never_began = not playing
    return result

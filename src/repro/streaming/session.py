"""Stream results and per-stream summary figures.

§3.4 defines the figures computed per stream: total time between first and
last events, startup time, total watch time, total stall time, average SSIM,
and chunk-by-chunk SSIM variation. The stall (rebuffering) ratio is stall
time over watch time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.abr.base import ChunkRecord


@dataclass
class StreamResult:
    """Complete outcome of one simulated stream."""

    stream_id: int
    scheme_name: str
    records: List[ChunkRecord] = field(default_factory=list)
    startup_delay: Optional[float] = None
    play_time: float = 0.0
    stall_time: float = 0.0
    total_time: float = 0.0
    never_began: bool = False
    excluded: bool = False
    """Administratively excluded from the primary analysis (e.g., Fig. A1's
    "stalled from a slow video decoder" category)."""

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    @property
    def watch_time(self) -> float:
        """Total time between first and last successfully played portion."""
        return self.play_time + self.stall_time

    @property
    def stall_ratio(self) -> float:
        """Time stalled / total watch time ("rebuffering ratio")."""
        if self.watch_time <= 0:
            return 0.0
        return self.stall_time / self.watch_time

    @property
    def mean_ssim_db(self) -> float:
        """Average SSIM (dB) over played chunks. Chunks share one duration,
        so the duration-weighted mean is the plain mean."""
        if not self.records:
            return float("nan")
        return float(np.mean([r.ssim_db for r in self.records]))

    @property
    def ssim_variation_db(self) -> float:
        """Mean absolute SSIM change between consecutive chunks (dB) —
        the "SSIM variation" column of Fig. 1."""
        if len(self.records) < 2:
            return 0.0
        ssims = [r.ssim_db for r in self.records]
        return float(np.mean(np.abs(np.diff(ssims))))

    @property
    def mean_bitrate_bps(self) -> float:
        """Average compressed bitrate of the chunks sent (Fig. 4 x-axis)."""
        if not self.records:
            return float("nan")
        total_bits = sum(r.size_bytes * 8.0 for r in self.records)
        total_duration = sum(2.002 for _ in self.records)
        # Use actual chunk durations when available via menu duration; all
        # Puffer chunks are 2.002 s so a constant is equivalent.
        return total_bits / total_duration

    @property
    def first_chunk_ssim_db(self) -> float:
        """SSIM of the first played chunk (Fig. 9 y-axis)."""
        if not self.records:
            return float("nan")
        return self.records[0].ssim_db

    @property
    def mean_delivery_rate_bps(self) -> float:
        """Mean of the nonzero TCP ``delivery_rate`` samples logged at send
        time; Fig. 8 classifies a path as "slow" when this is < 6 Mbit/s.
        Falls back to chunk-observed throughput for very short streams."""
        samples = [
            r.info_at_send.delivery_rate
            for r in self.records
            if r.info_at_send.delivery_rate > 0
        ]
        if samples:
            return float(np.mean(samples))
        if self.records:
            return float(np.mean([r.observed_throughput_bps for r in self.records]))
        return float("nan")

    @property
    def had_stall(self) -> bool:
        return self.stall_time > 0.0

    def is_slow_path(self, threshold_bps: float = 6e6) -> bool:
        rate = self.mean_delivery_rate_bps
        return bool(not np.isnan(rate) and rate < threshold_bps)

"""Chunk-level streaming simulation loop.

``simulate_stream`` plays the role of one Puffer serving daemon plus one
browser client: the ABR scheme picks a version of each chunk, the chunk is
transmitted over the TCP model, the playback buffer drains at 1 s/s while
data is in flight, stalls accrue when it empties, and the server pauses when
the 15-second buffer cap is reached. Telemetry is emitted in the open-data
format.

The loop itself lives in :func:`stream_machine`, a coroutine-style generator
that *yields* a :class:`TransmitRequest` whenever a chunk must cross the
network and receives the :class:`~repro.net.tcp.TransmissionResult` back.
``simulate_stream`` drives the machine against a private
:class:`~repro.net.tcp.TcpConnection` (the classic single-session path,
bit-identical to the pre-generator implementation); :mod:`repro.edge`
drives many machines at once against a shared bottleneck, interleaving
their transmissions in cell time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Generator,
    Iterable,
    Iterator,
    Optional,
    Protocol,
)

from repro import obs
from repro.abr.base import AbrAlgorithm, AbrContext, ChunkRecord
from repro.media.chunk import ChunkMenu
from repro.media.ssim import ssim_db_to_index
from repro.net.tcp import TcpConnection, TcpInfo, TransmissionResult
from repro.streaming.buffer import MAX_BUFFER_S, PlaybackBuffer
from repro.streaming.session import StreamResult
from repro.streaming.telemetry import (
    BufferEvent,
    ClientBufferRecord,
    TelemetryLog,
    VideoAckedRecord,
    VideoSentRecord,
)


class Transport(Protocol):
    """What a stream machine needs from its network besides transmission:
    synchronous, read-only sender statistics (the ABR's ``tcp_info`` view).
    Satisfied by :class:`~repro.net.tcp.TcpConnection` and by
    :class:`repro.edge.transport.FluidFlow`."""

    def tcp_info(self) -> TcpInfo: ...


@dataclass(frozen=True)
class TransmitRequest:
    """One chunk the stream wants on the wire.

    Yielded by :func:`stream_machine`; the driver answers with the
    :class:`~repro.net.tcp.TransmissionResult`.  ``send_at`` is in the
    *connection's* clock (session-relative) — a shared-bottleneck driver
    adds the session's arrival offset to place it in cell time.  The cache
    identity fields let an edge tier recognise the chunk; a private-link
    driver ignores them.
    """

    size_bytes: int
    send_at: float
    chunk_index: int = 0
    rung: int = 0
    channel: Optional[str] = None


StreamMachine = Generator[TransmitRequest, TransmissionResult, StreamResult]

DEFAULT_LOOKAHEAD = 8
"""Menus visible ahead of the playhead (live encoding runs a few chunks
ahead; 8 covers MPC's 5-chunk horizon with margin)."""

ExtensionHook = Callable[[float, StreamResult], float]
"""Called when the viewer's intended watch time is reached; returns extra
seconds to keep watching (0 ends the stream). Models the QoE-sensitive
long-tail viewership of Fig. 10."""


class _MenuWindow:
    """Sliding lookahead window over a (possibly endless) menu iterator."""

    def __init__(self, menus: Iterable[ChunkMenu], horizon: int) -> None:
        if horizon <= 0:
            raise ValueError("lookahead horizon must be positive")
        self._iter: Iterator[ChunkMenu] = iter(menus)
        self._window: Deque[ChunkMenu] = deque()
        self._horizon = horizon
        self._fill()

    def _fill(self) -> None:
        while len(self._window) < self._horizon:
            try:
                self._window.append(next(self._iter))
            except StopIteration:
                break

    @property
    def exhausted(self) -> bool:
        return not self._window

    def peek(self) -> "list[ChunkMenu]":
        return list(self._window)

    def pop(self) -> ChunkMenu:
        menu = self._window.popleft()
        self._fill()
        return menu


def simulate_stream(
    menus: Iterable[ChunkMenu],
    abr: AbrAlgorithm,
    connection: TcpConnection,
    watch_time_s: float,
    stream_id: int = 0,
    expt_id: int = 0,
    max_buffer_s: float = MAX_BUFFER_S,
    lookahead: int = DEFAULT_LOOKAHEAD,
    telemetry: Optional[TelemetryLog] = None,
    extension_hook: Optional[ExtensionHook] = None,
    start_time: float = 0.0,
    buffer_report_interval: Optional[float] = None,
) -> StreamResult:
    """Simulate one stream over a private connection and return its
    :class:`StreamResult`.

    Thin driver over :func:`stream_machine`: every yielded
    :class:`TransmitRequest` is answered immediately by
    ``connection.transmit`` — the exact call sequence of the pre-generator
    implementation, so results are bit-identical to it.

    Parameters
    ----------
    menus:
        Iterable of :class:`ChunkMenu` (endless for live TV; bounded for a
        clip, in which case the stream ends when the clip does).
    abr:
        The bitrate-selection scheme under test.
    connection:
        TCP connection to the client; reused across a session's streams so
        congestion state carries over (channel changes keep the connection,
        §3.2 / Fig. A1).
    watch_time_s:
        The viewer's intended wall-clock time on the player.
    extension_hook:
        Optional Fig. 10 tail model; see :data:`ExtensionHook`.
    start_time:
        Connection-relative time at which this stream begins (later streams
        of a session start where the previous one left off).
    buffer_report_interval:
        When set (Puffer uses 0.25 s), emit periodic ``client_buffer``
        TIMER records at this interval. Reported buffer levels are the
        state when the boundary is processed (end of the enclosing event),
        matching how a client-side timer observes the player.
    """
    machine = stream_machine(
        menus,
        abr,
        connection,
        watch_time_s,
        stream_id=stream_id,
        expt_id=expt_id,
        max_buffer_s=max_buffer_s,
        lookahead=lookahead,
        telemetry=telemetry,
        extension_hook=extension_hook,
        start_time=start_time,
        buffer_report_interval=buffer_report_interval,
    )
    response: Optional[TransmissionResult] = None
    while True:
        try:
            request = machine.send(response)  # type: ignore[arg-type]
        except StopIteration as stop:
            result: StreamResult = stop.value
            return result
        response = connection.transmit(request.size_bytes, request.send_at)


def stream_machine(
    menus: Iterable[ChunkMenu],
    abr: AbrAlgorithm,
    transport: Transport,
    watch_time_s: float,
    stream_id: int = 0,
    expt_id: int = 0,
    max_buffer_s: float = MAX_BUFFER_S,
    lookahead: int = DEFAULT_LOOKAHEAD,
    telemetry: Optional[TelemetryLog] = None,
    extension_hook: Optional[ExtensionHook] = None,
    start_time: float = 0.0,
    buffer_report_interval: Optional[float] = None,
    channel_name: Optional[str] = None,
) -> StreamMachine:
    """The streaming loop as a resumable generator.

    Identical in logic to the historical ``simulate_stream`` body; the one
    structural difference is that chunk transmission happens by yielding a
    :class:`TransmitRequest` and receiving the
    :class:`~repro.net.tcp.TransmissionResult` from whoever drives the
    generator.  ``transport`` supplies the synchronous ``tcp_info()`` reads
    the ABR consumes; ``channel_name`` tags requests with a cache identity
    for edge drivers.  Returns the :class:`StreamResult` via
    ``StopIteration.value``.
    """
    if watch_time_s < 0:
        raise ValueError("watch time must be non-negative")
    abr.begin_stream()
    result = StreamResult(stream_id=stream_id, scheme_name=abr.name)
    window = _MenuWindow(menus, lookahead)
    buffer = PlaybackBuffer(max_buffer_s)
    t = 0.0  # wall-clock seconds since the stream began
    limit = watch_time_s
    playing = False
    last_ssim: Optional[float] = None

    def log_buffer(event: BufferEvent) -> None:
        if telemetry is not None:
            telemetry.client_buffer.append(
                ClientBufferRecord(
                    time=start_time + t,
                    stream_id=stream_id,
                    expt_id=expt_id,
                    event=event,
                    buffer=buffer.level_s,
                    cum_rebuf=result.stall_time,
                )
            )

    next_report = buffer_report_interval

    def emit_timer_reports() -> None:
        """Quarter-second periodic client reports (Appendix B)."""
        nonlocal next_report
        if telemetry is None or buffer_report_interval is None:
            return
        while next_report is not None and next_report <= t:
            telemetry.client_buffer.append(
                ClientBufferRecord(
                    time=start_time + next_report,
                    stream_id=stream_id,
                    expt_id=expt_id,
                    event=BufferEvent.TIMER,
                    buffer=buffer.level_s,
                    cum_rebuf=result.stall_time,
                )
            )
            # repro: allow-PURE001(call-local accumulator; the cell dies with simulate_stream's frame, no cross-session state)
            next_report += buffer_report_interval

    while True:
        if t >= limit:
            if extension_hook is not None:
                extra = extension_hook(t, result)
                if extra > 0:
                    limit = t + extra
                else:
                    break
            else:
                break
        if window.exhausted:
            break  # bounded clip finished

        # Server pauses while the buffer is full; playback continues.
        duration = window.peek()[0].duration
        wait = buffer.time_until_room(duration)
        if wait > 0:
            wait = min(wait, max(limit - t, 0.0))
            if wait <= 0:
                t = limit
                continue
            buffer.drain(wait)
            result.play_time += wait
            t += wait
            if obs.ENABLED:
                obs.counter_inc("stream.server_pauses")
                obs.observe("stream.pause_s", wait, spec=obs.TIME_SPEC)
            emit_timer_reports()
            continue  # re-evaluate the leave condition before choosing

        context = AbrContext(
            lookahead=window.peek(),
            buffer_s=buffer.level_s,
            tcp_info=transport.tcp_info(),
            history=result.records,
            last_ssim_db=last_ssim,
            startup=not playing,
        )
        rung = abr.choose(context)
        menu = window.pop()
        if not 0 <= rung < len(menu):
            raise ValueError(
                f"{abr.name} chose rung {rung}, menu has {len(menu)} versions"
            )
        version = menu[rung]
        send_at = start_time + t
        tx = yield TransmitRequest(
            size_bytes=version.size_bytes,
            send_at=send_at,
            chunk_index=menu.chunk_index,
            rung=rung,
            channel=channel_name,
        )
        if obs.ENABLED:
            # Chunk timing: the distribution the TTP is trained to predict.
            obs.counter_inc("stream.chunks_sent")
            obs.observe(
                "stream.chunk_transmission_s",
                tx.transmission_time,
                spec=obs.TIME_SPEC,
            )
        if telemetry is not None:
            telemetry.video_sent.append(
                VideoSentRecord.from_send(
                    time=send_at,
                    stream_id=stream_id,
                    expt_id=expt_id,
                    chunk_index=menu.chunk_index,
                    size=version.size_bytes,
                    ssim_index=ssim_db_to_index(version.ssim_db),
                    info=tx.info_at_send,
                )
            )
        if extension_hook is not None and t + tx.transmission_time >= limit:
            # The intended watch time elapses during this transmission; ask
            # the tail model whether the viewer keeps watching.
            extra = extension_hook(t + tx.transmission_time, result)
            if extra > 0:
                limit = t + tx.transmission_time + extra
        if playing:
            stall = buffer.drain(tx.transmission_time)
            play = tx.transmission_time - stall
            # The viewer leaves at `limit`; anything past it never happened
            # from their perspective. Within one transmission the buffer
            # drains (play) first and the stall comes at the end, so clip
            # the stall before the play time.
            overshoot = max(t + tx.transmission_time - limit, 0.0)
            clipped_stall = min(stall, overshoot)
            stall -= clipped_stall
            play -= min(overshoot - clipped_stall, play)
            result.play_time += play
            if stall > 0:
                result.stall_time += stall
                if obs.ENABLED:
                    # A rebuffer span: starts when the buffer ran dry during
                    # this transmission, ends with the chunk's arrival.
                    obs.counter_inc("stream.rebuffers")
                    obs.observe("stream.rebuffer_s", stall, spec=obs.TIME_SPEC)
                    obs.emit(
                        "rebuffer",
                        time=start_time + t + tx.transmission_time,
                        stream_id=stream_id,
                        duration=stall,
                    )
                log_buffer(BufferEvent.REBUFFER)
        t += tx.transmission_time
        emit_timer_reports()
        if t >= limit:
            # Mid-chunk departure: the chunk never finished for the viewer.
            if not playing:
                result.never_began = True
            t = limit
            break
        buffer.add(version.duration)
        if not playing:
            playing = True
            result.startup_delay = t
            if obs.ENABLED:
                obs.counter_inc("stream.startups")
                obs.observe("stream.startup_delay_s", t, spec=obs.TIME_SPEC)
                obs.emit(
                    "startup",
                    time=start_time + t,
                    stream_id=stream_id,
                    delay=t,
                )
            log_buffer(BufferEvent.STARTUP)
        record = ChunkRecord(
            chunk_index=menu.chunk_index,
            rung=rung,
            size_bytes=version.size_bytes,
            ssim_db=version.ssim_db,
            transmission_time=tx.transmission_time,
            info_at_send=tx.info_at_send,
            send_time=send_at,
        )
        result.records.append(record)
        abr.on_chunk_complete(record)
        last_ssim = version.ssim_db
        if telemetry is not None:
            telemetry.video_acked.append(
                VideoAckedRecord(
                    time=start_time + t,
                    stream_id=stream_id,
                    expt_id=expt_id,
                    chunk_index=menu.chunk_index,
                )
            )
        log_buffer(BufferEvent.TIMER)

    # The viewer drains whatever is buffered until they leave or it empties.
    if playing and t < limit:
        tail_play = min(buffer.level_s, limit - t)
        buffer.drain(tail_play)
        result.play_time += tail_play
        t += tail_play
        emit_timer_reports()

    result.total_time = t
    result.never_began = not playing
    if obs.ENABLED:
        obs.counter_inc("stream.streams")
        obs.counter_inc("stream.play_time_s", result.play_time)
        obs.counter_inc("stream.stall_time_s", result.stall_time)
        if result.never_began:
            obs.counter_inc("stream.never_began")
        obs.emit(
            "stream_end",
            time=start_time + t,
            stream_id=stream_id,
            play=result.play_time,
            stall=result.stall_time,
            chunks=len(result.records),
        )
    return result

"""Client/server telemetry in the open-data format of Appendix B.

Puffer publishes three measurement tables; the reproduction emits the same
records from the simulator so analysis code works identically on simulated
and (hypothetically) real data:

* ``video_sent`` — one row per chunk sent, with the ``tcp_info`` fields;
* ``video_acked`` — one row per chunk acknowledgement;
* ``client_buffer`` — buffer level and rebuffer state, sampled every quarter
  second and on events.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from enum import Enum
from typing import List

from repro.net.tcp import TcpInfo


class BufferEvent(str, Enum):
    """``client_buffer.event`` values."""

    TIMER = "timer"
    STARTUP = "startup"
    PLAY = "play"
    REBUFFER = "rebuffer"


def _coerced(cls, data: dict):
    """Build a record from a parsed-JSON dict, coercing every field back to
    its declared type (``int`` columns arrive as ints, ``float`` columns may
    arrive as ints from JSON, ``event`` arrives as a plain string).

    This is what makes the ``to_dict -> json -> from_dict`` round trip
    *exact*: the reconstructed record equals the original field-for-field,
    including types — so downstream code (``.event.value``, integer stream
    ids used as dict keys) behaves identically on parsed data.
    """
    kwargs = {}
    for f in fields(cls):
        value = data[f.name]
        if f.type in ("float", float):
            value = float(value)
        elif f.type in ("int", int):
            value = int(value)
        elif f.type in ("BufferEvent", BufferEvent):
            value = BufferEvent(value)
        kwargs[f.name] = value
    return cls(**kwargs)


@dataclass(frozen=True)
class VideoSentRecord:
    """One row of the ``video_sent`` table."""

    time: float
    stream_id: int
    expt_id: int
    chunk_index: int
    size: float
    ssim_index: float
    cwnd: float
    in_flight: float
    min_rtt: float
    rtt: float
    delivery_rate: float

    @classmethod
    def from_send(
        cls,
        time: float,
        stream_id: int,
        expt_id: int,
        chunk_index: int,
        size: float,
        ssim_index: float,
        info: TcpInfo,
    ) -> "VideoSentRecord":
        # Builtin coercion at the source: numpy scalars sneaking in from the
        # simulator would serialize (np.float64 subclasses float) but break
        # round-trip *type* equality and, for np integers, json.dumps itself.
        return cls(
            time=float(time),
            stream_id=int(stream_id),
            expt_id=int(expt_id),
            chunk_index=int(chunk_index),
            size=float(size),
            ssim_index=float(ssim_index),
            cwnd=float(info.cwnd),
            in_flight=float(info.in_flight),
            min_rtt=float(info.min_rtt),
            rtt=float(info.rtt),
            delivery_rate=float(info.delivery_rate),
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "VideoSentRecord":
        return _coerced(cls, data)


@dataclass(frozen=True)
class VideoAckedRecord:
    """One row of the ``video_acked`` table; joined with ``video_sent`` on
    (stream_id, chunk_index) it yields the chunk's transmission time."""

    time: float
    stream_id: int
    expt_id: int
    chunk_index: int

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "VideoAckedRecord":
        return _coerced(cls, data)


@dataclass(frozen=True)
class ClientBufferRecord:
    """One row of the ``client_buffer`` table."""

    time: float
    stream_id: int
    expt_id: int
    event: BufferEvent
    buffer: float
    cum_rebuf: float

    def __post_init__(self) -> None:
        # A record built from parsed JSON carries a plain string event; a
        # string-typed ``event`` compared equal (str Enum) but broke
        # ``to_dict`` (``str`` has no ``.value``).  Coerce on construction so
        # round-tripped records are exactly equivalent to originals.
        if not isinstance(self.event, BufferEvent):
            object.__setattr__(self, "event", BufferEvent(self.event))

    def to_dict(self) -> dict:
        data = asdict(self)
        data["event"] = self.event.value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ClientBufferRecord":
        return _coerced(cls, data)


@dataclass
class TelemetryLog:
    """Accumulates the three tables for one or many streams."""

    video_sent: List[VideoSentRecord]
    video_acked: List[VideoAckedRecord]
    client_buffer: List[ClientBufferRecord]

    def __init__(self) -> None:
        self.video_sent = []
        self.video_acked = []
        self.client_buffer = []

    def extend(self, other: "TelemetryLog") -> None:
        self.video_sent.extend(other.video_sent)
        self.video_acked.extend(other.video_acked)
        self.client_buffer.extend(other.client_buffer)

    def __len__(self) -> int:
        return (
            len(self.video_sent)
            + len(self.video_acked)
            + len(self.client_buffer)
        )

    def to_dict(self) -> dict:
        """The three tables as JSON-ready lists of row dicts."""
        return {
            "video_sent": [r.to_dict() for r in self.video_sent],
            "video_acked": [r.to_dict() for r in self.video_acked],
            "client_buffer": [r.to_dict() for r in self.client_buffer],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryLog":
        log = cls()
        log.video_sent = [
            VideoSentRecord.from_dict(r) for r in data["video_sent"]
        ]
        log.video_acked = [
            VideoAckedRecord.from_dict(r) for r in data["video_acked"]
        ]
        log.client_buffer = [
            ClientBufferRecord.from_dict(r) for r in data["client_buffer"]
        ]
        return log

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TelemetryLog":
        import json

        return cls.from_dict(json.loads(text))

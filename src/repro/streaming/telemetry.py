"""Client/server telemetry in the open-data format of Appendix B.

Puffer publishes three measurement tables; the reproduction emits the same
records from the simulator so analysis code works identically on simulated
and (hypothetically) real data:

* ``video_sent`` — one row per chunk sent, with the ``tcp_info`` fields;
* ``video_acked`` — one row per chunk acknowledgement;
* ``client_buffer`` — buffer level and rebuffer state, sampled every quarter
  second and on events.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from enum import Enum
from typing import List

from repro.net.tcp import TcpInfo


class BufferEvent(str, Enum):
    """``client_buffer.event`` values."""

    TIMER = "timer"
    STARTUP = "startup"
    PLAY = "play"
    REBUFFER = "rebuffer"


@dataclass(frozen=True)
class VideoSentRecord:
    """One row of the ``video_sent`` table."""

    time: float
    stream_id: int
    expt_id: int
    chunk_index: int
    size: float
    ssim_index: float
    cwnd: float
    in_flight: float
    min_rtt: float
    rtt: float
    delivery_rate: float

    @classmethod
    def from_send(
        cls,
        time: float,
        stream_id: int,
        expt_id: int,
        chunk_index: int,
        size: float,
        ssim_index: float,
        info: TcpInfo,
    ) -> "VideoSentRecord":
        return cls(
            time=time,
            stream_id=stream_id,
            expt_id=expt_id,
            chunk_index=chunk_index,
            size=size,
            ssim_index=ssim_index,
            cwnd=info.cwnd,
            in_flight=info.in_flight,
            min_rtt=info.min_rtt,
            rtt=info.rtt,
            delivery_rate=info.delivery_rate,
        )

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class VideoAckedRecord:
    """One row of the ``video_acked`` table; joined with ``video_sent`` on
    (stream_id, chunk_index) it yields the chunk's transmission time."""

    time: float
    stream_id: int
    expt_id: int
    chunk_index: int

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class ClientBufferRecord:
    """One row of the ``client_buffer`` table."""

    time: float
    stream_id: int
    expt_id: int
    event: BufferEvent
    buffer: float
    cum_rebuf: float

    def to_dict(self) -> dict:
        data = asdict(self)
        data["event"] = self.event.value
        return data


@dataclass
class TelemetryLog:
    """Accumulates the three tables for one or many streams."""

    video_sent: List[VideoSentRecord]
    video_acked: List[VideoAckedRecord]
    client_buffer: List[ClientBufferRecord]

    def __init__(self) -> None:
        self.video_sent = []
        self.video_acked = []
        self.client_buffer = []

    def extend(self, other: "TelemetryLog") -> None:
        self.video_sent.extend(other.video_sent)
        self.video_acked.extend(other.video_acked)
        self.client_buffer.extend(other.client_buffer)

    def __len__(self) -> int:
        return (
            len(self.video_sent)
            + len(self.video_acked)
            + len(self.client_buffer)
        )

"""Trace tooling: mahimahi format I/O and synthetic FCC-style traces.

The paper's emulation experiments (§5.2, Fig. 11) replay the FCC "Measuring
Broadband America" traces in mahimahi shells, following Pensieve's method.
The real traces are not redistributable here, so :mod:`repro.traces.fcc`
synthesizes traces with the FCC dataset's salient properties: per-trace mean
throughputs concentrated in the 0.2–6 Mbit/s band used by Pensieve's
preprocessing, modest within-trace variability, and *no* deep heavy-tailed
fades — the very mismatch versus real deployment traffic that Fig. 11
exposes (right panel: throughput distributions of FCC vs. Puffer).
"""

from repro.traces.fcc import FccTraceConfig, generate_fcc_trace, generate_fcc_dataset
from repro.traces.mahimahi import (
    link_from_mahimahi,
    read_mahimahi_trace,
    trace_to_rates,
    write_mahimahi_trace,
)
from repro.traces.stats import TraceStats, summarize_trace

__all__ = [
    "FccTraceConfig",
    "generate_fcc_trace",
    "generate_fcc_dataset",
    "read_mahimahi_trace",
    "write_mahimahi_trace",
    "trace_to_rates",
    "link_from_mahimahi",
    "TraceStats",
    "summarize_trace",
]

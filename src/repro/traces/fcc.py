"""Synthetic FCC-broadband-style traces.

Pensieve's evaluation (and the paper's emulation environment, §5.2) replays
traces derived from the FCC "Measuring Broadband America" dataset, filtered
to mean throughputs in roughly the 0.2–6 Mbit/s range, with a 12 Mbit/s cap.
Compared with the throughput processes Puffer observes in deployment, these
traces are *tamer*: fixed-line broadband sampled over short windows shows
moderate variability and essentially no deep multi-second outages.

That difference is the mechanism behind Fig. 11 — algorithms (and a Fugu
variant) trained against FCC traces meet conditions in deployment that the
training distribution never contained. ``generate_fcc_trace`` intentionally
produces the tamer distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.net.link import TraceLink


@dataclass(frozen=True)
class FccTraceConfig:
    """Knobs for the FCC-style synthetic trace generator.

    Defaults follow Pensieve's preprocessing of the FCC dataset: traces with
    mean throughput between ``min_mean_bps`` and ``max_mean_bps``, capped at
    ``cap_bps`` (the 12 Mbit/s mahimahi uplink/downlink cap), with mild
    within-trace variation and no outages.
    """

    duration_s: int = 320
    epoch_s: float = 1.0
    min_mean_bps: float = 0.2e6
    max_mean_bps: float = 6.0e6
    cap_bps: float = 12.0e6
    within_trace_sigma: float = 0.22
    reversion: float = 0.25

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.epoch_s <= 0:
            raise ValueError("duration and epoch must be positive")
        if not 0 < self.min_mean_bps <= self.max_mean_bps <= self.cap_bps:
            raise ValueError("need 0 < min_mean <= max_mean <= cap")
        if not 0.0 < self.reversion <= 1.0:
            raise ValueError("reversion must lie in (0, 1]")


def generate_fcc_trace(
    config: FccTraceConfig = FccTraceConfig(), seed: int = 0
) -> List[float]:
    """Generate one trace: per-epoch throughput in bits/s.

    The trace-level mean is drawn log-uniformly over the configured band
    (the FCC dataset spans DSL to cable tiers) and the within-trace process
    is a mean-reverting log-normal with small variance.
    """
    rng = np.random.default_rng(seed)
    mean_bps = float(
        np.exp(
            rng.uniform(
                np.log(config.min_mean_bps), np.log(config.max_mean_bps)
            )
        )
    )
    n_epochs = int(config.duration_s / config.epoch_s)
    sigma = config.within_trace_sigma
    innovation = sigma * np.sqrt(1.0 - (1.0 - config.reversion) ** 2)
    log_dev = rng.normal(0.0, sigma)
    rates: List[float] = []
    for _ in range(n_epochs):
        log_dev = (1.0 - config.reversion) * log_dev + rng.normal(0.0, innovation)
        rate = mean_bps * float(np.exp(log_dev))
        rates.append(float(min(rate, config.cap_bps)))
    return rates


def generate_fcc_dataset(
    n_traces: int, config: FccTraceConfig = FccTraceConfig(), seed: int = 0
) -> List[List[float]]:
    """Generate a dataset of traces (one seed stream, reproducible)."""
    if n_traces <= 0:
        raise ValueError("n_traces must be positive")
    return [
        # repro: allow-SEED001(injective in i for a fixed corpus seed; reseeding regenerates the FCC corpus and invalidates every trained-model digest)
        generate_fcc_trace(config, seed=seed * 1_000_003 + i)
        for i in range(n_traces)
    ]


def fcc_trace_link(
    config: FccTraceConfig = FccTraceConfig(), seed: int = 0, loop: bool = True
) -> TraceLink:
    """Build a looping :class:`TraceLink` from one synthetic FCC trace."""
    return TraceLink(generate_fcc_trace(config, seed), epoch=config.epoch_s, loop=loop)

"""Mahimahi packet-times trace format.

A mahimahi link trace is a text file with one integer per line: the time in
milliseconds (from trace start) at which the emulated link can deliver one
MTU-sized (1500-byte) packet. Throughput over any window is therefore the
packet count in the window times 12,000 bits. mahimahi replays the file in a
loop [Netravali et al., ATC 2015].
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

from repro.net.link import TraceLink

PACKET_BITS = 1500 * 8
"""Bits delivered per trace line (one MTU packet)."""


def read_mahimahi_trace(path: Union[str, Path]) -> List[int]:
    """Read packet delivery times (ms) from a mahimahi trace file."""
    times: List[int] = []
    last = -1
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                value = int(line)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not an integer timestamp: {line!r}"
                ) from exc
            if value < last:
                raise ValueError(
                    f"{path}:{lineno}: timestamps must be non-decreasing"
                )
            times.append(value)
            last = value
    if not times:
        raise ValueError(f"{path}: empty trace")
    return times


def write_mahimahi_trace(path: Union[str, Path], times_ms: Sequence[int]) -> None:
    """Write packet delivery times (ms) to a mahimahi trace file."""
    if not times_ms:
        raise ValueError("cannot write an empty trace")
    last = -1
    for value in times_ms:
        if value < last:
            raise ValueError("timestamps must be non-decreasing")
        last = value
    Path(path).write_text("\n".join(str(int(t)) for t in times_ms) + "\n")


def trace_to_rates(times_ms: Sequence[int], epoch: float = 1.0) -> List[float]:
    """Convert packet times to per-epoch throughput in bits/s."""
    if epoch <= 0:
        raise ValueError("epoch must be positive")
    if not times_ms:
        raise ValueError("empty trace")
    duration_ms = times_ms[-1] + 1
    n_epochs = max(1, int(-(-duration_ms // int(epoch * 1000))))
    counts = [0] * n_epochs
    for t in times_ms:
        counts[min(int(t / 1000.0 / epoch), n_epochs - 1)] += 1
    return [c * PACKET_BITS / epoch for c in counts]


def rates_to_trace(rates_bps: Sequence[float], epoch: float = 1.0) -> List[int]:
    """Convert per-epoch throughputs (bits/s) to mahimahi packet times (ms).

    Packets are spread uniformly within each epoch, which is how mahimahi
    traces are usually synthesized from throughput time series.
    """
    if epoch <= 0:
        raise ValueError("epoch must be positive")
    times: List[int] = []
    for i, rate in enumerate(rates_bps):
        if rate < 0:
            raise ValueError("rates must be non-negative")
        n_packets = int(rate * epoch / PACKET_BITS)
        start_ms = i * epoch * 1000.0
        for j in range(n_packets):
            times.append(int(start_ms + (j + 0.5) * epoch * 1000.0 / n_packets))
    if not times:
        raise ValueError("trace carries no packets; rates too low")
    return times


def link_from_mahimahi(
    times_ms: Sequence[int], epoch: float = 1.0, loop: bool = True
) -> TraceLink:
    """Build a :class:`TraceLink` replaying a mahimahi trace."""
    return TraceLink(trace_to_rates(times_ms, epoch), epoch=epoch, loop=loop)

"""Trace statistics.

Used for Fig. 2 (discrete states vs. continuous evolution) and for the
right-hand panel of Fig. 11 (FCC vs. Puffer throughput distributions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a throughput time series (bits/s)."""

    mean_bps: float
    median_bps: float
    std_bps: float
    p05_bps: float
    p95_bps: float
    coefficient_of_variation: float
    modality_score: float
    n_epochs: int

    @property
    def tail_ratio(self) -> float:
        """p95/p05 — spread of the distribution's bulk."""
        if self.p05_bps <= 0:
            return float("inf")
        return self.p95_bps / self.p05_bps


def _modality_score(rates: np.ndarray, n_bins: Optional[int] = None) -> float:
    """Heuristic multimodality score of the log-throughput histogram.

    Counts *prominent* modes: local maxima of the smoothed histogram that
    are separated from every taller accepted mode by a valley dropping
    below half the smaller mode's height. A CS2P-style discrete-state trace
    scores >= 2 (one mode per state); the continuous evolution Puffer
    observes scores ~1 (Fig. 2).
    """
    rates = rates[rates > 0]
    if len(rates) < 10:
        return 1.0
    logs = np.log(rates)
    if logs.max() - logs.min() < 1e-9:
        return 1.0
    if n_bins is None:
        # Sample-size-adaptive bins keep per-bin noise manageable.
        n_bins = int(np.clip(np.sqrt(len(logs)), 8, 24))
    hist, _ = np.histogram(logs, bins=n_bins)
    kernel = np.array([0.25, 0.5, 0.25])
    smooth = np.convolve(hist, kernel, mode="same")
    padded = np.concatenate(([0.0], smooth, [0.0]))

    # Local maxima (plateau-aware), tallest first.
    candidates = []
    i = 1
    while i < len(padded) - 1:
        if padded[i] >= padded[i - 1] and padded[i] > padded[i + 1]:
            candidates.append((padded[i], i))
            j = i + 1
            while j < len(padded) - 1 and padded[j] == padded[i]:
                j += 1
            i = j
        else:
            i += 1
    candidates.sort(reverse=True)

    threshold = smooth.max() * 0.20
    accepted: list = []
    for height, index in candidates:
        if height < threshold:
            continue
        prominent = True
        for _, other in accepted:
            lo, hi = sorted((index, other))
            valley = padded[lo : hi + 1].min()
            if valley > 0.5 * height:
                prominent = False  # merges into the taller mode
                break
        if prominent:
            accepted.append((height, index))
    return float(max(len(accepted), 1))


def summarize_trace(rates_bps: Sequence[float]) -> TraceStats:
    """Compute :class:`TraceStats` for a throughput time series."""
    if not len(rates_bps):
        raise ValueError("empty trace")
    rates = np.asarray(rates_bps, dtype=float)
    if np.any(rates < 0):
        raise ValueError("throughput must be non-negative")
    mean = float(rates.mean())
    std = float(rates.std())
    return TraceStats(
        mean_bps=mean,
        median_bps=float(np.median(rates)),
        std_bps=std,
        p05_bps=float(np.percentile(rates, 5)),
        p95_bps=float(np.percentile(rates, 95)),
        coefficient_of_variation=std / mean if mean > 0 else float("inf"),
        modality_score=_modality_score(rates),
        n_epochs=len(rates),
    )


def pooled_throughput_distribution(
    traces: Sequence[Sequence[float]],
) -> List[float]:
    """Pool epochs from many traces into one distribution (Fig. 11, right)."""
    pooled: List[float] = []
    for trace in traces:
        pooled.extend(float(r) for r in trace)
    if not pooled:
        raise ValueError("no epochs to pool")
    return pooled

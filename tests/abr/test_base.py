"""Tests for repro.abr.base — contexts, records, the HM predictor."""

import numpy as np
import pytest

from repro.abr.base import (
    AbrAlgorithm,
    AbrContext,
    ChunkRecord,
    harmonic_mean_throughput,
)
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.tcp import TcpInfo


def info():
    return TcpInfo(cwnd=10, in_flight=0, min_rtt=0.05, rtt=0.05, delivery_rate=0)


def record(i, size=1_000_000, tx=1.0):
    return ChunkRecord(
        chunk_index=i, rung=5, size_bytes=size, ssim_db=15.0,
        transmission_time=tx, info_at_send=info(), send_time=0.0,
    )


class TestHarmonicMean:
    def test_none_without_history(self):
        assert harmonic_mean_throughput([]) is None

    def test_single_sample(self):
        hm = harmonic_mean_throughput([record(0, size=1_000_000, tx=1.0)])
        assert hm == pytest.approx(8e6)

    def test_harmonic_not_arithmetic(self):
        # Throughputs 8 and 2 Mbps: HM = 3.2, arithmetic mean = 5.
        history = [record(0, 1_000_000, 1.0), record(1, 1_000_000, 4.0)]
        hm = harmonic_mean_throughput(history)
        assert hm == pytest.approx(3.2e6)

    def test_window_uses_last_five(self):
        history = [record(i, 1_000_000, 100.0) for i in range(5)]
        history += [record(i + 5, 1_000_000, 1.0) for i in range(5)]
        hm = harmonic_mean_throughput(history, window=5)
        assert hm == pytest.approx(8e6)

    def test_dominated_by_slow_samples(self):
        # HM is conservative: one very slow chunk drags the estimate down.
        history = [record(0, 1_000_000, 1.0)] * 4 + [record(4, 1_000_000, 100.0)]
        hm = harmonic_mean_throughput(history)
        assert hm < 0.4e6 * 8


class TestAbrContext:
    def test_menu_is_first_lookahead(self):
        menus = encode_clip(DEFAULT_CHANNELS[0], 3, seed=0)
        ctx = AbrContext(lookahead=menus, buffer_s=5.0, tcp_info=info())
        assert ctx.menu is menus[0]

    def test_abstract_choose_raises(self):
        menus = encode_clip(DEFAULT_CHANNELS[0], 1, seed=0)
        ctx = AbrContext(lookahead=menus, buffer_s=0.0, tcp_info=info())
        with pytest.raises(NotImplementedError):
            AbrAlgorithm().choose(ctx)

    def test_default_hooks_are_noops(self):
        algo = AbrAlgorithm()
        algo.begin_stream()
        algo.on_chunk_complete(record(0))

"""Tests for repro.abr.bba — buffer-based control with the SSIM objective."""

import pytest

from repro.abr.base import AbrContext
from repro.abr.bba import BBA
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.tcp import TcpInfo


def ctx(buffer_s, seed=0):
    menus = encode_clip(DEFAULT_CHANNELS[0], 1, seed=seed)
    info = TcpInfo(cwnd=10, in_flight=0, min_rtt=0.05, rtt=0.05, delivery_rate=0)
    return AbrContext(lookahead=menus, buffer_s=buffer_s, tcp_info=info)


class TestBufferMap:
    def test_lowest_rung_below_reservoir(self):
        bba = BBA()
        assert bba.choose(ctx(0.0)) == 0
        assert bba.choose(ctx(bba.reservoir_s * 0.99)) == 0

    def test_highest_quality_above_upper_reservoir(self):
        bba = BBA()
        context = ctx(bba.upper_reservoir_s + 0.5)
        menu = context.menu
        choice = bba.choose(context)
        # The chosen version is the max-SSIM one (ties broken by index).
        assert menu[choice].ssim_db == max(v.ssim_db for v in menu)

    def test_rate_limit_linear_between_reservoirs(self):
        bba = BBA(max_buffer_s=15.0)
        mid = (bba.reservoir_s + bba.upper_reservoir_s) / 2
        limit = bba.rate_limit(mid, 1e6, 5e6)
        assert limit == pytest.approx(3e6)

    def test_choice_monotone_in_buffer(self):
        bba = BBA()
        choices = [bba.choose(ctx(b, seed=1)) for b in (0.0, 3.0, 6.0, 9.0, 12.0, 14.5)]
        assert choices == sorted(choices)

    def test_ssim_objective_respects_rate_limit(self):
        # Every selected version's bitrate must fit under the map's limit.
        bba = BBA()
        for seed in range(10):
            for b in (2.0, 5.0, 8.0, 11.0):
                context = ctx(b, seed=seed)
                menu = context.menu
                rates = [v.bitrate for v in menu]
                limit = bba.rate_limit(b, min(rates), max(rates))
                version = menu[bba.choose(context)]
                assert version.bitrate <= limit + 1e-9

    def test_fat_chunk_skipped_even_at_high_buffer(self):
        # VBR: when the top rung's actual bitrate exceeds the map limit,
        # BBA steps down — its characteristic robustness.
        bba = BBA(upper_reservoir_fraction=0.999)
        found_step_down = False
        for seed in range(40):
            context = ctx(12.0, seed=seed)
            if bba.choose(context) < len(context.menu) - 1:
                found_step_down = True
                break
        assert found_step_down

    def test_invalid_reservoirs_rejected(self):
        with pytest.raises(ValueError):
            BBA(reservoir_fraction=0.8, upper_reservoir_fraction=0.5)
        with pytest.raises(ValueError):
            BBA(reservoir_fraction=0.0)

    def test_stateless_across_streams(self):
        bba = BBA()
        first = bba.choose(ctx(7.0, seed=2))
        bba.begin_stream()
        assert bba.choose(ctx(7.0, seed=2)) == first

"""Tests for repro.abr.cs2p — the HMM throughput predictor and CS2P-MPC."""

import numpy as np
import pytest

from repro.abr.base import AbrContext, ChunkRecord
from repro.abr.cs2p import (
    Cs2pMpc,
    Cs2pPredictor,
    DiscreteThroughputHmm,
    throughput_series_from_streams,
)
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.tcp import TcpInfo


def make_markov_series(n_series=20, length=80, seed=0):
    """Sessions whose throughput genuinely follows 2 discrete states."""
    rng = np.random.default_rng(seed)
    series = []
    for _ in range(n_series):
        state = rng.integers(2)
        seq = []
        for _ in range(length):
            if rng.random() < 0.05:
                state = 1 - state
            level = (1e6, 1e7)[state]
            seq.append(level * np.exp(rng.normal(0, 0.1)))
        series.append(seq)
    return series


def info():
    return TcpInfo(cwnd=10, in_flight=0, min_rtt=0.05, rtt=0.05, delivery_rate=0)


class TestHmmTraining:
    def test_em_increases_likelihood(self):
        series = make_markov_series()
        hmm = DiscreteThroughputHmm(n_states=2, seed=0)
        before = hmm.log_likelihood(series)
        fit = hmm.fit(series, max_iterations=20)
        after = hmm.log_likelihood(series)
        assert after > before
        assert fit.iterations >= 1

    def test_recovers_two_states(self):
        series = make_markov_series(seed=1)
        hmm = DiscreteThroughputHmm(n_states=2, seed=1)
        hmm.fit(series, max_iterations=30)
        learned_levels = np.exp(hmm.means)
        assert learned_levels[0] == pytest.approx(1e6, rel=0.4)
        assert learned_levels[1] == pytest.approx(1e7, rel=0.4)

    def test_learned_states_are_sticky(self):
        series = make_markov_series(seed=2)
        hmm = DiscreteThroughputHmm(n_states=2, seed=2)
        hmm.fit(series, max_iterations=30)
        assert hmm.transition[0, 0] > 0.7
        assert hmm.transition[1, 1] > 0.7

    def test_model_mismatch_on_continuous_evolution(self):
        # The Fig. 2 point: an HMM fit on discrete-state data explains that
        # world far better than the heavy-tailed continuous world.
        from repro.net.link import HeavyTailLink

        markov_series = make_markov_series(seed=3)
        continuous_series = [
            HeavyTailLink(base_bps=3e6, fade_rate=0.0, seed=s).sample_epochs(
                80, epoch=1.0
            )
            for s in range(20)
        ]
        hmm = DiscreteThroughputHmm(n_states=2, seed=3)
        hmm.fit(markov_series, max_iterations=25)
        assert hmm.log_likelihood(markov_series) > hmm.log_likelihood(
            continuous_series
        )

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            DiscreteThroughputHmm(n_states=0)
        hmm = DiscreteThroughputHmm(n_states=2)
        with pytest.raises(ValueError):
            hmm.fit([])
        with pytest.raises(ValueError):
            hmm.log_likelihood([[]])


class TestPrediction:
    def trained(self, seed=4):
        hmm = DiscreteThroughputHmm(n_states=2, seed=seed)
        hmm.fit(make_markov_series(seed=seed), max_iterations=25)
        return hmm

    def test_belief_tracks_observations(self):
        hmm = self.trained()
        slow_belief = hmm.state_belief([1e6] * 10)
        fast_belief = hmm.state_belief([1e7] * 10)
        assert slow_belief[0] > 0.9
        assert fast_belief[1] > 0.9

    def test_prediction_follows_belief(self):
        hmm = self.trained()
        slow = hmm.predict_throughput(hmm.state_belief([1e6] * 10))
        fast = hmm.predict_throughput(hmm.state_belief([1e7] * 10))
        assert fast > 3 * slow

    def test_empty_history_uses_prior(self):
        hmm = self.trained()
        prior = hmm.predict_throughput(hmm.state_belief([]))
        assert 1e5 < prior < 1e8

    def test_steps_ahead_validation(self):
        hmm = self.trained()
        with pytest.raises(ValueError):
            hmm.predict_throughput(hmm.state_belief([1e6]), steps_ahead=0)


class TestCs2pMpc:
    def record(self, i, throughput):
        size = 5e5
        return ChunkRecord(
            chunk_index=i, rung=5, size_bytes=size, ssim_db=15.0,
            transmission_time=size * 8 / throughput, info_at_send=info(),
            send_time=i * 2.0,
        )

    def test_adapts_to_state(self):
        hmm = DiscreteThroughputHmm(n_states=2, seed=5)
        hmm.fit(make_markov_series(seed=5), max_iterations=25)
        scheme = Cs2pMpc(hmm)
        menus = encode_clip(DEFAULT_CHANNELS[0], 8, seed=0)
        slow_ctx = AbrContext(
            lookahead=menus, buffer_s=8.0, tcp_info=info(),
            history=[self.record(i, 1e6) for i in range(10)],
        )
        fast_ctx = AbrContext(
            lookahead=menus, buffer_s=8.0, tcp_info=info(),
            history=[self.record(i, 1e7) for i in range(10)],
        )
        assert scheme.choose(fast_ctx) > scheme.choose(slow_ctx)

    def test_streams_end_to_end(self):
        from repro.net.link import ConstantLink
        from repro.net.tcp import TcpConnection
        from repro.streaming import simulate_stream

        hmm = DiscreteThroughputHmm(n_states=2, seed=6)
        hmm.fit(make_markov_series(seed=6), max_iterations=20)
        result = simulate_stream(
            iter(encode_clip(DEFAULT_CHANNELS[0], 60, seed=1)),
            Cs2pMpc(hmm),
            TcpConnection(ConstantLink(6e6), base_rtt=0.05),
            watch_time_s=60.0,
        )
        assert len(result.records) > 10


class TestSeriesExtraction:
    def test_extracts_throughputs(self):
        from repro.streaming.session import StreamResult

        records = [self_record(i) for i in range(5)]
        stream = StreamResult(0, "x", records=records)
        series = throughput_series_from_streams([stream])
        assert len(series) == 1
        assert len(series[0]) == 5

    def test_skips_short_streams(self):
        from repro.streaming.session import StreamResult

        stream = StreamResult(0, "x", records=[self_record(0)])
        assert throughput_series_from_streams([stream]) == []


def self_record(i):
    return ChunkRecord(
        chunk_index=i, rung=5, size_bytes=5e5, ssim_db=15.0,
        transmission_time=1.0, info_at_send=info(), send_time=i * 2.0,
    )

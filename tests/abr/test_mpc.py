"""Tests for repro.abr.mpc — MPC-HM and RobustMPC-HM."""

import numpy as np
import pytest

from repro.abr.base import AbrContext, ChunkRecord
from repro.abr.mpc import (
    DEFAULT_STARTUP_THROUGHPUT_BPS,
    HarmonicMeanPredictor,
    MpcHm,
    RobustMpcHm,
)
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.tcp import TcpInfo


def info():
    return TcpInfo(cwnd=10, in_flight=0, min_rtt=0.05, rtt=0.05, delivery_rate=0)


def record(i, size=1_000_000, tx=1.0):
    return ChunkRecord(
        chunk_index=i, rung=5, size_bytes=size, ssim_db=15.0,
        transmission_time=tx, info_at_send=info(), send_time=0.0,
    )


def ctx(buffer_s=10.0, history=None, seed=0, n=8):
    menus = encode_clip(DEFAULT_CHANNELS[0], n, seed=seed)
    return AbrContext(
        lookahead=menus, buffer_s=buffer_s, tcp_info=info(),
        history=history if history is not None else [],
    )


class TestHarmonicMeanPredictor:
    def test_point_mass_distribution(self):
        predictor = HarmonicMeanPredictor()
        context = ctx(history=[record(0)])
        dist = predictor.predict(context, 0, np.array([1_000_000, 2_000_000]))
        assert dist.times.shape == (2, 1)
        assert dist.probs.shape == (2, 1)
        # 8 Mbps HM estimate -> 1 MB takes 1 s.
        assert dist.times[0, 0] == pytest.approx(1.0)
        assert dist.times[1, 0] == pytest.approx(2.0)

    def test_startup_default_estimate(self):
        predictor = HarmonicMeanPredictor()
        estimate = predictor.throughput_estimate(ctx())
        assert estimate == DEFAULT_STARTUP_THROUGHPUT_BPS

    def test_robust_discount_after_error(self):
        predictor = HarmonicMeanPredictor(robust=True, conservatism=1.0)
        context = ctx(history=[record(0, 1_000_000, 1.0)])  # 8 Mbps
        predictor.predict(context, 0, np.array([1_000_000.0]))
        # Actual throughput was 4x lower than predicted.
        predictor.observe(record(1, 1_000_000, 4.0))
        discounted = predictor.throughput_estimate(
            ctx(history=[record(0, 1_000_000, 1.0)])
        )
        plain = HarmonicMeanPredictor().throughput_estimate(
            ctx(history=[record(0, 1_000_000, 1.0)])
        )
        assert discounted < plain

    def test_conservatism_scales_discount(self):
        def discounted_estimate(conservatism):
            p = HarmonicMeanPredictor(robust=True, conservatism=conservatism)
            c = ctx(history=[record(0, 1_000_000, 1.0)])
            p.predict(c, 0, np.array([1_000_000.0]))
            p.observe(record(1, 1_000_000, 2.0))
            return p.throughput_estimate(c)

        assert discounted_estimate(3.0) < discounted_estimate(1.0)

    def test_reset_clears_errors(self):
        predictor = HarmonicMeanPredictor(robust=True)
        context = ctx(history=[record(0)])
        predictor.predict(context, 0, np.array([1_000_000.0]))
        predictor.observe(record(1, 1_000_000, 10.0))
        predictor.reset()
        assert predictor.throughput_estimate(context) == pytest.approx(
            HarmonicMeanPredictor().throughput_estimate(context)
        )

    def test_invalid_conservatism(self):
        with pytest.raises(ValueError):
            HarmonicMeanPredictor(conservatism=0.0)


class TestMpcHm:
    def test_high_throughput_history_yields_high_rung(self):
        mpc = MpcHm()
        history = [record(i, 2_000_000, 0.5) for i in range(5)]  # 32 Mbps
        choice = mpc.choose(ctx(buffer_s=12.0, history=history))
        assert choice >= 7

    def test_low_throughput_history_yields_low_rung(self):
        mpc = MpcHm()
        history = [record(i, 100_000, 2.0) for i in range(5)]  # 0.4 Mbps
        choice = mpc.choose(ctx(buffer_s=3.0, history=history))
        assert choice <= 2

    def test_startup_choice_is_conservative(self):
        mpc = MpcHm()
        choice = mpc.choose(ctx(buffer_s=0.0, history=[]))
        assert choice <= 3

    def test_empty_buffer_more_cautious_than_full(self):
        mpc = MpcHm()
        history = [record(i, 1_000_000, 1.0) for i in range(5)]  # 8 Mbps
        low = mpc.choose(ctx(buffer_s=0.5, history=history, seed=4))
        high = mpc.choose(ctx(buffer_s=13.0, history=history, seed=4))
        assert low <= high

    def test_robust_never_higher_than_plain(self):
        plain, robust = MpcHm(), RobustMpcHm()
        history = [
            record(0, 1_000_000, 0.4),
            record(1, 1_000_000, 2.5),
            record(2, 1_000_000, 0.5),
            record(3, 1_000_000, 1.5),
            record(4, 1_000_000, 0.6),
        ]
        # Feed both the same observations so robust accumulates errors.
        for algo in (plain, robust):
            algo.begin_stream()
            for r in history:
                algo.choose(ctx(buffer_s=8.0, history=history[: r.chunk_index]))
                algo.on_chunk_complete(r)
        c_plain = plain.choose(ctx(buffer_s=8.0, history=history, seed=2))
        c_robust = robust.choose(ctx(buffer_s=8.0, history=history, seed=2))
        assert c_robust <= c_plain

    def test_begin_stream_resets_predictor(self):
        mpc = RobustMpcHm()
        mpc.predictor._errors.append(5.0)
        mpc.begin_stream()
        assert len(mpc.predictor._errors) == 0

    def test_scheme_names(self):
        assert MpcHm().name == "mpc_hm"
        assert RobustMpcHm().name == "robust_mpc_hm"

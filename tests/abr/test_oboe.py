"""Tests for repro.abr.oboe — the Oboe-style auto-tuner."""

import numpy as np
import pytest

from repro.abr.base import AbrContext, ChunkRecord
from repro.abr.oboe import (
    OboeConfigMap,
    OboeRobustMpc,
    build_config_map,
    classify_state,
)
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.tcp import TcpInfo


def info():
    return TcpInfo(cwnd=10, in_flight=0, min_rtt=0.05, rtt=0.05, delivery_rate=0)


def record(i, throughput):
    size = 5e5
    return ChunkRecord(
        chunk_index=i, rung=5, size_bytes=size, ssim_db=15.0,
        transmission_time=size * 8 / throughput, info_at_send=info(),
        send_time=i * 2.0,
    )


class TestClassifyState:
    def test_mean_buckets(self):
        assert classify_state(5e5, 0.1)[0] == 0
        assert classify_state(2e6, 0.1)[0] == 1
        assert classify_state(8e6, 0.1)[0] == 2
        assert classify_state(3e7, 0.1)[0] == 3

    def test_cv_buckets(self):
        assert classify_state(2e6, 0.1)[1] == 0
        assert classify_state(2e6, 0.8)[1] == 1

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            classify_state(0.0, 0.1)


class TestConfigMap:
    def test_lookup_falls_back_to_default(self):
        config_map = OboeConfigMap(default_conservatism=2.5)
        assert config_map.lookup(2e6, 0.1) == 2.5

    def test_lookup_uses_table(self):
        config_map = OboeConfigMap(table={(1, 0): 0.5})
        assert config_map.lookup(2e6, 0.1) == 0.5

    def test_build_covers_all_states(self):
        config_map = build_config_map(
            candidates=(1.0, 3.0), traces_per_state=1,
            chunks_per_trace=20.0, seed=0,
        )
        assert len(config_map.table) == 8  # 4 mean buckets x 2 cv buckets
        assert set(config_map.table.values()) <= {1.0, 3.0}

    def test_variable_states_prefer_conservative_configs(self):
        config_map = build_config_map(
            candidates=(0.5, 6.0), traces_per_state=2,
            chunks_per_trace=40.0, seed=1,
        )
        # Aggregate: the high-variability column should not be *less*
        # conservative than the steady column on average.
        steady = np.mean(
            [v for (m, cv), v in config_map.table.items() if cv == 0]
        )
        variable = np.mean(
            [v for (m, cv), v in config_map.table.items() if cv == 1]
        )
        assert variable >= steady


class TestOboeRobustMpc:
    def make_scheme(self):
        config_map = OboeConfigMap(
            table={
                (0, 0): 6.0, (0, 1): 6.0,
                (1, 0): 3.0, (1, 1): 6.0,
                (2, 0): 1.0, (2, 1): 3.0,
                (3, 0): 0.5, (3, 1): 1.0,
            }
        )
        return OboeRobustMpc(config_map)

    def ctx(self, history, buffer_s=8.0):
        menus = encode_clip(DEFAULT_CHANNELS[0], 8, seed=0)
        return AbrContext(
            lookahead=menus, buffer_s=buffer_s, tcp_info=info(),
            history=history,
        )

    def test_switches_configuration_on_state_change(self):
        scheme = self.make_scheme()
        scheme.begin_stream()
        slow = [record(i, 5e5) for i in range(10)]
        scheme.choose(self.ctx(slow))
        conservative = scheme.current_conservatism
        fast = [record(i, 3e7) for i in range(10)]
        scheme.choose(self.ctx(fast))
        aggressive = scheme.current_conservatism
        assert conservative > aggressive

    def test_no_state_until_enough_history(self):
        scheme = self.make_scheme()
        scheme.begin_stream()
        before = scheme.current_conservatism
        scheme.choose(self.ctx([record(0, 1e6)]))
        assert scheme.current_conservatism == before

    def test_streams_end_to_end(self):
        from repro.net.link import ConstantLink
        from repro.net.tcp import TcpConnection
        from repro.streaming import simulate_stream

        result = simulate_stream(
            iter(encode_clip(DEFAULT_CHANNELS[0], 60, seed=1)),
            self.make_scheme(),
            TcpConnection(ConstantLink(8e6), base_rtt=0.05),
            watch_time_s=60.0,
        )
        assert len(result.records) > 10
        assert result.stall_ratio < 0.2

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            OboeRobustMpc(OboeConfigMap(), window=1)

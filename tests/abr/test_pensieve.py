"""Tests for repro.abr.pensieve — model, training env, A2C, policy."""

import numpy as np
import pytest

from repro.abr.base import AbrContext, ChunkRecord
from repro.abr.pensieve import (
    ActorCritic,
    PENSIEVE_STATE_DIM,
    Pensieve,
    PensieveTrainer,
    PensieveTrainingConfig,
    SimpleChunkEnv,
)
from repro.abr.pensieve.model import encode_state
from repro.media.encoder import encode_clip
from repro.media.ladder import PUFFER_LADDER
from repro.media.source import DEFAULT_CHANNELS
from repro.net.tcp import TcpInfo
from repro.traces import generate_fcc_dataset


def info():
    return TcpInfo(cwnd=10, in_flight=0, min_rtt=0.05, rtt=0.05, delivery_rate=0)


class TestStateEncoding:
    def test_dimension(self):
        state = encode_state(None, 0.0, [], PUFFER_LADDER.bitrates)
        assert state.shape == (PENSIEVE_STATE_DIM,)

    def test_zero_padded_history(self):
        state = encode_state(None, 0.0, [], PUFFER_LADDER.bitrates)
        assert np.all(state[2:18] == 0.0)

    def test_history_fills_most_recent_slots(self):
        rec = ChunkRecord(0, 3, 1_000_000, 12.0, 1.0, info(), 0.0)
        state = encode_state(None, 0.0, [rec], PUFFER_LADDER.bitrates)
        throughputs = state[2:10]
        assert throughputs[-1] > 0
        assert np.all(throughputs[:-1] == 0)

    def test_features_clipped_to_training_range(self):
        # 1000 Mbps observed throughput must not exceed the clip.
        rec = ChunkRecord(0, 3, 25_000_000, 12.0, 0.2, info(), 0.0)
        state = encode_state(None, 0.0, [rec], PUFFER_LADDER.bitrates)
        assert state[2:18].max() <= 1.0 + 1e-9

    def test_wrong_ladder_size_rejected(self):
        with pytest.raises(ValueError):
            encode_state(None, 0.0, [], [1e6] * 5)


class TestActorCritic:
    def test_probabilities_normalized(self):
        model = ActorCritic(seed=0)
        p = model.action_probabilities(np.zeros(PENSIEVE_STATE_DIM))
        assert p.shape == (1, 10)
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_greedy_is_argmax(self):
        model = ActorCritic(seed=0)
        state = np.random.default_rng(0).normal(size=PENSIEVE_STATE_DIM)
        p = model.action_probabilities(state)[0]
        assert model.act(state, greedy=True) == int(np.argmax(p))

    def test_sampling_respects_distribution(self):
        model = ActorCritic(seed=0)
        state = np.zeros(PENSIEVE_STATE_DIM)
        rng = np.random.default_rng(1)
        actions = [model.act(state, rng=rng) for _ in range(300)]
        assert len(set(actions)) > 1  # near-uniform at init

    def test_copy_round_trip(self):
        model = ActorCritic(seed=0)
        clone = model.copy()
        state = np.random.default_rng(2).normal(size=PENSIEVE_STATE_DIM)
        np.testing.assert_allclose(
            clone.action_probabilities(state), model.action_probabilities(state)
        )


class TestSimpleChunkEnv:
    def make_env(self, **kwargs):
        traces = generate_fcc_dataset(5, seed=0)
        return SimpleChunkEnv(traces, chunks_per_episode=20, seed=0, **kwargs)

    def test_reset_returns_state(self):
        env = self.make_env()
        state = env.reset()
        assert state.shape == (PENSIEVE_STATE_DIM,)

    def test_episode_terminates(self):
        env = self.make_env()
        env.reset()
        done = False
        steps = 0
        while not done:
            _, __, done = env.step(0)
            steps += 1
        assert steps == 20

    def test_higher_rung_lower_reward_on_slow_trace(self):
        slow_trace = [[3e5] * 300]
        env_a = SimpleChunkEnv(slow_trace, chunks_per_episode=30, seed=1)
        env_b = SimpleChunkEnv(slow_trace, chunks_per_episode=30, seed=1)
        env_a.reset()
        env_b.reset()
        reward_low = sum(env_a.step(0)[1] for _ in range(30))
        reward_high = sum(env_b.step(9)[1] for _ in range(30))
        assert reward_low > reward_high

    def test_smoothness_penalty(self):
        fast_trace = [[5e7] * 300]
        env = SimpleChunkEnv(fast_trace, chunks_per_episode=4, seed=2)
        env.reset()
        env.step(0)
        _, reward_jump, __ = env.step(9)
        env.reset()
        env.step(9)
        _, reward_stay, __ = env.step(9)
        assert reward_stay > reward_jump

    def test_buffer_capped(self):
        fast_trace = [[5e7] * 300]
        env = SimpleChunkEnv(fast_trace, chunks_per_episode=30, seed=3)
        env.reset()
        for _ in range(30):
            env.step(0)
            assert env.buffer_s <= env.max_buffer_s + 1e-9

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            SimpleChunkEnv([])


class TestTraining:
    def test_training_improves_reward_over_random(self):
        traces = generate_fcc_dataset(10, seed=3)
        env = SimpleChunkEnv(traces, chunks_per_episode=40, seed=4)
        model = ActorCritic(seed=4)
        trainer = PensieveTrainer(
            model, env, PensieveTrainingConfig(episodes=120, seed=4)
        )
        history = trainer.train()
        early = np.mean([h.total_reward for h in history[:20]])
        late = np.mean([h.total_reward for h in history[-20:]])
        assert late > early

    def test_episode_stats_populated(self):
        traces = generate_fcc_dataset(3, seed=5)
        env = SimpleChunkEnv(traces, chunks_per_episode=10, seed=5)
        model = ActorCritic(seed=5)
        trainer = PensieveTrainer(
            model, env, PensieveTrainingConfig(episodes=3, seed=5)
        )
        history = trainer.train()
        assert len(history) == 3
        assert all(h.mean_bitrate_mbps > 0 for h in history)


class TestPolicy:
    def test_action_space_must_match_ladder(self):
        with pytest.raises(ValueError):
            Pensieve(ActorCritic(n_actions=5))

    def test_choose_returns_valid_rung(self):
        pensieve = Pensieve(ActorCritic(seed=0))
        menus = encode_clip(DEFAULT_CHANNELS[0], 1, seed=0)
        ctx = AbrContext(lookahead=menus, buffer_s=5.0, tcp_info=info())
        choice = pensieve.choose(ctx)
        assert 0 <= choice < 10

    def test_begin_stream_clears_last_rung(self):
        pensieve = Pensieve(ActorCritic(seed=0))
        menus = encode_clip(DEFAULT_CHANNELS[0], 1, seed=0)
        ctx = AbrContext(lookahead=menus, buffer_s=5.0, tcp_info=info())
        pensieve.choose(ctx)
        assert pensieve._last_rung is not None
        pensieve.begin_stream()
        assert pensieve._last_rung is None

"""Tests for the rate-based and BOLA baselines."""

import pytest

from repro.abr.base import AbrContext, ChunkRecord
from repro.abr.bola import Bola
from repro.abr.rate_based import RateBased
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.tcp import TcpInfo


def info():
    return TcpInfo(cwnd=10, in_flight=0, min_rtt=0.05, rtt=0.05, delivery_rate=0)


def record(i, size=1_000_000, tx=1.0):
    return ChunkRecord(
        chunk_index=i, rung=5, size_bytes=size, ssim_db=15.0,
        transmission_time=tx, info_at_send=info(), send_time=0.0,
    )


def ctx(buffer_s=8.0, history=None, seed=0):
    menus = encode_clip(DEFAULT_CHANNELS[0], 1, seed=seed)
    return AbrContext(
        lookahead=menus, buffer_s=buffer_s, tcp_info=info(),
        history=history or [],
    )


class TestRateBased:
    def test_tracks_throughput(self):
        rb = RateBased()
        fast = [record(i, 2_000_000, 0.5) for i in range(5)]  # 32 Mbps
        slow = [record(i, 100_000, 2.0) for i in range(5)]  # 0.4 Mbps
        assert rb.choose(ctx(history=fast)) > rb.choose(ctx(history=slow))

    def test_choice_fits_budget(self):
        rb = RateBased(safety_factor=1.0)
        history = [record(i, 500_000, 1.0) for i in range(5)]  # 4 Mbps
        context = ctx(history=history)
        version = context.menu[rb.choose(context)]
        assert version.size_bits / version.duration <= 4e6

    def test_startup_conservative(self):
        rb = RateBased()
        assert rb.choose(ctx(history=[])) <= 3

    def test_safety_factor_lowers_choice(self):
        history = [record(i, 1_000_000, 1.0) for i in range(5)]
        risky = RateBased(safety_factor=1.0).choose(ctx(history=history, seed=3))
        safe = RateBased(safety_factor=0.4).choose(ctx(history=history, seed=3))
        assert safe <= risky

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RateBased(safety_factor=0.0)
        with pytest.raises(ValueError):
            RateBased(window=0)


class TestBola:
    def test_low_buffer_low_rung(self):
        bola = Bola()
        assert bola.choose(ctx(buffer_s=0.5)) <= 2

    def test_choice_monotone_in_buffer(self):
        bola = Bola()
        choices = [
            bola.choose(ctx(buffer_s=b, seed=1))
            for b in (0.0, 3.0, 6.0, 9.0, 12.0)
        ]
        assert choices == sorted(choices)

    def test_buffer_agnostic_to_history(self):
        # BOLA-BASIC uses only the buffer, not throughput estimates.
        bola = Bola()
        with_history = bola.choose(
            ctx(buffer_s=6.0, history=[record(i) for i in range(5)], seed=2)
        )
        without = bola.choose(ctx(buffer_s=6.0, seed=2))
        assert with_history == without

    def test_full_buffer_reaches_high_rung(self):
        bola = Bola()
        assert bola.choose(ctx(buffer_s=13.0)) >= 6

    def test_invalid_target_fraction(self):
        with pytest.raises(ValueError):
            Bola(target_buffer_fraction=0.0)

"""Tests for repro.analysis.bootstrap — stall-ratio confidence intervals."""

import numpy as np
import pytest

from repro.analysis.bootstrap import (
    ConfidenceInterval,
    aggregate_stall_ratio,
    bootstrap_mean_ci,
    bootstrap_stall_ratio_ci,
)
from repro.streaming.session import StreamResult


def stream(play, stall):
    return StreamResult(0, "x", play_time=play, stall_time=stall)


class TestConfidenceInterval:
    def test_width_and_fraction(self):
        ci = ConfidenceInterval(point=0.2, low=0.15, high=0.25)
        assert ci.width == pytest.approx(0.1)
        assert ci.half_width_fraction == pytest.approx(0.25)

    def test_bracket_enforced(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(point=0.1, low=0.2, high=0.3)

    def test_overlaps(self):
        a = ConfidenceInterval(0.2, 0.1, 0.3)
        b = ConfidenceInterval(0.25, 0.2, 0.35)
        c = ConfidenceInterval(0.5, 0.4, 0.6)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_zero_point_fraction_infinite(self):
        ci = ConfidenceInterval(0.0, 0.0, 0.0)
        assert ci.half_width_fraction == float("inf")


class TestAggregateStallRatio:
    def test_ratio_of_sums(self):
        stalls = np.array([1.0, 0.0])
        watches = np.array([10.0, 90.0])
        assert aggregate_stall_ratio(stalls, watches) == pytest.approx(0.01)

    def test_zero_watch_time(self):
        assert aggregate_stall_ratio(np.array([0.0]), np.array([0.0])) == 0.0


class TestBootstrapStallRatio:
    def make_population(self, n=400, stall_prob=0.05, seed=0):
        rng = np.random.default_rng(seed)
        streams = []
        for _ in range(n):
            watch = float(np.exp(rng.normal(np.log(300), 1.0)))
            stall = watch * 0.1 if rng.random() < stall_prob else 0.0
            streams.append(stream(watch - stall, stall))
        return streams

    def test_point_estimate_matches_aggregate(self):
        streams = self.make_population()
        ci = bootstrap_stall_ratio_ci(streams, n_resamples=200, seed=0)
        stalls = np.array([s.stall_time for s in streams])
        watches = np.array([s.watch_time for s in streams])
        assert ci.point == pytest.approx(aggregate_stall_ratio(stalls, watches))

    def test_interval_brackets_point(self):
        ci = bootstrap_stall_ratio_ci(self.make_population(), n_resamples=200)
        assert ci.low <= ci.point <= ci.high

    def test_interval_narrows_with_data(self):
        small = bootstrap_stall_ratio_ci(
            self.make_population(200, seed=1), n_resamples=300, seed=1
        )
        large = bootstrap_stall_ratio_ci(
            self.make_population(6400, seed=1), n_resamples=300, seed=1
        )
        assert large.half_width_fraction < small.half_width_fraction

    def test_rare_stalls_make_wide_intervals(self):
        # §3.4: rebuffering rarity creates double-digit relative CI widths
        # at modest data volumes.
        streams = self.make_population(500, stall_prob=0.03, seed=2)
        ci = bootstrap_stall_ratio_ci(streams, n_resamples=400, seed=2)
        assert ci.half_width_fraction > 0.10

    def test_coverage_of_true_ratio(self):
        # The 95% CI should usually contain the generating process's true
        # stall ratio.
        hits = 0
        trials = 30
        for seed in range(trials):
            streams = self.make_population(800, stall_prob=0.05, seed=seed)
            ci = bootstrap_stall_ratio_ci(streams, n_resamples=200, seed=seed)
            if ci.low <= 0.005 <= ci.high:
                hits += 1
        assert hits >= trials * 0.75

    def test_empty_streams_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_stall_ratio_ci([])

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_stall_ratio_ci([stream(10, 0)], confidence=1.0)

    def test_deterministic_given_seed(self):
        streams = self.make_population(100)
        a = bootstrap_stall_ratio_ci(streams, seed=7)
        b = bootstrap_stall_ratio_ci(streams, seed=7)
        assert (a.low, a.high) == (b.low, b.high)


class TestBootstrapMean:
    def test_point_is_weighted_mean(self):
        ci = bootstrap_mean_ci([1.0, 3.0], weights=[3.0, 1.0], seed=0)
        assert ci.point == pytest.approx(1.5)

    def test_unweighted_default(self):
        ci = bootstrap_mean_ci([1.0, 3.0], seed=0)
        assert ci.point == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])

    def test_weight_shape_mismatch(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0, 2.0], weights=[1.0])

"""Tests for repro.analysis.plotting and repro.analysis.figures."""

import json

import numpy as np
import pytest

from repro.analysis.figures import all_figures
from repro.analysis.plotting import ccdf_plot, scatter_plot
from repro.analysis.stats import ccdf


class TestScatterPlot:
    def test_contains_markers_and_labels(self):
        art = scatter_plot({"fugu": (0.1, 17.0), "bba": (0.2, 16.5)})
        assert "A = fugu" in art
        assert "B = bba" in art
        grid_lines = [l for l in art.splitlines() if l.startswith("|")]
        assert any("A" in l for l in grid_lines)
        assert any("B" in l for l in grid_lines)

    def test_invert_x_flips_positions(self):
        points = {"low": (0.1, 1.0), "high": (0.9, 1.0)}
        normal = scatter_plot(points, width=30, height=5)
        inverted = scatter_plot(points, width=30, height=5, invert_x=True)

        def column_of(art, marker):
            for line in art.splitlines():
                if line.startswith("|") and marker in line:
                    return line.index(marker)
            raise AssertionError(marker)

        assert column_of(normal, "A") < column_of(normal, "B")
        assert column_of(inverted, "A") > column_of(inverted, "B")

    def test_single_point(self):
        art = scatter_plot({"only": (1.0, 1.0)})
        assert "A = only" in art

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter_plot({})


class TestCcdfPlot:
    def test_renders_series(self):
        rng = np.random.default_rng(0)
        x1, p1 = ccdf(np.exp(rng.normal(3, 1, 200)))
        x2, p2 = ccdf(np.exp(rng.normal(3.2, 1, 200)))
        art = ccdf_plot({"fugu": (x1, p1), "bba": (x2, p2)})
        assert "a = fugu" in art
        assert "b = bba" in art

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ccdf_plot({})

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError):
            ccdf_plot({"x": ([0.0], [0.5])})


class TestFigureBuilders:
    @pytest.fixture(scope="class")
    def trial(self):
        from repro.abr.pensieve import ActorCritic
        from repro.core.ttp import TransmissionTimePredictor
        from repro.experiment import (
            RandomizedTrial,
            TrialConfig,
            primary_experiment_schemes,
        )

        specs = primary_experiment_schemes(
            TransmissionTimePredictor(seed=0), ActorCritic(seed=0)
        )
        return RandomizedTrial(specs, TrialConfig(n_sessions=50, seed=3)).run()

    def test_all_figures_structure(self, trial):
        figures = all_figures(trial)
        assert set(figures) == {
            "fig1", "fig4", "fig8", "fig9", "fig10", "figA1",
        }

    def test_all_figures_json_serializable(self, trial):
        json.dumps(all_figures(trial))

    def test_fig1_rows_have_cis(self, trial):
        for row in all_figures(trial)["fig1"].values():
            assert row["stall_ci"][0] <= row["time_stalled_percent"]
            assert row["time_stalled_percent"] <= row["stall_ci"][1]
            assert row["ssim_ci"][0] <= row["mean_ssim_db"] <= row["ssim_ci"][1]

    def test_fig10_curves_are_survival_functions(self, trial):
        for curve in all_figures(trial)["fig10"].values():
            p = curve["survival"]
            assert all(0 < v <= 1 for v in p)
            assert all(a >= b for a, b in zip(p, p[1:]))

    def test_consort_counts_consistent(self, trial):
        data = all_figures(trial)["figA1"]
        total = sum(arm["streams"] for arm in data["arms"].values())
        assert total == data["streams_total"]

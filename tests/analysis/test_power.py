"""Tests for repro.analysis.power — the detectability Monte Carlo (§3.4)."""

import numpy as np
import pytest

from repro.analysis.power import (
    StreamPopulation,
    detectability_curve,
    stall_ratio_ci_width,
)


class TestStreamPopulation:
    def test_true_stall_ratio(self):
        pop = StreamPopulation(
            stall_probability=0.05, mean_stall_ratio_when_stalled=0.1
        )
        assert pop.true_stall_ratio == pytest.approx(0.005)

    def test_scaled(self):
        pop = StreamPopulation()
        improved = pop.scaled(0.8)
        assert improved.true_stall_ratio == pytest.approx(
            pop.true_stall_ratio * 0.8
        )

    def test_sample_shapes_and_signs(self):
        pop = StreamPopulation()
        watch, stall = pop.sample(500, np.random.default_rng(0))
        assert watch.shape == stall.shape == (500,)
        assert np.all(watch > 0)
        assert np.all(stall >= 0)

    def test_stalls_are_rare(self):
        # ~3% of Puffer streams had any stall (§3.4).
        pop = StreamPopulation(stall_probability=0.03)
        _, stall = pop.sample(5000, np.random.default_rng(1))
        assert (stall > 0).mean() == pytest.approx(0.03, abs=0.01)

    def test_empirical_ratio_near_truth(self):
        pop = StreamPopulation()
        watch, stall = pop.sample(100_000, np.random.default_rng(2))
        empirical = stall.sum() / watch.sum()
        # Ratio-of-sums is watch-weighted, so tolerance is loose.
        assert empirical == pytest.approx(pop.true_stall_ratio, rel=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamPopulation(stall_probability=0.0)
        with pytest.raises(ValueError):
            StreamPopulation().scaled(0.0)


class TestCiWidth:
    def test_interval_brackets_point(self):
        pop = StreamPopulation()
        watch, stall = pop.sample(500, np.random.default_rng(3))
        point, low, high = stall_ratio_ci_width(watch, stall, n_resamples=200)
        assert low <= point <= high


class TestDetectability:
    def test_detection_improves_with_data(self):
        points = detectability_curve(
            improvement=0.5,
            stream_counts=(100, 3000),
            n_trials=12,
            n_resamples=120,
            seed=0,
        )
        assert points[-1].detection_rate >= points[0].detection_rate

    def test_large_effects_detectable_small_not(self):
        big = detectability_curve(
            improvement=0.8, stream_counts=(4000,), n_trials=10,
            n_resamples=120, seed=1,
        )[0]
        small = detectability_curve(
            improvement=0.05, stream_counts=(4000,), n_trials=10,
            n_resamples=120, seed=1,
        )[0]
        assert big.detection_rate > small.detection_rate

    def test_ci_width_shrinks_with_data(self):
        points = detectability_curve(
            improvement=0.15, stream_counts=(200, 6400), n_trials=8,
            n_resamples=100, seed=2,
        )
        assert points[1].ci_half_width_fraction < points[0].ci_half_width_fraction

    def test_stream_years_reported(self):
        points = detectability_curve(
            improvement=0.15, stream_counts=(100,), n_trials=4,
            n_resamples=50, seed=3,
        )
        assert points[0].stream_years_per_scheme > 0

    def test_invalid_improvement(self):
        with pytest.raises(ValueError):
            detectability_curve(improvement=0.0)

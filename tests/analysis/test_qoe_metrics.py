"""Tests for repro.analysis.qoe_metrics — Eq. 1 and QoE-lin per stream."""

import numpy as np
import pytest

from repro.abr.base import ChunkRecord
from repro.analysis.qoe_metrics import (
    QOE_LIN_REBUFFER_PENALTY,
    mean_qoe,
    qoe_lin,
    ssim_qoe,
    stream_qoe,
)
from repro.core.qoe import QoeParams
from repro.net.tcp import TcpInfo
from repro.streaming.session import StreamResult


def info():
    return TcpInfo(cwnd=10, in_flight=0, min_rtt=0.05, rtt=0.05, delivery_rate=0)


def stream(ssims=(15.0, 15.0), size=500_000, stall=0.0):
    records = [
        ChunkRecord(
            chunk_index=i, rung=5, size_bytes=size, ssim_db=ssim,
            transmission_time=1.0, info_at_send=info(), send_time=i * 2.0,
        )
        for i, ssim in enumerate(ssims)
    ]
    return StreamResult(
        0, "x", records=records,
        play_time=len(ssims) * 2.002 - stall, stall_time=stall,
    )


class TestSsimQoe:
    def test_constant_quality_no_stall(self):
        assert ssim_qoe(stream((15.0, 15.0, 15.0))) == pytest.approx(15.0)

    def test_variation_penalized(self):
        smooth = ssim_qoe(stream((15.0, 15.0)))
        jumpy = ssim_qoe(stream((13.0, 17.0)))
        assert jumpy < smooth

    def test_stall_penalized_at_mu(self):
        clean = ssim_qoe(stream((15.0, 15.0)))
        stalled = ssim_qoe(stream((15.0, 15.0), stall=0.1))
        # µ=100 per stall second, amortized over 2 chunks.
        assert clean - stalled == pytest.approx(100.0 * 0.1 / 2)

    def test_custom_params(self):
        params = QoeParams(variation_weight=0.0, stall_weight=0.0)
        assert ssim_qoe(stream((10.0, 20.0)), params) == pytest.approx(15.0)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            ssim_qoe(StreamResult(0, "x"))


class TestQoeLin:
    def test_bitrate_reward(self):
        # 500 kB / 2.002 s ~ 2 Mbit/s per chunk.
        value = qoe_lin(stream((15.0, 15.0)))
        assert value == pytest.approx(500_000 * 8 / 2.002 / 1e6, rel=1e-6)

    def test_rebuffer_penalty(self):
        clean = qoe_lin(stream((15.0, 15.0)))
        stalled = qoe_lin(stream((15.0, 15.0), stall=1.0))
        assert clean - stalled == pytest.approx(
            QOE_LIN_REBUFFER_PENALTY / 2
        )

    def test_blind_to_ssim(self):
        # Same sizes, different quality: QoE-lin cannot tell them apart —
        # the Fig. 4 blind spot.
        low = qoe_lin(stream((10.0, 10.0)))
        high = qoe_lin(stream((18.0, 18.0)))
        assert low == pytest.approx(high)

    def test_ssim_qoe_is_not_blind(self):
        low = ssim_qoe(stream((10.0, 10.0)))
        high = ssim_qoe(stream((18.0, 18.0)))
        assert high > low


class TestAggregation:
    def test_stream_qoe_bundle(self):
        bundle = stream_qoe(stream((15.0, 16.0)))
        assert bundle.n_chunks == 2
        assert np.isfinite(bundle.ssim_qoe_per_chunk)
        assert np.isfinite(bundle.qoe_lin_per_chunk)

    def test_mean_qoe_weights_by_watch_time(self):
        short = stream((10.0,))
        long = stream((20.0,) * 10)
        combined = mean_qoe([short, long])
        assert combined.ssim_qoe_per_chunk > 15.0  # long stream dominates

    def test_mean_qoe_skips_empty(self):
        played = stream((15.0, 15.0))
        empty = StreamResult(1, "x")
        assert mean_qoe([played, empty]).n_chunks == 2

    def test_mean_qoe_all_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_qoe([StreamResult(0, "x")])

"""Tests for repro.analysis.stats — weighted statistics and CCDFs."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import (
    ccdf,
    stream_years,
    weighted_mean,
    weighted_mean_ci,
    weighted_standard_error,
)


class TestWeightedMean:
    def test_equal_weights_is_plain_mean(self):
        assert weighted_mean([1.0, 2.0, 3.0], [1.0, 1.0, 1.0]) == pytest.approx(2.0)

    def test_weighting(self):
        assert weighted_mean([0.0, 10.0], [9.0, 1.0]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_mean([], [])
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_mean([1.0], [-1.0])


class TestWeightedStandardError:
    def test_reduces_to_plain_se_with_equal_weights(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100)
        se = weighted_standard_error(values, np.ones(100))
        plain = values.std(ddof=1) / np.sqrt(100)
        assert se == pytest.approx(plain, rel=0.02)

    def test_shrinks_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = weighted_standard_error(rng.normal(size=50), np.ones(50))
        large = weighted_standard_error(rng.normal(size=5000), np.ones(5000))
        assert large < small

    def test_heavily_weighted_outlier_dominates(self):
        values = [0.0] * 10 + [10.0]
        light = weighted_standard_error(values, [1.0] * 10 + [0.01])
        heavy = weighted_standard_error(values, [1.0] * 10 + [5.0])
        assert heavy > light

    def test_needs_two_values(self):
        with pytest.raises(ValueError):
            weighted_standard_error([1.0], [1.0])


class TestWeightedMeanCi:
    def test_brackets_mean(self):
        rng = np.random.default_rng(2)
        values = rng.normal(10.0, 2.0, 200)
        ci = weighted_mean_ci(values, np.ones(200))
        assert ci.low < 10.0 < ci.high

    def test_confidence_widens_interval(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=100)
        narrow = weighted_mean_ci(values, np.ones(100), confidence=0.68)
        wide = weighted_mean_ci(values, np.ones(100), confidence=0.99)
        assert wide.width > narrow.width

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            weighted_mean_ci([1.0, 2.0], [1.0, 1.0], confidence=0.0)


class TestCcdf:
    def test_values_sorted_probabilities_decreasing(self):
        x, p = ccdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(x, [1.0, 2.0, 3.0])
        assert all(a >= b for a, b in zip(p, p[1:]))

    def test_last_point_plottable_on_log_axis(self):
        _, p = ccdf([1.0, 2.0, 3.0, 4.0])
        assert p[-1] > 0

    def test_first_probability(self):
        _, p = ccdf(list(range(10)))
        assert p[0] == pytest.approx(0.9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ccdf([])

    @given(st.lists(st.floats(0.1, 1e5), min_size=2, max_size=200))
    def test_probabilities_in_unit_interval(self, values):
        _, p = ccdf(values)
        assert np.all((p > 0) & (p <= 1))


class TestStreamYears:
    def test_conversion(self):
        assert stream_years(365.25 * 24 * 3600.0) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            stream_years(-1.0)

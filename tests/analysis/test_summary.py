"""Tests for repro.analysis.summary — Fig. 1 rows and slow-path splits."""

import numpy as np
import pytest

from repro.abr.base import ChunkRecord
from repro.analysis.summary import (
    results_table,
    split_slow_paths,
    summarize_scheme,
)
from repro.net.tcp import TcpInfo
from repro.streaming.session import StreamResult


def make_stream(
    stream_id=0, ssim=16.0, play=100.0, stall=0.0, delivery=1e7, n_chunks=10
):
    info = TcpInfo(cwnd=20, in_flight=5, min_rtt=0.04, rtt=0.05,
                   delivery_rate=delivery)
    records = [
        ChunkRecord(
            chunk_index=i, rung=5, size_bytes=5e5, ssim_db=ssim,
            transmission_time=1.0, info_at_send=info, send_time=i * 2.0,
        )
        for i in range(n_chunks)
    ]
    return StreamResult(
        stream_id, "x", records=records, play_time=play, stall_time=stall,
        startup_delay=0.5, total_time=play + stall,
    )


class TestSummarize:
    def test_row_fields(self):
        streams = [make_stream(i) for i in range(20)]
        row = summarize_scheme("x", streams, n_resamples=100)
        assert row.n_streams == 20
        assert row.mean_ssim_db.point == pytest.approx(16.0)
        assert row.stall_ratio.point == 0.0
        assert row.ssim_variation_db == 0.0
        assert row.startup_delay_s == pytest.approx(0.5)
        assert row.first_chunk_ssim_db == pytest.approx(16.0)

    def test_stall_ratio_weighted_by_watch_time(self):
        streams = [
            make_stream(0, play=95.0, stall=5.0),
            make_stream(1, play=900.0, stall=0.0),
        ]
        row = summarize_scheme("x", streams, n_resamples=100)
        assert row.stall_ratio.point == pytest.approx(5.0 / 1000.0)
        assert row.fraction_streams_with_stall == pytest.approx(0.5)

    def test_ssim_weighted_by_duration(self):
        streams = [
            make_stream(0, ssim=10.0, play=100.0),
            make_stream(1, ssim=20.0, play=300.0),
        ]
        row = summarize_scheme("x", streams, n_resamples=100)
        assert row.mean_ssim_db.point == pytest.approx(17.5)

    def test_session_durations_optional(self):
        streams = [make_stream(i) for i in range(5)]
        row = summarize_scheme("x", streams, session_durations=[60.0, 120.0],
                               n_resamples=50)
        assert row.mean_session_duration_s is not None
        assert row.mean_session_duration_s.point == pytest.approx(90.0)

    def test_empty_scheme_rejected(self):
        with pytest.raises(ValueError):
            summarize_scheme("x", [])

    def test_stream_years_accumulates(self):
        streams = [make_stream(i, play=365.25 * 24 * 3600.0 / 10) for i in range(10)]
        row = summarize_scheme("x", streams, n_resamples=50)
        assert row.stream_years == pytest.approx(1.0)


class TestSlowPaths:
    def test_split_by_delivery_rate(self):
        slow = make_stream(0, delivery=2e6)
        fast = make_stream(1, delivery=2e7)
        slows, fasts = split_slow_paths([slow, fast])
        assert slows == [slow]
        assert fasts == [fast]

    def test_threshold_configurable(self):
        s = make_stream(0, delivery=8e6)
        slows, _ = split_slow_paths([s], threshold_bps=1e7)
        assert slows == [s]


class TestResultsTable:
    def test_table_shape(self):
        streams = [make_stream(i) for i in range(10)]
        row = summarize_scheme("fugu", streams, session_durations=[60.0] * 3,
                               n_resamples=50)
        table = results_table([row])
        assert "fugu" in table
        cols = table["fugu"]
        assert cols["time_stalled_percent"] == 0.0
        assert cols["mean_ssim_db"] == pytest.approx(16.0)
        assert cols["mean_duration_min"] == pytest.approx(1.0)

"""Differential oracle: the batch kernel equals the scalar path bit for bit.

Every case replays identical seeds through ``run_session`` and
``run_session_batch`` and asserts dataclass equality of the shards — every
chunk record, every float, every CONSORT counter.  There is no tolerance:
any difference is either a kernel bug or a latent scalar-path bug (see
EXPERIMENTS.md, "Batch execution backend").
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.bba import BBA
from repro.abr.bola import Bola
from repro.abr.mpc import MpcHm
from repro.abr.rate_based import RateBased
from repro.batch import is_vectorizable_algorithm, run_session_batch
from repro.experiment.harness import TrialConfig, run_session
from repro.experiment.presets import smoke_trial_config
from repro.experiment.schemes import SchemeSpec
from repro.fleet import FleetConfig, WorkloadConfig, run_fleet
from repro.net.path import PopulationModel


def spec(name, factory):
    return SchemeSpec(
        name=name, control="classical", predictor="n/a",
        optimization_goal="per-scheme", how_trained="n/a", factory=factory,
    )


VECTORIZABLE = [
    ("bba", BBA),
    ("bola", Bola),
    ("rate_based", RateBased),
]


def assert_equivalent(specs, config, session_ids, lanes):
    shards = run_session_batch(specs, config, session_ids, lanes=lanes)
    for sid, shard in zip(session_ids, shards):
        assert shard == run_session(specs, config, sid), (
            f"batch shard diverged from scalar for session {sid} "
            f"(lanes={lanes})"
        )


class TestSchemeEquivalence:
    @pytest.mark.parametrize("name,factory", VECTORIZABLE)
    def test_each_vectorizable_scheme(self, name, factory):
        config = smoke_trial_config(seed=9)
        assert_equivalent([spec(name, factory)], config, range(10), lanes=4)

    def test_mixed_specs_with_fallback_scheme(self):
        # mpc_hm is not vectorizable: its sessions must transparently run
        # on the scalar path inside the same batch call.
        specs = [spec("bba", BBA), spec("mpc_hm", MpcHm)]
        config = smoke_trial_config(seed=2)
        assert_equivalent(specs, config, range(12), lanes=5)

    def test_all_cubic_population_falls_back(self):
        # CUBIC congestion control is not vectorized; every session takes
        # the scalar fallback and the result must still be identical.
        config = smoke_trial_config(seed=4)
        config = TrialConfig(
            n_sessions=config.n_sessions,
            seed=config.seed,
            population=PopulationModel(cubic_fraction=1.0),
            viewer=config.viewer,
        )
        assert_equivalent([spec("bba", BBA)], config, range(6), lanes=4)

    def test_vectorizability_classifier(self):
        assert is_vectorizable_algorithm(BBA())
        assert is_vectorizable_algorithm(Bola())
        assert is_vectorizable_algorithm(RateBased())
        assert not is_vectorizable_algorithm(MpcHm())


class TestBatchShapeInvariance:
    @pytest.mark.parametrize("lanes", [1, 2, 7, 64])
    def test_any_lane_count(self, lanes):
        config = smoke_trial_config(seed=13)
        assert_equivalent([spec("bba", BBA)], config, range(9), lanes=lanes)

    def test_non_contiguous_unordered_ids(self):
        config = smoke_trial_config(seed=1)
        specs = [spec("bola", Bola)]
        ids = [5, 17, 2, 33]
        shards = run_session_batch(specs, config, ids, lanes=3)
        for sid, shard in zip(ids, shards):
            assert shard == run_session(specs, config, sid)

    def test_empty_ids(self):
        assert run_session_batch(
            [spec("bba", BBA)], smoke_trial_config(seed=0), []
        ) == []

    def test_invalid_lanes_rejected(self):
        with pytest.raises(ValueError):
            run_session_batch(
                [spec("bba", BBA)], smoke_trial_config(seed=0), [0], lanes=0
            )

    def test_telemetry_config_falls_back(self):
        config = smoke_trial_config(seed=6)
        config = TrialConfig(
            n_sessions=config.n_sessions,
            seed=config.seed,
            viewer=config.viewer,
            collect_telemetry=True,
        )
        specs = [spec("bba", BBA)]
        shards = run_session_batch(specs, config, range(3), lanes=2)
        for sid, shard in zip(range(3), shards):
            ref = run_session(specs, config, sid)
            assert shard == ref
            assert shard.telemetry is not None


class TestRandomizedConfigs:
    @given(
        seed=st.integers(0, 10_000),
        scheme=st.sampled_from(VECTORIZABLE),
        median_rtt=st.floats(0.005, 0.2),
        lanes=st.integers(1, 9),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_config_equivalence(self, seed, scheme, median_rtt, lanes):
        name, factory = scheme
        config = TrialConfig(
            n_sessions=200,
            seed=seed,
            population=PopulationModel(median_rtt=median_rtt),
            viewer=smoke_trial_config().viewer,
        )
        assert_equivalent([spec(name, factory)], config, range(3), lanes=lanes)


@pytest.mark.parallel_smoke
class TestFleetByteIdentity:
    """Fleet dumps are byte-identical with the batch executor on and off,
    at any worker count (``pytest -m parallel_smoke``)."""

    def _dump(self, executor, workers):
        specs = [spec("bba", BBA), spec("mpc_hm", MpcHm)]
        config = FleetConfig(
            workload=WorkloadConfig(days=0.01, sessions_per_hour=120.0, seed=5),
            trial=smoke_trial_config(seed=11),
            chunk_sessions=4,
            executor=executor,
            batch_lanes=3,
        )
        result = run_fleet(specs, config, workers=workers)
        assert result.throughput is not None
        assert result.throughput.executor == (
            "batch" if executor in ("batch", "auto") else "scalar"
        )
        return json.dumps(result.to_dump_dict(), sort_keys=True)

    def test_dump_identical_across_executors_and_workers(self):
        reference = self._dump("scalar", workers=1)
        assert self._dump("batch", workers=1) == reference
        assert self._dump("auto", workers=1) == reference
        assert self._dump("batch", workers=2) == reference

    def test_executor_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(executor="gpu")
        with pytest.raises(ValueError):
            FleetConfig(batch_lanes=0)

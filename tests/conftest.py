"""Shared test configuration.

Registers a hypothesis profile suited to simulation-heavy property tests:
no per-example deadline (a single example may run a short simulation) and a
bounded example count so the suite stays fast.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
    # No on-disk example database: together with `-p no:cacheprovider`
    # (pyproject addopts) this keeps the tier-1 suite runnable in
    # read-only checkouts, where nothing may be written to the repo root.
    database=None,
)
settings.load_profile("repro")

"""Shared test configuration.

Registers a hypothesis profile suited to simulation-heavy property tests:
no per-example deadline (a single example may run a short simulation) and a
bounded example count so the suite stays fast.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

"""Tests for repro.core.controller — stochastic value-iteration MPC."""

import numpy as np
import pytest

from repro.abr.base import AbrContext
from repro.core.controller import (
    TimeDistribution,
    ValueIterationController,
)
from repro.core.qoe import QoeParams
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.tcp import TcpInfo


def info():
    return TcpInfo(cwnd=10, in_flight=0, min_rtt=0.05, rtt=0.05, delivery_rate=0)


def ctx(buffer_s=10.0, last_ssim=None, seed=0, n=8):
    menus = encode_clip(DEFAULT_CHANNELS[0], n, seed=seed)
    return AbrContext(
        lookahead=menus, buffer_s=buffer_s, tcp_info=info(),
        last_ssim_db=last_ssim,
    )


class ConstantThroughputModel:
    """Deterministic model: transmission time = size / throughput."""

    def __init__(self, throughput_bps):
        self.throughput_bps = throughput_bps

    def predict(self, context, step, sizes_bytes):
        times = np.asarray(sizes_bytes) * 8.0 / self.throughput_bps
        return TimeDistribution.point_mass(times)


class BimodalModel:
    """Fast most of the time, occasionally catastrophic — stresses the
    stochastic planning that distinguishes Fugu from point-estimate MPC."""

    def __init__(self, slow_probability, slow_time=20.0):
        self.slow_probability = slow_probability
        self.slow_time = slow_time

    def predict(self, context, step, sizes_bytes):
        sizes = np.asarray(sizes_bytes, dtype=float)
        fast = sizes * 8.0 / 50e6
        times = np.stack([fast, np.full_like(fast, self.slow_time)], axis=1)
        probs = np.tile(
            [1.0 - self.slow_probability, self.slow_probability],
            (len(sizes), 1),
        )
        return TimeDistribution(times=times, probs=probs)


class TestTimeDistribution:
    def test_point_mass(self):
        dist = TimeDistribution.point_mass([1.0, 2.0])
        assert dist.times.shape == (2, 1)
        np.testing.assert_array_equal(dist.probs, 1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeDistribution(times=np.zeros((2, 3)), probs=np.zeros((2, 2)))

    def test_validate_checks_probabilities(self):
        dist = TimeDistribution(
            times=np.ones((1, 2)), probs=np.array([[0.7, 0.7]])
        )
        with pytest.raises(ValueError, match="sum to 1"):
            dist.validate()

    def test_validate_checks_negative_times(self):
        dist = TimeDistribution(
            times=np.array([[-1.0]]), probs=np.array([[1.0]])
        )
        with pytest.raises(ValueError, match="non-negative"):
            dist.validate()


class TestPlanning:
    def test_fast_network_picks_top_rung(self):
        controller = ValueIterationController()
        choice = controller.plan(ctx(buffer_s=13.0), ConstantThroughputModel(100e6))
        assert choice == 9

    def test_slow_network_picks_bottom_rung(self):
        controller = ValueIterationController()
        choice = controller.plan(ctx(buffer_s=1.0), ConstantThroughputModel(2e5))
        assert choice == 0

    def test_choice_monotone_in_throughput(self):
        controller = ValueIterationController()
        choices = [
            controller.plan(ctx(buffer_s=8.0), ConstantThroughputModel(r))
            for r in (3e5, 1e6, 3e6, 1e7, 4e7)
        ]
        assert choices == sorted(choices)

    def test_variation_penalty_smooths_upgrades(self):
        # Coming from a low-SSIM chunk, a huge λ forbids large jumps.
        smooth = ValueIterationController(
            qoe=QoeParams(variation_weight=50.0)
        )
        eager = ValueIterationController(qoe=QoeParams(variation_weight=0.0))
        c_smooth = smooth.plan(
            ctx(buffer_s=13.0, last_ssim=7.0), ConstantThroughputModel(50e6)
        )
        c_eager = eager.plan(
            ctx(buffer_s=13.0, last_ssim=7.0), ConstantThroughputModel(50e6)
        )
        assert c_smooth < c_eager

    def test_stochastic_tail_risk_lowers_choice(self):
        # A 3% chance of a 20 s transfer should deter high rungs when the
        # buffer is shallow but not when it is deep... with Eq. 1 the stall
        # penalty applies either way, so compare against a tail-free model.
        controller = ValueIterationController()
        risky = controller.plan(ctx(buffer_s=6.0), BimodalModel(0.03))
        safe = controller.plan(ctx(buffer_s=6.0), ConstantThroughputModel(50e6))
        assert risky <= safe

    def test_deeper_buffer_absorbs_tail_risk(self):
        controller = ValueIterationController()
        shallow = controller.plan(ctx(buffer_s=2.0), BimodalModel(0.05, 14.0))
        deep = controller.plan(ctx(buffer_s=14.0), BimodalModel(0.05, 14.0))
        assert shallow <= deep

    def test_horizon_capped_by_lookahead(self):
        controller = ValueIterationController(horizon=5)
        short_ctx = ctx(n=2)
        choice = controller.plan(short_ctx, ConstantThroughputModel(1e7))
        assert 0 <= choice < 10

    def test_empty_lookahead_rejected(self):
        controller = ValueIterationController()
        context = ctx()
        context.lookahead = []
        with pytest.raises(ValueError):
            controller.plan(context, ConstantThroughputModel(1e7))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ValueIterationController(horizon=0)
        with pytest.raises(ValueError):
            ValueIterationController(buffer_bin_s=0.0)

    def test_single_step_horizon_matches_greedy(self):
        # With H=1 and a deterministic model, the plan maximizes Eq. 1
        # chunk-by-chunk; verify against brute force.
        from repro.core.qoe import DEFAULT_QOE, chunk_qoe

        controller = ValueIterationController(horizon=1)
        context = ctx(buffer_s=4.0, last_ssim=12.0, seed=3)
        model = ConstantThroughputModel(3e6)
        menu = context.menu
        scores = [
            chunk_qoe(
                DEFAULT_QOE,
                v.ssim_db,
                12.0,
                v.size_bytes * 8.0 / 3e6,
                4.0,
            )
            for v in menu
        ]
        assert controller.plan(context, model) == int(np.argmax(scores))

    def test_wrong_model_output_shape_rejected(self):
        class BadModel:
            def predict(self, context, step, sizes_bytes):
                return TimeDistribution.point_mass([1.0])  # wrong n

        controller = ValueIterationController()
        with pytest.raises(ValueError, match="wrong number"):
            controller.plan(ctx(), BadModel())

"""Cross-validation of the vectorized value-iteration controller against a
brute-force reference implementation.

The reference enumerates every trajectory of rung choices over the horizon
and every combination of stochastic outcomes, computing exact expected
cumulative QoE with the same buffer discretization. On small instances the
two must agree on both the chosen action and (approximately) its value.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.base import AbrContext
from repro.core.controller import TimeDistribution, ValueIterationController
from repro.core.qoe import QoeParams, chunk_qoe
from repro.media.chunk import ChunkMenu, EncodedChunk
from repro.media.ladder import PUFFER_LADDER
from repro.net.tcp import TcpInfo


def make_menu(chunk_index, sizes, ssims, duration=2.0):
    versions = [
        EncodedChunk(
            chunk_index=chunk_index,
            profile=PUFFER_LADDER[i],
            size_bytes=size,
            ssim_db=ssim,
            duration=duration,
        )
        for i, (size, ssim) in enumerate(zip(sizes, ssims))
    ]
    return ChunkMenu(versions)


class TabularModel:
    """Explicit per-(step, rung) outcome tables."""

    def __init__(self, tables):
        # tables[step] = (times (n_rungs, k), probs (n_rungs, k))
        self.tables = tables

    def predict(self, context, step, sizes_bytes):
        times, probs = self.tables[step]
        return TimeDistribution(
            times=np.asarray(times, dtype=float),
            probs=np.asarray(probs, dtype=float),
        )


def brute_force_plan(context, model, qoe, horizon, max_buffer, bin_s):
    """Exact expectation by enumerating actions x outcomes recursively."""
    menus = context.lookahead[:horizon]

    def snap(buffer_s):
        return np.clip(round(buffer_s / bin_s), 0, round(max_buffer / bin_s)) * bin_s

    def value(step, buffer_s, prev_quality):
        if step == len(menus):
            return 0.0
        menu = menus[step]
        times, probs = model.tables[step]
        best = -np.inf
        for a, version in enumerate(menu):
            expected = 0.0
            for t, p in zip(times[a], probs[a]):
                reward = chunk_qoe(qoe, version.ssim_db, prev_quality, t, buffer_s)
                next_buffer = snap(
                    min(max(buffer_s - t, 0.0) + menu.duration, max_buffer)
                )
                expected += p * (
                    reward + value(step + 1, next_buffer, version.ssim_db)
                )
            best = max(best, expected)
        return best

    menu0 = menus[0]
    buffer0 = snap(context.buffer_s)
    scores = []
    times, probs = model.tables[0]
    for a, version in enumerate(menu0):
        expected = 0.0
        for t, p in zip(times[a], probs[a]):
            reward = chunk_qoe(
                qoe, version.ssim_db, context.last_ssim_db, t, buffer0
            )
            next_buffer = snap(
                min(max(buffer0 - t, 0.0) + menu0.duration, max_buffer)
            )
            expected += p * (reward + value(1, next_buffer, version.ssim_db))
        scores.append(expected)
    return int(np.argmax(scores)), scores


def info():
    return TcpInfo(cwnd=10, in_flight=0, min_rtt=0.05, rtt=0.05, delivery_rate=0)


@st.composite
def instance(draw):
    rng_seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(rng_seed)
    horizon = draw(st.integers(1, 3))
    n_rungs = draw(st.integers(2, 4))
    n_outcomes = draw(st.integers(1, 3))
    buffer_s = draw(st.floats(0.0, 14.0))
    last_ssim = draw(st.one_of(st.none(), st.floats(5.0, 18.0)))
    menus, tables = [], []
    for step in range(horizon):
        sizes = np.sort(rng.uniform(5e4, 2e6, n_rungs))
        ssims = np.sort(rng.uniform(6.0, 18.0, n_rungs))
        menus.append(make_menu(step, sizes, ssims))
        times = rng.uniform(0.05, 8.0, (n_rungs, n_outcomes))
        raw = rng.uniform(0.1, 1.0, (n_rungs, n_outcomes))
        probs = raw / raw.sum(axis=1, keepdims=True)
        tables.append((times, probs))
    context = AbrContext(
        lookahead=menus, buffer_s=buffer_s, tcp_info=info(),
        last_ssim_db=last_ssim,
    )
    return context, TabularModel(tables), horizon


class TestAgainstReference:
    @given(instance())
    @settings(max_examples=40, deadline=None)
    def test_vectorized_matches_brute_force(self, params):
        context, model, horizon = params
        qoe = QoeParams()
        controller = ValueIterationController(
            qoe=qoe, horizon=horizon, max_buffer_s=15.0, buffer_bin_s=0.5
        )
        fast_choice = controller.plan(context, model)
        slow_choice, scores = brute_force_plan(
            context, model, qoe, horizon, 15.0, 0.5
        )
        # Either the same action, or an action with (near-)equal value —
        # floating-point ties may break differently.
        assert (
            fast_choice == slow_choice
            or scores[fast_choice] >= scores[slow_choice] - 1e-6
        ), (fast_choice, slow_choice, scores)

    def test_deterministic_two_step_example(self):
        # Hand-checkable instance: one fast cheap rung, one slow rich rung.
        menus = [
            make_menu(0, [1e5, 1e6], [8.0, 16.0]),
            make_menu(1, [1e5, 1e6], [8.0, 16.0]),
        ]
        tables = [
            (np.array([[0.2], [6.0]]), np.array([[1.0], [1.0]])),
            (np.array([[0.2], [6.0]]), np.array([[1.0], [1.0]])),
        ]
        context = AbrContext(
            lookahead=menus, buffer_s=2.0, tcp_info=info(), last_ssim_db=None
        )
        qoe = QoeParams()
        controller = ValueIterationController(qoe=qoe, horizon=2)
        # Rung 1 stalls 4 s (penalty 400); rung 0 is clearly optimal.
        assert controller.plan(context, TabularModel(tables)) == 0

    def test_stochastic_expectation_drives_choice(self):
        # 50/50 between instant and catastrophic: expected stall picks the
        # small chunk even though the mean time looks acceptable.
        menus = [make_menu(0, [1e5, 1e6], [10.0, 16.0])]
        tables = [
            (
                np.array([[0.2, 0.2], [0.2, 30.0]]),
                np.array([[0.5, 0.5], [0.5, 0.5]]),
            )
        ]
        context = AbrContext(
            lookahead=menus, buffer_s=5.0, tcp_info=info(), last_ssim_db=None
        )
        controller = ValueIterationController(horizon=1)
        # Rung 1's expected stall = 0.5 * 25 s * 100 = 1250 penalty.
        assert controller.plan(context, TabularModel(tables)) == 0

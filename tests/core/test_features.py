"""Tests for repro.core.features — TTP inputs and time-bin discretization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.abr.base import ChunkRecord
from repro.core.features import (
    FEATURE_DIM,
    HISTORY_LEN,
    N_TIME_BINS,
    PROPOSED_SIZE_INDEX,
    TCP_FEATURE_INDEX,
    make_feature_matrix,
    make_features,
    time_bin_centers,
    time_bin_index,
)
from repro.net.tcp import TcpInfo


def info(**kwargs):
    defaults = dict(cwnd=20, in_flight=5, min_rtt=0.04, rtt=0.05,
                    delivery_rate=5e6)
    defaults.update(kwargs)
    return TcpInfo(**defaults)


def record(i, size=500_000, tx=1.0):
    return ChunkRecord(
        chunk_index=i, rung=5, size_bytes=size, ssim_db=15.0,
        transmission_time=tx, info_at_send=info(), send_time=0.0,
    )


class TestTimeBins:
    def test_paper_bin_structure(self):
        # 21 bins: [0, 0.25), [0.25, 0.75), ..., [9.75, inf) (§4.5).
        assert N_TIME_BINS == 21
        assert time_bin_index(0.0) == 0
        assert time_bin_index(0.24) == 0
        assert time_bin_index(0.25) == 1
        assert time_bin_index(0.74) == 1
        assert time_bin_index(0.75) == 2
        assert time_bin_index(9.74) == 19
        assert time_bin_index(9.75) == 20
        assert time_bin_index(1000.0) == 20

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            time_bin_index(-0.1)

    def test_centers_fall_in_their_bins(self):
        centers = time_bin_centers()
        assert len(centers) == N_TIME_BINS
        for j, center in enumerate(centers):
            assert time_bin_index(float(center)) == j

    def test_centers_monotone(self):
        centers = time_bin_centers()
        assert all(a < b for a, b in zip(centers, centers[1:]))

    @given(st.floats(0.0, 100.0))
    def test_bin_index_in_range(self, t):
        assert 0 <= time_bin_index(t) < N_TIME_BINS

    @given(st.floats(0.0, 50.0), st.floats(0.0, 50.0))
    def test_bin_index_monotone(self, a, b):
        if a <= b:
            assert time_bin_index(a) <= time_bin_index(b)


class TestFeatures:
    def test_dimension_is_22(self):
        # 8 sizes + 8 times + 5 TCP stats + proposed size (§4.2, t=8).
        assert FEATURE_DIM == 22
        features = make_features([], info(), 500_000)
        assert features.shape == (22,)

    def test_empty_history_zero_padded(self):
        features = make_features([], info(), 500_000)
        assert np.all(features[: 2 * HISTORY_LEN] == 0.0)

    def test_partial_history_left_padded(self):
        features = make_features([record(0)], info(), 500_000)
        sizes = features[:HISTORY_LEN]
        assert np.all(sizes[:-1] == 0.0)
        assert sizes[-1] > 0.0

    def test_history_truncated_to_last_eight(self):
        history = [record(i, size=(i + 1) * 100_000) for i in range(12)]
        features = make_features(history, info(), 500_000)
        # Oldest retained chunk is #4 (size 500 kB).
        expected_first = np.log1p(500_000 / 1e5)
        assert features[0] == pytest.approx(expected_first)

    def test_tcp_features_ordering(self):
        features = make_features([], info(cwnd=0, in_flight=0, min_rtt=0.0,
                                          rtt=0.0, delivery_rate=0.0),
                                 500_000)
        for index in TCP_FEATURE_INDEX.values():
            assert features[index] == 0.0

    def test_delivery_rate_resolves_slow_regimes(self):
        # log1p scaling: 0.1 vs 1 Mbit/s must differ substantially, which
        # linear scaling to 10 Mbit/s units would not provide.
        slow = make_features([], info(delivery_rate=1e5), 500_000)
        fast = make_features([], info(delivery_rate=1e6), 500_000)
        index = TCP_FEATURE_INDEX["delivery_rate"]
        assert fast[index] - slow[index] > 0.9

    def test_proposed_size_is_last_feature(self):
        features = make_features([], info(), 500_000)
        assert features[PROPOSED_SIZE_INDEX] == pytest.approx(
            np.log1p(500_000 / 1e5)
        )

    def test_invalid_proposed_size(self):
        with pytest.raises(ValueError):
            make_features([], info(), 0.0)

    def test_matrix_matches_vector_rows(self):
        history = [record(i) for i in range(3)]
        sizes = np.array([100_000.0, 900_000.0])
        matrix = make_feature_matrix(history, info(), sizes)
        assert matrix.shape == (2, FEATURE_DIM)
        for row, size in zip(matrix, sizes):
            np.testing.assert_allclose(
                row, make_features(history, info(), float(size))
            )

    def test_matrix_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            make_feature_matrix([], info(), np.array([1.0, 0.0]))

"""Tests for repro.core.fugu — the assembled scheme and its variants."""

import numpy as np
import pytest

from repro.abr.base import AbrContext, ChunkRecord
from repro.core.fugu import Fugu, make_fugu, make_fugu_variant
from repro.core.ttp import TransmissionTimePredictor, TtpConfig
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.tcp import TcpInfo


def info(delivery_rate=5e6):
    return TcpInfo(cwnd=20, in_flight=5, min_rtt=0.04, rtt=0.05,
                   delivery_rate=delivery_rate)


def ctx(buffer_s=10.0, seed=0):
    menus = encode_clip(DEFAULT_CHANNELS[0], 8, seed=seed)
    return AbrContext(lookahead=menus, buffer_s=buffer_s, tcp_info=info())


class TestFugu:
    def test_choose_returns_valid_rung(self):
        fugu = make_fugu(seed=0)
        choice = fugu.choose(ctx())
        assert 0 <= choice < 10

    def test_name_default(self):
        assert make_fugu(seed=0).name == "fugu"

    def test_horizon_cannot_exceed_ttp(self):
        predictor = TransmissionTimePredictor(TtpConfig(horizon=3), seed=0)
        with pytest.raises(ValueError):
            Fugu(predictor, horizon=5)

    def test_horizon_defaults_to_ttp_horizon(self):
        predictor = TransmissionTimePredictor(TtpConfig(horizon=3), seed=0)
        fugu = Fugu(predictor)
        assert fugu.controller.horizon == 3

    def test_trained_fugu_tracks_network_speed(self):
        # Train a tiny TTP on synthetic data where time = size / rate with
        # rate given by delivery_rate; Fugu should then pick high rungs on
        # fast paths and low rungs on slow ones.
        from repro.core.train import TtpTrainer, build_ttp_datasets
        from repro.streaming.session import StreamResult

        predictor = TransmissionTimePredictor(TtpConfig(horizon=5), seed=0)
        streams = []
        rng = np.random.default_rng(0)
        for s in range(24):
            rate = float(rng.choice([5e5, 2e6, 8e6, 3e7]))
            records = []
            for i in range(30):
                size = float(rng.uniform(5e4, 1.6e6))
                records.append(
                    ChunkRecord(
                        chunk_index=i, rung=5, size_bytes=size, ssim_db=15.0,
                        transmission_time=size * 8 / rate,
                        info_at_send=info(delivery_rate=rate),
                        send_time=i * 2.0,
                    )
                )
            streams.append(StreamResult(s, "x", records=records))
        TtpTrainer(predictor, epochs=10, seed=0).train(
            build_ttp_datasets(streams, predictor)
        )
        fugu = Fugu(predictor)

        def choice_with_rate(rate):
            menus = encode_clip(DEFAULT_CHANNELS[0], 8, seed=1)
            history = [
                ChunkRecord(
                    chunk_index=i, rung=5, size_bytes=5e5, ssim_db=15.0,
                    transmission_time=5e5 * 8 / rate,
                    info_at_send=info(delivery_rate=rate), send_time=i * 2.0,
                )
                for i in range(8)
            ]
            context = AbrContext(
                lookahead=menus, buffer_s=10.0,
                tcp_info=info(delivery_rate=rate), history=history,
            )
            return fugu.choose(context)

        assert choice_with_rate(3e7) > choice_with_rate(5e5)


class TestVariants:
    def test_all_variants_constructible(self):
        for variant in (
            "full", "point_estimate", "throughput", "linear", "shallow",
            "no_tcp", "no_rtt", "no_cwnd", "no_in_flight",
            "no_delivery_rate",
        ):
            predictor, name = make_fugu_variant(variant, seed=0)
            assert predictor.config.horizon == 5
            if variant == "full":
                assert name == "fugu"
            else:
                assert name == f"fugu_{variant}"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown Fugu variant"):
            make_fugu_variant("bogus")

    def test_linear_variant_has_no_hidden_layers(self):
        predictor, _ = make_fugu_variant("linear", seed=0)
        assert predictor.config.hidden == ()

    def test_point_estimate_variant_flag(self):
        predictor, _ = make_fugu_variant("point_estimate", seed=0)
        assert predictor.config.point_estimate

    def test_variant_schemes_run_end_to_end(self):
        from repro.net.link import ConstantLink
        from repro.net.tcp import TcpConnection
        from repro.streaming.simulator import simulate_stream

        for variant in ("full", "point_estimate", "throughput", "linear"):
            fugu = make_fugu(variant, seed=0)
            conn = TcpConnection(ConstantLink(6e6), base_rtt=0.05)
            result = simulate_stream(
                iter(encode_clip(DEFAULT_CHANNELS[0], 30, seed=0)),
                fugu, conn, watch_time_s=40.0,
            )
            assert len(result.records) > 0

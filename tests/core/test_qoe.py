"""Tests for repro.core.qoe — the Eq. 1 objective."""

import pytest

from repro.core.qoe import DEFAULT_QOE, QoeParams, chunk_qoe


class TestQoeParams:
    def test_paper_defaults(self):
        # λ = 1 and µ = 100 (§4.5).
        assert DEFAULT_QOE.variation_weight == 1.0
        assert DEFAULT_QOE.stall_weight == 100.0

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            QoeParams(variation_weight=-1.0)
        with pytest.raises(ValueError):
            QoeParams(stall_weight=-1.0)


class TestChunkQoe:
    def test_quality_only_when_no_stall_no_change(self):
        value = chunk_qoe(DEFAULT_QOE, 15.0, 15.0, 1.0, 10.0)
        assert value == pytest.approx(15.0)

    def test_variation_penalty_symmetric(self):
        up = chunk_qoe(DEFAULT_QOE, 16.0, 14.0, 1.0, 10.0)
        down = chunk_qoe(DEFAULT_QOE, 14.0, 16.0, 1.0, 10.0)
        assert up == pytest.approx(16.0 - 2.0)
        assert down == pytest.approx(14.0 - 2.0)

    def test_stall_penalty(self):
        # 2.5 s transmission against a 1.5 s buffer: 1 s stall x µ=100.
        value = chunk_qoe(DEFAULT_QOE, 15.0, 15.0, 2.5, 1.5)
        assert value == pytest.approx(15.0 - 100.0)

    def test_no_stall_when_buffer_covers_transmission(self):
        value = chunk_qoe(DEFAULT_QOE, 15.0, 15.0, 2.0, 2.0)
        assert value == pytest.approx(15.0)

    def test_first_chunk_skips_variation(self):
        value = chunk_qoe(DEFAULT_QOE, 15.0, None, 1.0, 10.0)
        assert value == pytest.approx(15.0)

    def test_custom_weights(self):
        params = QoeParams(variation_weight=2.0, stall_weight=10.0)
        value = chunk_qoe(params, 10.0, 12.0, 3.0, 1.0)
        assert value == pytest.approx(10.0 - 2.0 * 2.0 - 10.0 * 2.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            chunk_qoe(DEFAULT_QOE, 15.0, None, -1.0, 0.0)

"""Tests for repro.core.train — datasets, TTP training, daily retraining."""

import numpy as np
import pytest

from repro.abr.base import ChunkRecord
from repro.core.train import (
    DailyRetrainer,
    TtpTrainer,
    build_ttp_datasets,
)
from repro.core.ttp import TransmissionTimePredictor, TtpConfig
from repro.net.tcp import TcpInfo
from repro.streaming.session import StreamResult


def info(delivery_rate=5e6):
    return TcpInfo(cwnd=20, in_flight=5, min_rtt=0.04, rtt=0.05,
                   delivery_rate=delivery_rate)


def make_stream(n_chunks=20, stream_id=0, tx=1.0):
    records = [
        ChunkRecord(
            chunk_index=i, rung=5, size_bytes=500_000 + 1000 * i,
            ssim_db=15.0, transmission_time=tx, info_at_send=info(),
            send_time=i * 2.0,
        )
        for i in range(n_chunks)
    ]
    return StreamResult(stream_id, "x", records=records)


class TestBuildDatasets:
    def test_one_dataset_per_horizon_step(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=3), seed=0)
        datasets = build_ttp_datasets([make_stream(10)], ttp)
        assert len(datasets) == 3

    def test_example_counts_decrease_with_step(self):
        # Step k needs chunk i+k to exist, so later steps have fewer rows.
        ttp = TransmissionTimePredictor(TtpConfig(horizon=3), seed=0)
        datasets = build_ttp_datasets([make_stream(10)], ttp)
        lengths = [len(d) for d in datasets]
        assert lengths == [10, 9, 8]

    def test_labels_match_bins(self):
        from repro.core.features import time_bin_index

        ttp = TransmissionTimePredictor(TtpConfig(horizon=1), seed=0)
        datasets = build_ttp_datasets([make_stream(5, tx=2.0)], ttp)
        assert all(t == time_bin_index(2.0) for t in datasets[0].targets)

    def test_sample_weight_applied(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=1), seed=0)
        datasets = build_ttp_datasets([make_stream(5)], ttp, sample_weight=0.25)
        np.testing.assert_array_equal(datasets[0].weights, 0.25)

    def test_too_short_streams_rejected(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=5), seed=0)
        with pytest.raises(ValueError, match="no training examples"):
            build_ttp_datasets([make_stream(3)], ttp)

    def test_feature_masking_applied(self):
        ttp = TransmissionTimePredictor(
            TtpConfig(horizon=1, ablated_features=frozenset({"tcp"})), seed=0
        )
        datasets = build_ttp_datasets([make_stream(5)], ttp)
        from repro.core.features import TCP_SLICE

        assert np.all(datasets[0].features[:, TCP_SLICE] == 0.0)


class TestTtpTrainer:
    def test_training_reduces_loss(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=2), seed=0)
        streams = [make_stream(30, stream_id=i, tx=1.0 + i * 0.1) for i in range(5)]
        datasets = build_ttp_datasets(streams, ttp)
        trainer = TtpTrainer(ttp, epochs=8, seed=0)
        reports = trainer.train(datasets)
        assert len(reports) == 2
        for report in reports:
            assert report.train_losses[-1] < report.train_losses[0]

    def test_wrong_dataset_count_rejected(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=2), seed=0)
        datasets = build_ttp_datasets([make_stream(10)], ttp)
        with pytest.raises(ValueError):
            TtpTrainer(ttp).train(datasets[:1])

    def test_evaluate_reports_metrics(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=1), seed=0)
        datasets = build_ttp_datasets([make_stream(40)], ttp)
        trainer = TtpTrainer(ttp, epochs=10, seed=0)
        trainer.train(datasets)
        evaluation = trainer.evaluate(datasets[0], step=0)
        assert 0.0 <= evaluation.bin_accuracy <= 1.0
        assert evaluation.cross_entropy >= 0.0
        assert evaluation.n_examples == 40

    def test_trained_ttp_beats_untrained_on_accuracy(self):
        config = TtpConfig(horizon=1)
        trained = TransmissionTimePredictor(config, seed=0)
        streams = [make_stream(50, stream_id=i) for i in range(4)]
        datasets = build_ttp_datasets(streams, trained)
        trainer = TtpTrainer(trained, epochs=10, seed=0)
        trainer.train(datasets)
        trained_eval = trainer.evaluate(datasets[0])
        untrained = TransmissionTimePredictor(config, seed=1)
        untrained_eval = TtpTrainer(untrained).evaluate(datasets[0])
        assert trained_eval.cross_entropy < untrained_eval.cross_entropy


class TestDailyRetrainer:
    def test_window_eviction(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=1), seed=0)
        retrainer = DailyRetrainer(ttp, window_days=3, epochs_per_day=1)
        for day in range(5):
            retrainer.add_day([make_stream(10, stream_id=day)])
        assert len(retrainer._days) == 3
        assert retrainer.current_day == 5

    def test_retrain_without_data_raises(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=1), seed=0)
        with pytest.raises(RuntimeError):
            DailyRetrainer(ttp).retrain()

    def test_recency_weighting(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=1), seed=0)
        retrainer = DailyRetrainer(
            ttp, window_days=14, recency_decay=0.5, epochs_per_day=1
        )
        retrainer.add_day([make_stream(6, stream_id=0)])
        retrainer.add_day([make_stream(6, stream_id=1)])
        # Peek at the weights the next retrain would use.
        datasets = None
        reports = retrainer.retrain()
        assert reports  # trained without error

    def test_snapshots_are_frozen(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=1), seed=0)
        retrainer = DailyRetrainer(ttp, epochs_per_day=2)
        retrainer.add_day([make_stream(20, stream_id=0)])
        retrainer.retrain()
        snapshot = retrainer.snapshot()
        sizes = np.array([5e5])
        before = snapshot.distribution([], info(), sizes).probs.copy()
        retrainer.add_day([make_stream(20, stream_id=1, tx=5.0)])
        retrainer.retrain()
        after_snapshot = snapshot.distribution([], info(), sizes).probs
        after_live = ttp.distribution([], info(), sizes).probs
        np.testing.assert_allclose(before, after_snapshot)
        assert not np.allclose(before, after_live)

    def test_invalid_parameters(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=1), seed=0)
        with pytest.raises(ValueError):
            DailyRetrainer(ttp, window_days=0)
        with pytest.raises(ValueError):
            DailyRetrainer(ttp, recency_decay=0.0)

"""Evaluation must never perturb training (satellite of the continual loop).

The continual retraining service interleaves evaluation (per-generation
registry metrics) with training (the next day's warm-started retrain).  If
evaluation consumed even one draw from a training generator, the registry
would depend on *whether* metrics were computed — and a resumed run (which
recomputes them) would diverge from an uninterrupted one.  These tests lock
the contract: ``train(); evaluate(); train()`` equals ``train(); train()``
exactly, evaluation is a pure function, and any randomized evaluation
helper (the holdout split) draws from a domain-separated generator.
"""

import json

import numpy as np

from repro.abr.base import ChunkRecord
from repro.core.train import (
    DailyRetrainer,
    TtpTrainer,
    _EVAL_STREAM,
    build_ttp_datasets,
)
from repro.core.ttp import TransmissionTimePredictor, TtpConfig
from repro.learn.losses import SoftmaxCrossEntropy
from repro.learn.training import Trainer
from repro.net.tcp import TcpInfo
from repro.streaming.session import StreamResult


def info(delivery_rate=5e6):
    return TcpInfo(cwnd=20, in_flight=5, min_rtt=0.04, rtt=0.05,
                   delivery_rate=delivery_rate)


def make_stream(n_chunks=20, stream_id=0, tx=1.0):
    records = [
        ChunkRecord(
            chunk_index=i, rung=5, size_bytes=500_000 + 1000 * i,
            ssim_db=15.0, transmission_time=tx + 0.03 * (i % 7),
            info_at_send=info(), send_time=i * 2.0,
        )
        for i in range(n_chunks)
    ]
    return StreamResult(stream_id, "x", records=records)


def canonical(predictor):
    return json.dumps(predictor.state_dict(), sort_keys=True)


def fresh_setup(horizon=2, seed=3):
    ttp = TransmissionTimePredictor(TtpConfig(horizon=horizon), seed=seed)
    streams = [
        make_stream(24, stream_id=i, tx=0.8 + 0.15 * i) for i in range(4)
    ]
    return ttp, build_ttp_datasets(streams, ttp)


class TestEvaluateDoesNotPerturbTraining:
    def test_train_eval_train_equals_train_train(self):
        # Run A: train -> evaluate every step -> train again.
        ttp_a, datasets_a = fresh_setup()
        trainer_a = TtpTrainer(ttp_a, epochs=3, seed=9)
        trainer_a.train(datasets_a)
        for k, dataset in enumerate(datasets_a):
            trainer_a.evaluate(dataset, step=k)
        trainer_a.train(datasets_a)

        # Run B: identical, minus the evaluations.
        ttp_b, datasets_b = fresh_setup()
        trainer_b = TtpTrainer(ttp_b, epochs=3, seed=9)
        trainer_b.train(datasets_b)
        trainer_b.train(datasets_b)

        assert canonical(ttp_a) == canonical(ttp_b)

    def test_evaluate_is_pure(self):
        ttp, datasets = fresh_setup()
        trainer = TtpTrainer(ttp, epochs=2, seed=0)
        trainer.train(datasets)
        before = canonical(ttp)
        first = trainer.evaluate(datasets[0], step=0)
        second = trainer.evaluate(datasets[0], step=0)
        assert canonical(ttp) == before
        assert first == second

    def test_low_level_trainer_rng_untouched_by_evaluate(self):
        # The root cause the contract guards against: Trainer.evaluate
        # sharing Trainer.rng (the epoch-shuffle generator).
        ttp, datasets = fresh_setup(horizon=1)
        trainer = Trainer(
            ttp.models[0], SoftmaxCrossEntropy(), epochs=1, seed=4
        )
        state_before = trainer.rng.bit_generator.state
        trainer.evaluate(datasets[0])
        assert trainer.rng.bit_generator.state == state_before


class TestHoldoutSplitDomainSeparation:
    def test_split_between_trainings_changes_nothing(self):
        ttp_a, datasets_a = fresh_setup()
        trainer_a = TtpTrainer(ttp_a, epochs=2, seed=5)
        trainer_a.train(datasets_a)
        trainer_a.holdout_split(datasets_a)
        trainer_a.train(datasets_a)

        ttp_b, datasets_b = fresh_setup()
        trainer_b = TtpTrainer(ttp_b, epochs=2, seed=5)
        trainer_b.train(datasets_b)
        trainer_b.train(datasets_b)

        assert canonical(ttp_a) == canonical(ttp_b)

    def test_split_is_deterministic(self):
        ttp, datasets = fresh_setup()
        trainer = TtpTrainer(ttp, epochs=1, seed=5)
        first_train, first_held = trainer.holdout_split(datasets)
        again_train, again_held = trainer.holdout_split(datasets)
        for a, b in zip(first_train, again_train):
            np.testing.assert_array_equal(a.features, b.features)
        for a, b in zip(first_held, again_held):
            np.testing.assert_array_equal(a.features, b.features)

    def test_split_rng_is_disjoint_from_training_stream(self):
        # Training step k draws from default_rng(seed + k); the split for
        # step k draws from default_rng((seed, _EVAL_STREAM, k)).  The two
        # sequences must differ — identical sequences would mean the split
        # re-used (and therefore raced with) a training stream.
        seed = 5
        train_draws = np.random.default_rng(seed).permutation(32)
        split_draws = np.random.default_rng(
            (seed, _EVAL_STREAM, 0)
        ).permutation(32)
        assert not np.array_equal(train_draws, split_draws)

    def test_split_partitions_every_step(self):
        ttp, datasets = fresh_setup()
        trainer = TtpTrainer(ttp, epochs=1, seed=5)
        train_parts, held_parts = trainer.holdout_split(
            datasets, validation_fraction=0.25
        )
        assert len(train_parts) == len(datasets)
        assert len(held_parts) == len(datasets)
        for full, train, held in zip(datasets, train_parts, held_parts):
            assert len(train) + len(held) == len(full)
            assert len(held) == int(round(len(full) * 0.25))


class TestRetrainerWithEvaluation:
    def test_daily_retraining_unaffected_by_per_day_evaluation(self):
        # The continual service evaluates every committed generation; a
        # batch replay does not.  Both must produce identical weights.
        def run(with_eval):
            ttp = TransmissionTimePredictor(TtpConfig(horizon=2), seed=1)
            retrainer = DailyRetrainer(
                ttp, window_days=3, epochs_per_day=2, seed=7
            )
            states = []
            for day in range(3):
                streams = [
                    make_stream(20, stream_id=10 * day + i, tx=0.7 + 0.1 * day)
                    for i in range(3)
                ]
                retrainer.add_day(streams)
                retrainer.retrain()
                if with_eval:
                    evaluator = TtpTrainer(ttp)
                    datasets = retrainer.window_datasets()
                    for k, dataset in enumerate(datasets):
                        evaluator.evaluate(dataset, step=k)
                states.append(canonical(ttp))
            return states

        assert run(with_eval=True) == run(with_eval=False)

"""Tests for repro.core.ttp — the Transmission Time Predictor and its
ablated variants (§4.6)."""

import numpy as np
import pytest

from repro.abr.base import ChunkRecord
from repro.core.features import N_TIME_BINS, TCP_FEATURE_INDEX
from repro.core.ttp import (
    TransmissionTimePredictor,
    TtpConfig,
    throughput_bin_centers_bps,
    throughput_bin_index,
)
from repro.net.tcp import TcpInfo


def info(delivery_rate=5e6):
    return TcpInfo(cwnd=20, in_flight=5, min_rtt=0.04, rtt=0.05,
                   delivery_rate=delivery_rate)


def record(i, size=500_000, tx=1.0):
    return ChunkRecord(
        chunk_index=i, rung=5, size_bytes=size, ssim_db=15.0,
        transmission_time=tx, info_at_send=info(), send_time=0.0,
    )


class TestConfig:
    def test_paper_architecture_defaults(self):
        config = TtpConfig()
        assert config.horizon == 5
        assert config.hidden == (64, 64)
        assert config.n_output_bins == 21

    def test_unknown_ablation_rejected(self):
        with pytest.raises(ValueError, match="unknown ablated"):
            TtpConfig(ablated_features=frozenset({"bogus"}))

    def test_feature_mask_tcp(self):
        mask = TtpConfig(ablated_features=frozenset({"tcp"})).feature_mask()
        for index in TCP_FEATURE_INDEX.values():
            assert mask[index] == 0.0
        assert mask[:16].sum() == 16  # history untouched

    def test_feature_mask_single_stat(self):
        mask = TtpConfig(ablated_features=frozenset({"rtt"})).feature_mask()
        assert mask[TCP_FEATURE_INDEX["rtt"]] == 0.0
        assert mask[TCP_FEATURE_INDEX["cwnd"]] == 1.0

    def test_throughput_variant_masks_proposed_size(self):
        mask = TtpConfig(predict_throughput=True).feature_mask()
        assert mask[-1] == 0.0


class TestThroughputBins:
    def test_bin_index_monotone(self):
        assert throughput_bin_index(1e5) <= throughput_bin_index(1e6)
        assert throughput_bin_index(1e6) <= throughput_bin_index(1e8)

    def test_invalid_throughput(self):
        with pytest.raises(ValueError):
            throughput_bin_index(0.0)

    def test_centers_within_edges(self):
        centers = throughput_bin_centers_bps()
        assert len(centers) == N_TIME_BINS
        assert all(a < b for a, b in zip(centers, centers[1:]))


class TestPredictor:
    def test_one_model_per_horizon_step(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=5), seed=0)
        assert len(ttp.models) == 5

    def test_distribution_shape_and_normalization(self):
        ttp = TransmissionTimePredictor(seed=0)
        sizes = np.array([1e5, 5e5, 1.5e6])
        dist = ttp.distribution([record(0)], info(), sizes, step=0)
        assert dist.times.shape == (3, 21)
        np.testing.assert_allclose(dist.probs.sum(axis=1), 1.0)
        dist.validate()

    def test_invalid_step_rejected(self):
        ttp = TransmissionTimePredictor(TtpConfig(horizon=2), seed=0)
        with pytest.raises(ValueError):
            ttp.distribution([], info(), np.array([1e5]), step=2)

    def test_point_estimate_variant_single_outcome(self):
        ttp = TransmissionTimePredictor(
            TtpConfig(point_estimate=True), seed=0
        )
        dist = ttp.distribution([], info(), np.array([1e5, 5e5]))
        assert dist.times.shape == (2, 1)
        np.testing.assert_array_equal(dist.probs, 1.0)

    def test_throughput_variant_times_scale_with_size(self):
        ttp = TransmissionTimePredictor(
            TtpConfig(predict_throughput=True), seed=0
        )
        dist = ttp.distribution([], info(), np.array([1e5, 2e5]))
        # Same throughput bins, so times double with size.
        np.testing.assert_allclose(dist.times[1], 2 * dist.times[0])
        # And the probabilities are identical (size is masked out).
        np.testing.assert_allclose(dist.probs[0], dist.probs[1])

    def test_label_for_time_vs_throughput(self):
        time_ttp = TransmissionTimePredictor(seed=0)
        tput_ttp = TransmissionTimePredictor(
            TtpConfig(predict_throughput=True), seed=0
        )
        r = record(0, size=500_000, tx=2.0)  # 2 Mbps
        assert time_ttp.label_for(r) == 4  # [1.75, 2.25)
        assert tput_ttp.label_for(r) == throughput_bin_index(2e6)

    def test_ablated_features_ignored_at_inference(self):
        ttp = TransmissionTimePredictor(
            TtpConfig(ablated_features=frozenset({"tcp"})), seed=0
        )
        sizes = np.array([5e5])
        a = ttp.distribution([], info(delivery_rate=1e5), sizes)
        b = ttp.distribution([], info(delivery_rate=5e7), sizes)
        np.testing.assert_allclose(a.probs, b.probs)

    def test_full_ttp_sensitive_to_tcp_state(self):
        ttp = TransmissionTimePredictor(seed=0)
        sizes = np.array([5e5])
        a = ttp.distribution([], info(delivery_rate=1e5), sizes)
        b = ttp.distribution([], info(delivery_rate=5e7), sizes)
        assert not np.allclose(a.probs, b.probs)

    def test_state_round_trip(self):
        ttp = TransmissionTimePredictor(seed=0)
        clone = TransmissionTimePredictor(seed=99)
        clone.load_state_dict(ttp.state_dict())
        sizes = np.array([5e5])
        np.testing.assert_allclose(
            clone.distribution([], info(), sizes).probs,
            ttp.distribution([], info(), sizes).probs,
        )

    def test_copy_is_frozen_snapshot(self):
        ttp = TransmissionTimePredictor(seed=0)
        snapshot = ttp.copy()
        for model in ttp.models:
            for _, value, __ in model.parameters():
                value += 1.0
        sizes = np.array([5e5])
        assert not np.allclose(
            snapshot.distribution([], info(), sizes).probs,
            ttp.distribution([], info(), sizes).probs,
        )

    def test_horizon_mismatch_on_load(self):
        a = TransmissionTimePredictor(TtpConfig(horizon=3), seed=0)
        b = TransmissionTimePredictor(TtpConfig(horizon=5), seed=0)
        with pytest.raises(ValueError, match="horizon mismatch"):
            b.load_state_dict(a.state_dict())


class TestTailCalibration:
    def test_default_tail_center(self):
        ttp = TransmissionTimePredictor(seed=0)
        assert ttp.tail_center_s == 16.0

    def test_calibrate_uses_empirical_mean(self):
        from repro.streaming.session import StreamResult

        ttp = TransmissionTimePredictor(seed=0)
        stream = StreamResult(0, "x", records=[
            record(0, tx=1.0), record(1, tx=20.0), record(2, tx=30.0),
        ])
        tail = ttp.calibrate_tail([stream])
        assert tail == pytest.approx(25.0)

    def test_calibrate_caps_extremes(self):
        from repro.streaming.session import StreamResult

        ttp = TransmissionTimePredictor(seed=0)
        stream = StreamResult(0, "x", records=[record(0, tx=500.0)])
        assert ttp.calibrate_tail([stream], cap_s=60.0) == pytest.approx(60.0)

    def test_calibration_survives_state_dict_round_trip(self):
        from repro.streaming.session import StreamResult

        ttp = TransmissionTimePredictor(seed=0)
        stream = StreamResult(0, "x", records=[
            record(0, tx=20.0), record(1, tx=30.0),
        ])
        ttp.calibrate_tail([stream])
        assert ttp.tail_center_s == pytest.approx(25.0)
        clone = TransmissionTimePredictor(seed=99)
        clone.load_state_dict(ttp.state_dict())
        assert clone.tail_center_s == pytest.approx(25.0)
        # The calibrated tail shows up in the planner-facing distribution.
        dist = clone.distribution([], info(), np.array([5e5]))
        assert dist.times[0, -1] == pytest.approx(25.0)

    def test_calibration_survives_copy(self):
        from repro.streaming.session import StreamResult

        ttp = TransmissionTimePredictor(seed=0)
        stream = StreamResult(0, "x", records=[record(0, tx=40.0)])
        ttp.calibrate_tail([stream])
        frozen = ttp.copy()
        assert frozen.tail_center_s == pytest.approx(ttp.tail_center_s)
        # ... and is a snapshot: later recalibration does not leak into it.
        later = StreamResult(0, "x", records=[record(0, tx=12.0)])
        ttp.calibrate_tail([later])
        assert frozen.tail_center_s == pytest.approx(40.0)
        assert ttp.tail_center_s == pytest.approx(12.0)

    def test_uncalibrated_state_loads_with_default_tail(self):
        # Saves predating the calibrated-tail field must still load.
        ttp = TransmissionTimePredictor(seed=0)
        state = ttp.state_dict()
        del state["tail_center_s"]
        clone = TransmissionTimePredictor(seed=1)
        clone.load_state_dict(state)
        assert clone.tail_center_s == pytest.approx(16.0)

    def test_invalid_tail_center_rejected_on_load(self):
        ttp = TransmissionTimePredictor(seed=0)
        state = ttp.state_dict()
        state["tail_center_s"] = -1.0
        with pytest.raises(ValueError, match="tail_center_s"):
            TransmissionTimePredictor(seed=0).load_state_dict(state)

    def test_calibrate_no_tail_samples_is_noop(self):
        from repro.streaming.session import StreamResult

        ttp = TransmissionTimePredictor(seed=0)
        before = ttp.tail_center_s
        stream = StreamResult(0, "x", records=[record(0, tx=1.0)])
        assert ttp.calibrate_tail([stream]) == before

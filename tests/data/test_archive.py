"""Tests for repro.data.archive — Appendix B CSV round-trips and joins."""

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.data import load_archive_day, reconstruct_streams, write_archive_day
from repro.data.archive import ArchiveDay
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.link import ConstantLink, HeavyTailLink
from repro.net.tcp import TcpConnection
from repro.streaming import TelemetryLog, simulate_stream


@pytest.fixture()
def telemetry():
    log = TelemetryLog()
    for stream_id, base in ((1, 2e7), (2, 8e5)):
        conn = TcpConnection(HeavyTailLink(base_bps=base, seed=stream_id),
                             base_rtt=0.05)
        simulate_stream(
            iter(encode_clip(DEFAULT_CHANNELS[0], 100, seed=stream_id)),
            BBA(),
            conn,
            watch_time_s=60.0,
            stream_id=stream_id,
            expt_id=stream_id + 10,
            telemetry=log,
        )
    return log


class TestRoundTrip:
    def test_write_creates_three_tables(self, telemetry, tmp_path):
        day = write_archive_day(telemetry, tmp_path / "2026-07-07")
        assert day.video_sent.exists()
        assert day.video_acked.exists()
        assert day.client_buffer.exists()

    def test_round_trip_preserves_rows(self, telemetry, tmp_path):
        write_archive_day(telemetry, tmp_path)
        loaded = load_archive_day(tmp_path)
        assert len(loaded.video_sent) == len(telemetry.video_sent)
        assert len(loaded.video_acked) == len(telemetry.video_acked)
        assert len(loaded.client_buffer) == len(telemetry.client_buffer)

    def test_round_trip_preserves_values(self, telemetry, tmp_path):
        write_archive_day(telemetry, tmp_path)
        loaded = load_archive_day(tmp_path)
        original = telemetry.video_sent[0]
        restored = loaded.video_sent[0]
        assert restored.time == pytest.approx(original.time)
        assert restored.size == pytest.approx(original.size)
        assert restored.delivery_rate == pytest.approx(original.delivery_rate)
        assert restored.stream_id == original.stream_id

    def test_missing_table_rejected(self, telemetry, tmp_path):
        day = write_archive_day(telemetry, tmp_path)
        day.video_acked.unlink()
        with pytest.raises(FileNotFoundError):
            load_archive_day(tmp_path)

    def test_wrong_columns_rejected(self, telemetry, tmp_path):
        day = write_archive_day(telemetry, tmp_path)
        day.video_sent.write_text("bogus,columns\n1,2\n")
        with pytest.raises(ValueError, match="unexpected columns"):
            load_archive_day(tmp_path)

    def test_buffer_events_survive(self, telemetry, tmp_path):
        write_archive_day(telemetry, tmp_path)
        loaded = load_archive_day(tmp_path)
        events = {r.event for r in loaded.client_buffer}
        assert events == {r.event for r in telemetry.client_buffer}


class TestReconstruction:
    def test_streams_split_correctly(self, telemetry):
        streams = reconstruct_streams(telemetry)
        assert set(streams) == {1, 2}
        assert streams[1].expt_id == 11
        assert streams[2].expt_id == 12

    def test_transmission_times_positive(self, telemetry):
        streams = reconstruct_streams(telemetry)
        for stream in streams.values():
            assert stream.n_chunks_acked > 0
            assert all(
                t > 0 for t in stream.chunk_transmission_times.values()
            )

    def test_throughputs_reflect_path_speed(self, telemetry):
        streams = reconstruct_streams(telemetry)
        fast = np.median(streams[1].observed_throughputs_bps())
        slow = np.median(streams[2].observed_throughputs_bps())
        assert fast > slow

    def test_stall_totals_from_client_buffer(self, telemetry):
        streams = reconstruct_streams(telemetry)
        # The slow stream (0.8 Mbit/s base) may stall; stalls must be
        # non-negative and finite either way.
        for stream in streams.values():
            assert stream.total_stall_s >= 0.0

    def test_reconstruction_after_round_trip(self, telemetry, tmp_path):
        write_archive_day(telemetry, tmp_path)
        loaded = load_archive_day(tmp_path)
        original = reconstruct_streams(telemetry)
        restored = reconstruct_streams(loaded)
        assert set(original) == set(restored)
        for stream_id in original:
            a = original[stream_id].chunk_transmission_times
            b = restored[stream_id].chunk_transmission_times
            assert set(a) == set(b)
            for chunk in a:
                assert a[chunk] == pytest.approx(b[chunk])

"""Tests for repro.data.archive — Appendix B CSV round-trips and joins."""

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.data import load_archive_day, reconstruct_streams, write_archive_day
from repro.data.archive import ArchiveDay
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.link import ConstantLink, HeavyTailLink
from repro.net.tcp import TcpConnection
from repro.streaming import TelemetryLog, simulate_stream


@pytest.fixture()
def telemetry():
    log = TelemetryLog()
    for stream_id, base in ((1, 2e7), (2, 8e5)):
        conn = TcpConnection(HeavyTailLink(base_bps=base, seed=stream_id),
                             base_rtt=0.05)
        simulate_stream(
            iter(encode_clip(DEFAULT_CHANNELS[0], 100, seed=stream_id)),
            BBA(),
            conn,
            watch_time_s=60.0,
            stream_id=stream_id,
            expt_id=stream_id + 10,
            telemetry=log,
        )
    return log


class TestRoundTrip:
    def test_write_creates_three_tables(self, telemetry, tmp_path):
        day = write_archive_day(telemetry, tmp_path / "2026-07-07")
        assert day.video_sent.exists()
        assert day.video_acked.exists()
        assert day.client_buffer.exists()

    def test_round_trip_preserves_rows(self, telemetry, tmp_path):
        write_archive_day(telemetry, tmp_path)
        loaded = load_archive_day(tmp_path)
        assert len(loaded.video_sent) == len(telemetry.video_sent)
        assert len(loaded.video_acked) == len(telemetry.video_acked)
        assert len(loaded.client_buffer) == len(telemetry.client_buffer)

    def test_round_trip_preserves_values(self, telemetry, tmp_path):
        write_archive_day(telemetry, tmp_path)
        loaded = load_archive_day(tmp_path)
        original = telemetry.video_sent[0]
        restored = loaded.video_sent[0]
        assert restored.time == pytest.approx(original.time)
        assert restored.size == pytest.approx(original.size)
        assert restored.delivery_rate == pytest.approx(original.delivery_rate)
        assert restored.stream_id == original.stream_id

    def test_missing_table_rejected(self, telemetry, tmp_path):
        day = write_archive_day(telemetry, tmp_path)
        day.video_acked.unlink()
        with pytest.raises(FileNotFoundError):
            load_archive_day(tmp_path)

    def test_wrong_columns_rejected(self, telemetry, tmp_path):
        day = write_archive_day(telemetry, tmp_path)
        day.video_sent.write_text("bogus,columns\n1,2\n")
        with pytest.raises(ValueError, match="unexpected columns"):
            load_archive_day(tmp_path)

    def test_buffer_events_survive(self, telemetry, tmp_path):
        write_archive_day(telemetry, tmp_path)
        loaded = load_archive_day(tmp_path)
        events = {r.event for r in loaded.client_buffer}
        assert events == {r.event for r in telemetry.client_buffer}


class TestReconstruction:
    def test_streams_split_correctly(self, telemetry):
        streams = reconstruct_streams(telemetry)
        assert set(streams) == {1, 2}
        assert streams[1].expt_id == 11
        assert streams[2].expt_id == 12

    def test_transmission_times_positive(self, telemetry):
        streams = reconstruct_streams(telemetry)
        for stream in streams.values():
            assert stream.n_chunks_acked > 0
            assert all(
                t > 0 for t in stream.chunk_transmission_times.values()
            )

    def test_throughputs_reflect_path_speed(self, telemetry):
        streams = reconstruct_streams(telemetry)
        fast = np.median(streams[1].observed_throughputs_bps())
        slow = np.median(streams[2].observed_throughputs_bps())
        assert fast > slow

    def test_stall_totals_from_client_buffer(self, telemetry):
        streams = reconstruct_streams(telemetry)
        # The slow stream (0.8 Mbit/s base) may stall; stalls must be
        # non-negative and finite either way.
        for stream in streams.values():
            assert stream.total_stall_s >= 0.0

    def test_reconstruction_after_round_trip(self, telemetry, tmp_path):
        write_archive_day(telemetry, tmp_path)
        loaded = load_archive_day(tmp_path)
        original = reconstruct_streams(telemetry)
        restored = reconstruct_streams(loaded)
        assert set(original) == set(restored)
        for stream_id in original:
            a = original[stream_id].chunk_transmission_times
            b = restored[stream_id].chunk_transmission_times
            assert set(a) == set(b)
            for chunk in a:
                assert a[chunk] == pytest.approx(b[chunk])


class TestArchiveAppender:
    """Incremental (open-once) writing must reproduce the batch writer's
    bytes, and offsets/truncation must roll back uncommitted rows."""

    def _halves(self, telemetry):
        first, second = TelemetryLog(), TelemetryLog()
        for source, sinks in (
            (telemetry.video_sent, (first.video_sent, second.video_sent)),
            (telemetry.video_acked, (first.video_acked, second.video_acked)),
            (
                telemetry.client_buffer,
                (first.client_buffer, second.client_buffer),
            ),
        ):
            half = len(source) // 2
            sinks[0].extend(source[:half])
            sinks[1].extend(source[half:])
        return first, second

    def test_appending_matches_batch_writer(self, telemetry, tmp_path):
        from repro.data import ArchiveAppender

        batch_dir = tmp_path / "batch"
        stream_dir = tmp_path / "stream"
        day = write_archive_day(telemetry, batch_dir)
        first, second = self._halves(telemetry)
        with ArchiveAppender(stream_dir) as appender:
            appender.append(first)
            appender.flush()
            appender.append(second)
        streamed = ArchiveDay.in_directory(stream_dir)
        assert streamed.video_sent.read_bytes() == day.video_sent.read_bytes()
        assert (
            streamed.video_acked.read_bytes() == day.video_acked.read_bytes()
        )
        assert (
            streamed.client_buffer.read_bytes()
            == day.client_buffer.read_bytes()
        )

    def test_reopen_appends_without_duplicate_header(
        self, telemetry, tmp_path
    ):
        from repro.data import ArchiveAppender

        first, second = self._halves(telemetry)
        with ArchiveAppender(tmp_path) as appender:
            appender.append(first)
        with ArchiveAppender(tmp_path) as appender:
            appender.append(second)
        loaded = load_archive_day(tmp_path)
        assert len(loaded.video_sent) == len(telemetry.video_sent)
        header = ArchiveDay.in_directory(tmp_path).video_sent.read_text()
        assert header.count("time,stream_id") == 1

    def test_truncate_to_discards_uncommitted_rows(self, telemetry, tmp_path):
        from repro.data import ArchiveAppender

        first, second = self._halves(telemetry)
        with ArchiveAppender(tmp_path) as appender:
            appender.append(first)
            durable = appender.offsets()
            appender.append(second)  # crashes before the next checkpoint…
        with ArchiveAppender(tmp_path) as appender:
            appender.truncate_to(durable)  # …so resume rolls these back
            assert appender.offsets() == durable
        loaded = load_archive_day(tmp_path)
        assert len(loaded.video_sent) == len(first.video_sent)
        assert len(loaded.video_acked) == len(first.video_acked)
        assert len(loaded.client_buffer) == len(first.client_buffer)

    def test_truncate_requires_every_table(self, tmp_path):
        from repro.data import ArchiveAppender

        with ArchiveAppender(tmp_path) as appender:
            with pytest.raises(ValueError, match="no stored offset"):
                appender.truncate_to({"video_sent": 0})

    def test_offsets_reflect_flushed_bytes(self, telemetry, tmp_path):
        from repro.data import ArchiveAppender

        with ArchiveAppender(tmp_path) as appender:
            before = appender.offsets()
            appender.append(telemetry)
            after = appender.offsets()
        day = ArchiveDay.in_directory(tmp_path)
        assert after["video_sent"] == day.video_sent.stat().st_size
        assert all(after[k] >= before[k] for k in before)


class TestTolerantReconstruction:
    """reconstruct_streams must survive the row-ordering hazards of a
    streamed archive: shuffled acks, duplicates, orphans, clock skew."""

    def test_ack_order_is_irrelevant(self, telemetry):
        reference = reconstruct_streams(telemetry)
        rng = np.random.default_rng(0)
        shuffled = TelemetryLog()
        shuffled.video_sent.extend(telemetry.video_sent)
        shuffled.client_buffer.extend(telemetry.client_buffer)
        acks = list(telemetry.video_acked)
        rng.shuffle(acks)
        shuffled.video_acked.extend(acks)
        result = reconstruct_streams(shuffled)
        assert set(result) == set(reference)
        for stream_id in reference:
            assert (
                result[stream_id].chunk_transmission_times
                == reference[stream_id].chunk_transmission_times
            )

    def test_duplicate_acks_keep_earliest(self, telemetry):
        from dataclasses import replace

        reference = reconstruct_streams(telemetry)
        noisy = TelemetryLog()
        noisy.video_sent.extend(telemetry.video_sent)
        noisy.client_buffer.extend(telemetry.client_buffer)
        noisy.video_acked.extend(telemetry.video_acked)
        # Re-ack every chunk 5 seconds later (a retransmitted ack).
        for ack in telemetry.video_acked:
            noisy.video_acked.append(replace(ack, time=ack.time + 5.0))
        result = reconstruct_streams(noisy)
        for stream_id in reference:
            assert (
                result[stream_id].chunk_transmission_times
                == reference[stream_id].chunk_transmission_times
            )

    def test_orphan_acks_dropped(self, telemetry):
        from dataclasses import replace

        reference = reconstruct_streams(telemetry)
        noisy = TelemetryLog()
        noisy.video_sent.extend(telemetry.video_sent)
        noisy.client_buffer.extend(telemetry.client_buffer)
        noisy.video_acked.extend(telemetry.video_acked)
        # Acks for chunks that were never sent (viewer left mid-delivery).
        template = telemetry.video_acked[0]
        noisy.video_acked.append(replace(template, chunk_index=10_000))
        noisy.video_acked.append(
            replace(template, stream_id=999, chunk_index=0)
        )
        result = reconstruct_streams(noisy)
        assert set(result) == set(reference)
        for stream_id in reference:
            assert (
                result[stream_id].n_chunks_acked
                == reference[stream_id].n_chunks_acked
            )

    def test_acks_before_send_dropped(self, telemetry):
        from dataclasses import replace

        reference = reconstruct_streams(telemetry)
        noisy = TelemetryLog()
        noisy.video_sent.extend(telemetry.video_sent)
        noisy.client_buffer.extend(telemetry.client_buffer)
        # Corrupt every ack to predate its send: all must be dropped…
        for ack in telemetry.video_acked:
            noisy.video_acked.append(replace(ack, time=-1.0))
        result = reconstruct_streams(noisy)
        for stream in result.values():
            assert stream.n_chunks_acked == 0
        # …without corrupting a clean reconstruction run afterwards.
        assert reconstruct_streams(telemetry) == reference

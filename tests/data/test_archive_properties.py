"""Property tests for archive reconstruction (the learning-loop's input).

The continual retrainer trains on streams *reconstructed from the archive*,
so the reconstruction must be a pure function of the archive's row **set**:
a streamed (or sharded, or crash-replayed) archive may interleave tables,
re-append rows, or lose an uncommitted tail, and none of that may change
what the TTP learns.  Three property families:

* **row-set invariance** — arbitrary interleavings and duplications of the
  telemetry rows reconstruct exactly the same streams as the in-order log;
* **byte-slice fidelity** — the appender's byte-offset slices reproduce the
  exact in-memory rows (CSV float round-trips are exact), and consecutive
  slices compose to the whole;
* **truncation** — rolling the archive back to a commit boundary
  reconstructs exactly the in-order prefix's streams.
"""

import tempfile

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.archive import (
    ArchiveAppender,
    read_telemetry_slice,
    reconstruct_streams,
    reconstruct_training_streams,
)
from repro.streaming.telemetry import (
    BufferEvent,
    ClientBufferRecord,
    TelemetryLog,
    VideoAckedRecord,
    VideoSentRecord,
)

# Floats with awkward reprs included; no NaN (CSV round-trip of NaN is not
# part of the contract — the simulator never emits it).
times = st.floats(
    min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False
)
sizes = st.floats(
    min_value=1.0, max_value=1e7, allow_nan=False, allow_infinity=False
)
ssims = st.floats(
    min_value=1e-6, max_value=1.0 - 1e-9,
    allow_nan=False, allow_infinity=False,
)
tcp_floats = st.floats(
    min_value=0.0, max_value=1e8, allow_nan=False, allow_infinity=False
)


@st.composite
def telemetry_logs(draw):
    """Small synthetic logs with every join hazard represented: missing
    acks, duplicate acks (same and different times), time-travelling acks,
    and orphan acks with no matching sent row."""
    log = TelemetryLog()
    n_streams = draw(st.integers(min_value=1, max_value=3))
    for stream_id in range(n_streams):
        expt_id = draw(st.integers(min_value=0, max_value=3))
        n_chunks = draw(st.integers(min_value=0, max_value=5))
        for chunk_index in range(n_chunks):
            send_time = draw(times)
            log.video_sent.append(
                VideoSentRecord(
                    time=send_time,
                    stream_id=stream_id,
                    expt_id=expt_id,
                    chunk_index=chunk_index,
                    size=draw(sizes),
                    ssim_index=draw(ssims),
                    cwnd=draw(tcp_floats),
                    in_flight=draw(tcp_floats),
                    min_rtt=draw(tcp_floats),
                    rtt=draw(tcp_floats),
                    delivery_rate=draw(tcp_floats),
                )
            )
            # 0 acks (lost), 1, or several (duplicates); offsets may be
            # negative (clock-skewed rows the join must drop).
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                offset = draw(
                    st.floats(
                        min_value=-2.0, max_value=30.0,
                        allow_nan=False, allow_infinity=False,
                    )
                )
                log.video_acked.append(
                    VideoAckedRecord(
                        time=send_time + offset,
                        stream_id=stream_id,
                        expt_id=expt_id,
                        chunk_index=chunk_index,
                    )
                )
            log.client_buffer.append(
                ClientBufferRecord(
                    time=send_time,
                    stream_id=stream_id,
                    expt_id=expt_id,
                    event=BufferEvent.TIMER,
                    buffer=draw(tcp_floats),
                    cum_rebuf=draw(times),
                )
            )
    # Orphan acks: stream/chunk pairs with no sent row at all.
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        log.video_acked.append(
            VideoAckedRecord(
                time=draw(times),
                stream_id=draw(st.integers(min_value=0, max_value=5)),
                expt_id=0,
                chunk_index=draw(st.integers(min_value=6, max_value=9)),
            )
        )
    return log


def scrambled(log, seed, duplicate):
    """Same row set: independently shuffled tables, optionally with a
    random subset of rows re-appended verbatim (retry/replay hazard)."""
    rng = np.random.default_rng(seed)
    out = TelemetryLog()
    for src, dst in (
        (log.video_sent, out.video_sent),
        (log.video_acked, out.video_acked),
        (log.client_buffer, out.client_buffer),
    ):
        rows = list(src)
        if duplicate and rows:
            extras = [
                rows[int(i)]
                for i in rng.integers(len(rows), size=rng.integers(1, 4))
            ]
            rows.extend(extras)
        order = rng.permutation(len(rows))
        dst.extend(rows[int(i)] for i in order)
    return out


def training_key(streams):
    """Comparable exact form of reconstruct_training_streams output."""
    return [
        (s.stream_id, s.scheme_name, tuple(s.records)) for s in streams
    ]


class TestRowSetInvariance:
    @settings(max_examples=60, deadline=None)
    @given(log=telemetry_logs(), seed=st.integers(0, 2**32 - 1),
           duplicate=st.booleans())
    def test_analyst_join_is_row_set_pure(self, log, seed, duplicate):
        reference = reconstruct_streams(log)
        mutated = reconstruct_streams(scrambled(log, seed, duplicate))
        assert mutated == reference

    @settings(max_examples=60, deadline=None)
    @given(log=telemetry_logs(), seed=st.integers(0, 2**32 - 1),
           duplicate=st.booleans())
    def test_training_streams_are_row_set_pure(self, log, seed, duplicate):
        reference = training_key(reconstruct_training_streams(log))
        mutated = training_key(
            reconstruct_training_streams(scrambled(log, seed, duplicate))
        )
        assert mutated == reference

    @settings(max_examples=40, deadline=None)
    @given(log=telemetry_logs())
    def test_training_streams_well_formed(self, log):
        for stream in reconstruct_training_streams(log):
            indices = [r.chunk_index for r in stream.records]
            assert indices == sorted(indices)
            assert len(set(indices)) == len(indices)
            assert all(r.transmission_time >= 0 for r in stream.records)
            assert stream.records, "empty streams are never emitted"


class TestByteSlices:
    @settings(max_examples=25, deadline=None)
    @given(
        logs=st.lists(telemetry_logs(), min_size=1, max_size=4),
        cut_seed=st.integers(0, 2**32 - 1),
    )
    def test_slices_compose_to_the_whole(self, logs, cut_seed):
        with tempfile.TemporaryDirectory() as directory:
            appender = ArchiveAppender(directory)
            snapshots = [appender.offsets()]
            for log in logs:
                appender.append(log)
                snapshots.append(appender.offsets())

            # Each inter-snapshot slice returns exactly its log's rows
            # (CSV float round-trips are exact, so equality is exact).
            for log, start, end in zip(logs, snapshots, snapshots[1:]):
                piece = read_telemetry_slice(directory, start, end)
                assert piece.video_sent == log.video_sent
                assert piece.video_acked == log.video_acked
                assert piece.client_buffer == log.client_buffer

            # Any snapshot-to-end slice equals the concatenated suffix.
            rng = np.random.default_rng(cut_seed)
            cut = int(rng.integers(len(snapshots)))
            suffix = read_telemetry_slice(directory, snapshots[cut], None)
            expected = TelemetryLog()
            for log in logs[cut:]:
                expected.extend(log)
            assert suffix.video_sent == expected.video_sent
            assert suffix.video_acked == expected.video_acked
            assert suffix.client_buffer == expected.client_buffer
            appender.close()

    @settings(max_examples=25, deadline=None)
    @given(
        logs=st.lists(telemetry_logs(), min_size=1, max_size=3),
        keep=st.integers(0, 3),
    )
    def test_truncation_reconstructs_the_prefix(self, logs, keep):
        keep = min(keep, len(logs))
        with tempfile.TemporaryDirectory() as directory:
            appender = ArchiveAppender(directory)
            first = appender.offsets()
            snapshots = []
            for log in logs:
                appender.append(log)
                snapshots.append(appender.offsets())
            rollback = snapshots[keep - 1] if keep else first
            appender.truncate_to(rollback)

            prefix = TelemetryLog()
            for log in logs[:keep]:
                prefix.extend(log)
            restored = appender.reconstruct_streams(first)
            assert training_key(restored) == training_key(
                reconstruct_training_streams(prefix)
            )
            appender.close()

"""LRU semantics of the per-cell edge cache."""

import pytest

from repro.edge.cache import EdgeCache


def _key(i, rung=0):
    return ("ch", i, rung)


class TestLru:
    def test_miss_then_hit(self):
        cache = EdgeCache(4)
        assert not cache.lookup(_key(1))
        cache.insert(_key(1))
        assert cache.lookup(_key(1))
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_ratio == 0.5

    def test_lookup_does_not_admit(self):
        cache = EdgeCache(4)
        cache.lookup(_key(1))
        assert _key(1) not in cache
        assert len(cache) == 0

    def test_eviction_is_least_recently_used(self):
        cache = EdgeCache(2)
        cache.insert(_key(1))
        cache.insert(_key(2))
        cache.lookup(_key(1))  # refresh 1; 2 becomes LRU
        cache.insert(_key(3))
        assert _key(1) in cache
        assert _key(2) not in cache
        assert _key(3) in cache

    def test_insert_refreshes_recency(self):
        cache = EdgeCache(2)
        cache.insert(_key(1))
        cache.insert(_key(2))
        cache.insert(_key(1))  # re-admit refreshes, does not duplicate
        assert len(cache) == 2
        cache.insert(_key(3))
        assert _key(2) not in cache
        assert _key(1) in cache

    def test_rungs_are_distinct_objects(self):
        cache = EdgeCache(4)
        cache.insert(_key(1, rung=0))
        assert not cache.lookup(_key(1, rung=1))

    def test_zero_capacity_disables(self):
        cache = EdgeCache(0)
        cache.insert(_key(1))
        assert not cache.lookup(_key(1))
        assert len(cache) == 0
        assert cache.hit_ratio == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeCache(-1)

    def test_replay_reaches_identical_state(self):
        """The resume contract: cache state is a pure function of the
        lookup/insert sequence."""
        ops = [("l", 1), ("i", 1), ("l", 2), ("i", 2), ("l", 1),
               ("i", 3), ("l", 3), ("l", 2), ("i", 4), ("l", 4)]

        def replay():
            cache = EdgeCache(3)
            for op, i in ops:
                if op == "l":
                    cache.lookup(_key(i))
                else:
                    cache.insert(_key(i))
            return list(cache._entries), cache.hits, cache.misses

        assert replay() == replay()

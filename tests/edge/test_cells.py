"""The cell partition: pure, seeded, resumable."""

import pytest

from repro.edge.cells import (
    Cell,
    EdgeConfig,
    cell_covering,
    cells_for,
    iter_cells,
)


class TestCellPartition:
    def test_partition_is_contiguous_and_pure(self):
        config = EdgeConfig(mean_cell_sessions=3.0, seed=5)
        a = cells_for(config, 100)
        b = cells_for(config, 100)
        assert a == b
        expected_start = 0
        for index, cell in enumerate(a):
            assert cell.cell_id == index
            assert cell.start_session_id == expected_start
            expected_start = cell.end_session_id
        assert a[-1].end_session_id == 100

    def test_truncation_only_affects_last_cell(self):
        config = EdgeConfig(mean_cell_sessions=3.0, seed=5)
        full = cells_for(config, 100)
        short = cells_for(config, 37)
        assert short[:-1] == full[: len(short) - 1]
        assert short[-1].end_session_id == 37

    def test_fixed_dist_is_exact(self):
        config = EdgeConfig(mean_cell_sessions=4.0, cell_size_dist="fixed")
        assert all(c.size == 4 for c in cells_for(config, 40))

    def test_singleton_config(self):
        config = EdgeConfig(
            mean_cell_sessions=1.0, cell_size_dist="fixed"
        )
        cells = cells_for(config, 10)
        assert [c.size for c in cells] == [1] * 10

    def test_geometric_sizes_vary_and_average_near_mean(self):
        config = EdgeConfig(mean_cell_sessions=4.0, seed=0)
        sizes = [config.cell_size(c) for c in range(500)]
        assert min(sizes) >= 1
        assert len(set(sizes)) > 1
        assert 3.0 < sum(sizes) / len(sizes) < 5.0

    def test_cell_covering_matches_partition(self):
        config = EdgeConfig(mean_cell_sessions=3.0, seed=5)
        # Skip the final cell: cells_for truncates it at n_sessions while
        # cell_covering always returns the full seeded cell.
        cells = cells_for(config, 60)[:-1]
        for cell in cells:
            for sid in cell.session_ids:
                assert cell_covering(config, sid) == cell

    def test_iter_cells_is_endless_prefix_of_cells_for(self):
        config = EdgeConfig(mean_cell_sessions=2.5, seed=1)
        stream = iter_cells(config)
        for cell in cells_for(config, 30)[:-1]:
            assert next(stream) == cell


class TestSeededQuantities:
    def test_shared_links_differ_across_cells(self):
        config = EdgeConfig(seed=3)
        caps = {config.shared_link(c).capacity_at(0.0) for c in range(8)}
        assert len(caps) > 1

    def test_shared_link_is_pure_per_cell(self):
        config = EdgeConfig(seed=3)
        a = config.shared_link(2)
        b = config.shared_link(2)
        assert [a.capacity_at(t * 0.5) for t in range(20)] == [
            b.capacity_at(t * 0.5) for t in range(20)
        ]

    def test_popularity_uses_edge_seed(self):
        a = EdgeConfig(seed=0).popularity(0, 16)
        b = EdgeConfig(seed=1).popularity(0, 16)
        assert a.hottest() != b.hottest() or a.rank_of(1) != b.rank_of(1)


class TestValidationAndSerialization:
    def test_config_round_trips(self):
        config = EdgeConfig(
            mean_cell_sessions=2.5,
            cell_size_dist="geometric",
            cell_capacity_bps=45e6,
            capacity_log_sigma=0.3,
            capacity_sigma=0.2,
            capacity_fade_rate=0.01,
            zipf_alpha=0.9,
            cache_chunks=128,
            cubic_weight=1.5,
            seed=9,
        )
        assert EdgeConfig.from_dict(config.to_dict()) == config

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EdgeConfig(mean_cell_sessions=0.5)
        with pytest.raises(ValueError):
            EdgeConfig(cell_size_dist="poisson")
        with pytest.raises(ValueError):
            EdgeConfig(cell_capacity_bps=0.0)
        with pytest.raises(ValueError):
            EdgeConfig(cache_chunks=-1)
        with pytest.raises(ValueError):
            EdgeConfig(cubic_weight=0.0)

    def test_cell_validation(self):
        with pytest.raises(ValueError):
            Cell(cell_id=-1, start_session_id=0, size=1)
        with pytest.raises(ValueError):
            Cell(cell_id=0, start_session_id=0, size=0)
        cell = Cell(cell_id=0, start_session_id=5, size=3)
        assert list(cell.session_ids) == [5, 6, 7]

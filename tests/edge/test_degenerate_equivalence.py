"""Differential guarantee of the edge tier's degenerate configuration.

A fleet of one-session cells models exactly what the classic executor
models — every viewer alone behind a private bottleneck — so its metrics
dump must be *byte-identical* to the private-link executor's, at any
worker count.  This pins the whole cell plumbing (partition, chunking,
checkpointing, sink folding) to the established determinism contract.
"""

import json

import pytest

from repro.edge.cells import EdgeConfig
from repro.fleet.runner import FleetConfig, run_fleet
from repro.fleet.workload import WorkloadConfig

from tests.fleet.conftest import classical_specs


@pytest.fixture(scope="module")
def specs():
    return classical_specs()


@pytest.fixture(scope="module")
def workload():
    return WorkloadConfig(days=0.01, sessions_per_hour=60.0, seed=7)


def _dump_bytes(result) -> bytes:
    return json.dumps(
        result.to_dump_dict(), sort_keys=True, indent=2
    ).encode()


class TestDegenerateEquivalence:
    def test_singleton_cells_match_private_executor_at_any_worker_count(
        self, specs, workload
    ):
        classic = run_fleet(
            specs, FleetConfig(workload=workload, chunk_sessions=4)
        )
        reference = _dump_bytes(classic)
        degenerate = FleetConfig(
            workload=workload,
            chunk_sessions=4,
            edge=EdgeConfig(
                mean_cell_sessions=1.0, cell_size_dist="fixed"
            ),
        )
        for workers in (1, 2, 3):
            result = run_fleet(specs, degenerate, workers=workers)
            assert _dump_bytes(result) == reference, (
                f"degenerate cell dump diverged at workers={workers}"
            )
            assert result.edge_stats is not None
            assert result.edge_stats["shared_cells"] == 0
            assert result.edge_stats["cache_hits"] == 0

    def test_edge_seed_is_irrelevant_when_degenerate(self, specs, workload):
        """Singleton cells never touch the shared link, cache, or
        popularity — the edge seed must not leak into results."""
        dumps = set()
        for edge_seed in (0, 1):
            config = FleetConfig(
                workload=workload,
                chunk_sessions=4,
                edge=EdgeConfig(
                    mean_cell_sessions=1.0,
                    cell_size_dist="fixed",
                    seed=edge_seed,
                ),
            )
            dumps.add(_dump_bytes(run_fleet(specs, config)))
        assert len(dumps) == 1


class TestSharedInvariance:
    def test_shared_cells_are_worker_invariant(self, specs, workload):
        config = FleetConfig(
            workload=workload,
            chunk_sessions=4,
            edge=EdgeConfig(mean_cell_sessions=3.0, seed=11),
        )
        results = [
            run_fleet(specs, config, workers=w) for w in (1, 2, 3)
        ]
        dumps = {_dump_bytes(r) for r in results}
        assert len(dumps) == 1
        stats = {json.dumps(r.edge_stats, sort_keys=True) for r in results}
        assert len(stats) == 1

    def test_shared_cells_change_the_dump(self, specs, workload):
        classic = run_fleet(
            specs, FleetConfig(workload=workload, chunk_sessions=4)
        )
        shared = run_fleet(
            specs,
            FleetConfig(
                workload=workload,
                chunk_sessions=4,
                edge=EdgeConfig(mean_cell_sessions=3.0, seed=11),
            ),
        )
        assert _dump_bytes(shared) != _dump_bytes(classic)
        assert shared.edge_stats["shared_cells"] > 0

"""A real ``kill -9`` delivered to a cell-mode fleet run mid-flight, then
a CLI resume at a different worker count, must reproduce the uninterrupted
run's metrics dump byte for byte.

The kill trigger is state-based: the victim's checkpoint is polled until
at least one commit has landed (``next_session_id > 0`` and not
completed), so the signal arrives mid-run on fast and slow machines alike.
Cell mode makes this stricter than the classic fleet variant: the resume
point must land on a cell boundary and the edge-tier tallies in
``extra["edge"]`` must be restored consistently.
"""

import json
import os
import subprocess
import sys
import time

import pytest


@pytest.mark.parallel_smoke
class TestEdgeSigkillResume:
    CLI = [
        "fleet", "run",
        "--days", "0.03", "--rate", "70", "--seed", "7",
        "--trial-seed", "3", "--chunk-size", "4",
        "--cells", "3", "--edge-seed", "11",
    ]

    def _env(self):
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _run_cli(self, args, cwd):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            cwd=cwd, env=self._env(), capture_output=True, text=True,
        )

    def test_sigkill_mid_run_then_resume(self, tmp_path):
        # Reference: one uninterrupted CLI run.
        ref_dump = tmp_path / "ref.json"
        completed = self._run_cli(
            self.CLI + ["--out", str(ref_dump)], cwd=str(tmp_path)
        )
        assert completed.returncode == 0, completed.stderr

        # Victim: same run with a checkpoint, killed without warning after
        # the first durable commit.
        ckpt = str(tmp_path / "ckpt.json")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", *self.CLI,
             "--checkpoint", ckpt, "--workers", "2"],
            cwd=str(tmp_path), env=self._env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.time() + 60.0
        committed = 0
        while time.time() < deadline:
            if process.poll() is not None:
                break
            try:
                with open(ckpt) as f:
                    snapshot = json.load(f)
            except (FileNotFoundError, ValueError):
                snapshot = None
            if snapshot is not None:
                committed = snapshot["next_session_id"]
                if committed > 0 and not snapshot["completed"]:
                    break
            time.sleep(0.02)
        process.kill()
        process.wait(timeout=30)
        assert os.path.exists(ckpt), "killed before any checkpoint"
        assert committed > 0, "run finished before the kill could land"

        checkpoint = json.loads(open(ckpt).read())
        assert not checkpoint["completed"]
        # Cell mode persists its tier tallies with the checkpoint.
        assert "edge" in checkpoint["extra"]

        # Resume via the CLI (configuration round-trips through the
        # checkpoint's stored cli_args) at a different worker count.
        victim_dump = tmp_path / "victim.json"
        resumed = self._run_cli(
            ["fleet", "resume", "--checkpoint", ckpt, "--workers", "3",
             "--out", str(victim_dump)],
            cwd=str(tmp_path),
        )
        assert resumed.returncode == 0, resumed.stderr
        assert victim_dump.read_bytes() == ref_dump.read_bytes()

        # The resumed run's edge tallies match a straight run's.
        final = json.loads(open(ckpt).read())
        assert final["completed"]
        stats = final["extra"]["edge"]
        assert stats["cells"] > 0
        assert stats["cache_hits"] + stats["cache_misses"] > 0

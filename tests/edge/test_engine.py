"""The cell co-simulation engine: determinism, degenerate dispatch, obs."""

import pytest

from repro import obs
from repro.edge.cells import Cell, EdgeConfig
from repro.edge.engine import run_cell
from repro.experiment.harness import TrialConfig, run_session

from tests.fleet.conftest import classical_specs


def _session_fingerprint(shard):
    """Everything a stream contributes, as a comparable value."""
    session = shard.session
    return (
        session.session_id,
        session.scheme,
        session.expt_id,
        [
            (
                stream.stream_id,
                stream.scheme_name,
                stream.startup_delay,
                stream.play_time,
                stream.stall_time,
                stream.total_time,
                stream.never_began,
                stream.excluded,
                [
                    (r.chunk_index, r.rung, r.ssim_db, r.transmission_time)
                    for r in stream.records
                ],
            )
            for stream in session.streams
        ],
    )


@pytest.fixture(scope="module")
def specs():
    return classical_specs()


@pytest.fixture(scope="module")
def trial():
    return TrialConfig(seed=3, n_sessions=1)


class TestDegenerateDispatch:
    def test_singleton_cell_is_bit_identical_to_run_session(
        self, specs, trial
    ):
        edge = EdgeConfig(mean_cell_sessions=1.0, cell_size_dist="fixed")
        for session_id in range(4):
            cell = Cell(
                cell_id=session_id, start_session_id=session_id, size=1
            )
            result = run_cell(specs, trial, cell, edge, offsets=[123.0])
            assert not result.shared
            assert result.cache_hits == 0 and result.cache_misses == 0
            direct = run_session(specs, trial, session_id)
            assert _session_fingerprint(
                result.shards[0]
            ) == _session_fingerprint(direct)


class TestSharedCell:
    def test_replay_is_deterministic(self, specs, trial):
        edge = EdgeConfig(mean_cell_sessions=3.0, seed=11)
        cell = Cell(cell_id=2, start_session_id=3, size=3)
        offsets = [0.0, 4.0, 20.0]

        def run():
            result = run_cell(specs, trial, cell, edge, offsets=offsets)
            return (
                [_session_fingerprint(s) for s in result.shards],
                result.cache_hits,
                result.cache_misses,
            )

        assert run() == run()

    def test_shared_cell_differs_from_private_links(self, specs, trial):
        """Contention and the popularity chooser must actually change
        outcomes — otherwise the tier models nothing."""
        edge = EdgeConfig(mean_cell_sessions=3.0, seed=11)
        cell = Cell(cell_id=2, start_session_id=3, size=3)
        result = run_cell(
            specs, trial, cell, edge, offsets=[0.0, 4.0, 20.0]
        )
        assert result.shared
        assert result.cache_hits + result.cache_misses > 0
        private = [
            _session_fingerprint(run_session(specs, trial, sid))
            for sid in cell.session_ids
        ]
        assert [_session_fingerprint(s) for s in result.shards] != private

    def test_scheme_assignment_is_cell_independent(self, specs, trial):
        """Randomization stays keyed on (seed, session_id): which arm a
        session lands in cannot depend on the cell partition."""
        edge = EdgeConfig(mean_cell_sessions=3.0, seed=11)
        cell = Cell(cell_id=2, start_session_id=3, size=3)
        result = run_cell(
            specs, trial, cell, edge, offsets=[0.0, 4.0, 20.0]
        )
        for sid, shard in zip(cell.session_ids, result.shards):
            assert shard.session.scheme == run_session(
                specs, trial, sid
            ).session.scheme

    def test_zero_capacity_cache_never_hits(self, specs, trial):
        edge = EdgeConfig(mean_cell_sessions=2.0, seed=1, cache_chunks=0)
        cell = Cell(cell_id=0, start_session_id=0, size=2)
        result = run_cell(specs, trial, cell, edge, offsets=[0.0, 1.0])
        assert result.cache_hits == 0
        assert result.cache_misses > 0

    def test_offsets_validation(self, specs, trial):
        edge = EdgeConfig(mean_cell_sessions=2.0)
        cell = Cell(cell_id=0, start_session_id=0, size=2)
        with pytest.raises(ValueError):
            run_cell(specs, trial, cell, edge, offsets=[0.0])
        with pytest.raises(ValueError):
            run_cell(specs, trial, cell, edge, offsets=[0.0, -1.0])


class TestObservability:
    def test_cache_counters_flow_through_obs(self, specs):
        trial = TrialConfig(seed=3, n_sessions=1, observability=True)
        edge = EdgeConfig(mean_cell_sessions=2.0, seed=1)
        cell = Cell(cell_id=0, start_session_id=0, size=2)
        result = run_cell(specs, trial, cell, edge, offsets=[0.0, 2.0])
        hits = misses = 0
        for shard in result.shards:
            assert shard.obs is not None
            hits += shard.obs.metrics.counters.get("edge.cache_hits", 0)
            misses += shard.obs.metrics.counters.get(
                "edge.cache_misses", 0
            )
        assert hits == result.cache_hits
        assert misses == result.cache_misses
        assert not obs.ENABLED

"""Property-based suite for the weighted max-min fair-share solver.

The solver is the numeric heart of the cell co-simulation: every event in
every shared cell re-solves it, and the determinism contract requires its
output to be a pure function of the multiset of (cap, weight) pairs — in
particular *permutation-invariant*, which is why it computes in exact
rational arithmetic and converts to float once per flow at the end.
"""

import math

import pytest
from hypothesis import given, strategies as st

from repro.edge.fairshare import max_min_shares

_capacities = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
_caps = st.lists(
    st.floats(
        min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=12,
)


def _weights_for(caps, draw_weights):
    return draw_weights[: len(caps)] if draw_weights else None


class TestConservation:
    @given(capacity=_capacities, caps=_caps)
    def test_shares_never_exceed_capacity_or_caps(self, capacity, caps):
        shares = max_min_shares(capacity, caps)
        assert len(shares) == len(caps)
        for share, cap in zip(shares, caps):
            assert share >= 0.0
            assert share <= cap * (1 + 1e-9) + 1e-9
        assert sum(shares) <= capacity * (1 + 1e-9) + 1e-9

    @given(capacity=_capacities, caps=_caps)
    def test_work_conserving(self, capacity, caps):
        """The link is fully used unless every flow is cap-limited."""
        shares = max_min_shares(capacity, caps)
        total = sum(shares)
        all_capped = all(
            math.isclose(share, cap, rel_tol=1e-9, abs_tol=1e-9)
            for share, cap in zip(shares, caps)
        )
        assert all_capped or math.isclose(
            total, capacity, rel_tol=1e-9, abs_tol=1e-9
        )


class TestPermutationInvariance:
    @given(
        capacity=_capacities,
        caps=_caps,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_shares_follow_the_permutation_exactly(
        self, capacity, caps, seed
    ):
        """Bitwise — the engine's determinism depends on it, not just
        up to float tolerance."""
        import numpy as np

        weights = [1.0 + (i % 3) for i in range(len(caps))]
        base = max_min_shares(capacity, caps, weights)
        perm = list(np.random.default_rng(seed).permutation(len(caps)))
        permuted = max_min_shares(
            capacity, [caps[i] for i in perm], [weights[i] for i in perm]
        )
        assert [base[i] for i in perm] == permuted


class TestSingletonCollapse:
    @given(capacity=_capacities, cap=_capacities)
    def test_single_flow_gets_the_bottleneck(self, capacity, cap):
        """One flow alone must collapse to the private-link rate —
        the solver-level face of degenerate-cell equivalence."""
        assert max_min_shares(capacity, [cap]) == [min(capacity, cap)]

    @given(capacity=_capacities, cap=_capacities)
    def test_weight_is_irrelevant_when_alone(self, capacity, cap):
        assert max_min_shares(capacity, [cap], [7.5]) == [
            min(capacity, cap)
        ]


class TestWeighted:
    def test_weighted_split_uncapped(self):
        shares = max_min_shares(90.0, [1e9, 1e9], [1.0, 2.0])
        assert shares == [30.0, 60.0]

    def test_capped_flow_releases_to_others(self):
        shares = max_min_shares(100.0, [10.0, 1e9])
        assert shares == [10.0, 90.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            max_min_shares(-1.0, [1.0])
        with pytest.raises(ValueError):
            max_min_shares(1.0, [-1.0])
        with pytest.raises(ValueError):
            max_min_shares(1.0, [1.0], [0.0])
        with pytest.raises(ValueError):
            max_min_shares(1.0, [1.0], [1.0, 2.0])

    def test_empty(self):
        assert max_min_shares(10.0, []) == []

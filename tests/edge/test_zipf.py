"""Shape and seed-lineage tests for the Zipf channel-popularity sampler."""

import numpy as np
import pytest

from repro.edge.zipf import ZipfChannelPopularity, zipf_weights


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        w = zipf_weights(10, 1.1)
        assert w.shape == (10,)
        assert np.isclose(w.sum(), 1.0)
        assert np.all(np.diff(w) < 0)

    def test_exact_power_law_ratios(self):
        w = zipf_weights(5, 1.0)
        # w_r ∝ 1/r: the hottest rank carries r times the weight of rank r.
        for r in range(1, 6):
            assert np.isclose(w[0] / w[r - 1], float(r))

    def test_alpha_zero_is_uniform(self):
        assert np.allclose(zipf_weights(7, 0.0), np.full(7, 1 / 7))

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(3, -0.1)


class TestPopularityLineage:
    def test_permutation_is_pure_in_seed_and_cell(self):
        a = ZipfChannelPopularity(8, 1.1, seed=3, cell_id=5)
        b = ZipfChannelPopularity(8, 1.1, seed=3, cell_id=5)
        assert np.array_equal(a.weights, b.weights)
        assert a.hottest() == b.hottest()

    def test_cells_get_distinct_local_taste(self):
        tastes = {
            ZipfChannelPopularity(32, 1.1, seed=3, cell_id=c).hottest()
            for c in range(16)
        }
        assert len(tastes) > 1

    def test_seed_changes_permutation(self):
        a = ZipfChannelPopularity(32, 1.1, seed=0, cell_id=0)
        b = ZipfChannelPopularity(32, 1.1, seed=1, cell_id=0)
        assert not np.array_equal(a.weights, b.weights)

    def test_weights_are_zipf_over_the_permutation(self):
        pop = ZipfChannelPopularity(12, 0.9, seed=7, cell_id=2)
        by_rank = zipf_weights(12, 0.9)
        for channel in range(12):
            assert pop.weight(channel) == by_rank[pop.rank_of(channel)]
        assert pop.rank_of(pop.hottest()) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfChannelPopularity(4, 1.0, seed=0, cell_id=-1)


class TestSampling:
    def test_sample_consumes_exactly_one_uniform(self):
        """The engine's determinism contract: a chooser draw costs one
        uniform from the session's own stream, no more, no less."""
        pop = ZipfChannelPopularity(6, 1.1, seed=0, cell_id=0)
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        pop.sample(rng_a)
        rng_b.random()
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_sample_matches_inverse_cdf(self):
        pop = ZipfChannelPopularity(6, 1.1, seed=0, cell_id=0)
        draws = [pop.sample(np.random.default_rng(s)) for s in range(200)]
        many = [
            int(pop.sample_many(np.random.default_rng(s), 1)[0])
            for s in range(200)
        ]
        assert draws == many
        assert set(draws) <= set(range(6))

    def test_empirical_frequencies_track_weights(self):
        pop = ZipfChannelPopularity(5, 1.2, seed=9, cell_id=1)
        rng = np.random.default_rng(123)
        samples = pop.sample_many(rng, 20000)
        freq = np.bincount(samples, minlength=5) / len(samples)
        assert np.allclose(freq, pop.weights, atol=0.02)
        # The hottest channel is sampled most often.
        assert int(np.argmax(freq)) == pop.hottest()

"""Tests for repro.emulation — the mahimahi/FCC environment (§5.2)."""

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.emulation import (
    CLIP_MINUTES,
    EMULATION_DELAY_S,
    EmulationEnvironment,
    train_fugu_in_emulation,
)
from repro.core.fugu import Fugu


@pytest.fixture(scope="module")
def env():
    return EmulationEnvironment(n_traces=4, seed=0)


class TestEnvironment:
    def test_paper_parameters(self):
        assert EMULATION_DELAY_S == 0.040
        assert CLIP_MINUTES == 10.0

    def test_clip_length(self, env):
        expected_chunks = int(10.0 * 60.0 / 2.002)
        assert len(env.clip) == expected_chunks

    def test_traces_generated(self, env):
        assert len(env.traces) == 4
        assert all(max(t) <= 12e6 for t in env.traces)

    def test_run_scheme_one_result_per_trace(self, env):
        results = env.run_scheme(BBA(), seed=0)
        assert len(results) == 4
        assert all(r.scheme_name == "bba" for r in results)

    def test_runs_per_trace(self, env):
        results = env.run_scheme(BBA(), runs_per_trace=2, seed=0)
        assert len(results) == 8

    def test_conditions_replay_identically(self, env):
        # The emulator's defining property (§5.3): the same scheme over the
        # same traces produces identical results.
        a = env.run_scheme(BBA(), seed=5)
        b = env.run_scheme(BBA(), seed=5)
        assert [r.play_time for r in a] == [r.play_time for r in b]
        assert [r.stall_time for r in a] == [r.stall_time for r in b]

    def test_clients_watch_whole_clip_when_network_allows(self, env):
        results = env.run_scheme(BBA(), seed=0)
        clip_chunks = len(env.clip)
        # At least the fastest trace delivers the full clip.
        assert max(len(r.records) for r in results) == clip_chunks

    def test_invalid_trace_count(self):
        with pytest.raises(ValueError):
            EmulationEnvironment(n_traces=0)


class TestEmulationTraining:
    def test_produces_working_predictor(self):
        env = EmulationEnvironment(n_traces=3, seed=1)
        predictor = train_fugu_in_emulation(
            env, epochs=2, iterations=0, seed=0
        )
        fugu = Fugu(predictor, name="fugu_emulation")
        results = env.run_scheme(fugu, seed=2)
        assert len(results) == 3
        assert all(len(r.records) > 0 for r in results)

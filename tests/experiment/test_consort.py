"""Tests for repro.experiment.consort — CONSORT flow accounting (Fig. A1)."""

import pytest

from repro.experiment.consort import (
    MIN_WATCH_TIME_S,
    ConsortArm,
    ConsortFlow,
    classify_stream,
    eligible_streams,
)
from repro.streaming.session import StreamResult


def stream(play=10.0, stall=0.0, startup=0.5, never=False, excluded=False):
    return StreamResult(
        stream_id=0, scheme_name="x", play_time=play, stall_time=stall,
        startup_delay=None if never else startup, total_time=play + stall,
        never_began=never, excluded=excluded,
    )


class TestClassify:
    def test_considered(self):
        assert classify_stream(stream()) == "considered"

    def test_never_began(self):
        assert classify_stream(stream(never=True)) == "did_not_begin"

    def test_missing_startup(self):
        s = stream()
        s.startup_delay = None
        assert classify_stream(s) == "did_not_begin"

    def test_under_four_seconds(self):
        assert classify_stream(stream(play=3.0)) == "watch_time_under_4s"
        assert MIN_WATCH_TIME_S == 4.0

    def test_exactly_four_seconds_considered(self):
        assert classify_stream(stream(play=4.0)) == "considered"

    def test_slow_decoder_exclusion(self):
        assert classify_stream(stream(excluded=True)) == "slow_video_decoder"

    def test_eligible_filter(self):
        streams = [stream(), stream(play=1.0), stream(never=True)]
        assert len(eligible_streams(streams)) == 1


class TestConsortFlow:
    def make_arm(self):
        arm = ConsortArm(scheme="x")
        arm.sessions_assigned = 10
        arm.streams_assigned = 30
        arm.did_not_begin = 8
        arm.watch_time_under_4s = 10
        arm.slow_video_decoder = 1
        arm.considered = 11
        arm.considered_watch_time_s = 5000.0
        return arm

    def test_arm_consistency_check(self):
        arm = self.make_arm()
        arm.check()  # must not raise
        arm.considered = 5
        with pytest.raises(ValueError, match="excluded"):
            arm.check()

    def test_excluded_total(self):
        assert self.make_arm().excluded == 19

    def test_flow_aggregates(self):
        flow = ConsortFlow()
        flow.arms["a"] = self.make_arm()
        b = self.make_arm()
        b.scheme = "b"
        flow.arms["b"] = b
        assert flow.sessions_randomized == 20
        assert flow.streams_total == 60
        assert flow.streams_considered == 22
        assert flow.considered_watch_years == pytest.approx(
            10000.0 / (365.25 * 24 * 3600)
        )

    def test_arm_accessor_creates(self):
        flow = ConsortFlow()
        arm = flow.arm("fugu")
        assert arm.scheme == "fugu"
        assert flow.arm("fugu") is arm

"""Tests for repro.experiment.harness — the RCT machinery.

These run the trial at a small scale: correctness of randomization,
blinding, CONSORT accounting, and telemetry, not statistical power.
"""

import numpy as np
import pytest

from repro.abr.pensieve import ActorCritic
from repro.core.ttp import TransmissionTimePredictor
from repro.experiment.harness import RandomizedTrial, TrialConfig
from repro.experiment.schemes import primary_experiment_schemes
from repro.experiment.watch import ViewerModel


@pytest.fixture(scope="module")
def small_trial():
    specs = primary_experiment_schemes(
        TransmissionTimePredictor(seed=0), ActorCritic(seed=0)
    )
    config = TrialConfig(n_sessions=60, seed=5, collect_telemetry=True)
    return RandomizedTrial(specs, config).run()


class TestRandomization:
    def test_all_sessions_assigned(self, small_trial):
        assert len(small_trial.sessions) == 60
        assert small_trial.consort.sessions_randomized == 60

    def test_assignment_covers_schemes(self, small_trial):
        assigned = {s.scheme for s in small_trial.sessions}
        assert len(assigned) >= 4  # 5 schemes, 60 sessions

    def test_assignment_is_session_level(self, small_trial):
        # Every stream in a session shares the session's scheme.
        for session in small_trial.sessions:
            assert all(
                stream.scheme_name == session.scheme
                for stream in session.streams
            )

    def test_blinding_expt_ids_opaque(self, small_trial):
        # expt_id is a shuffled opaque id, not the registry position.
        ids = small_trial.expt_ids
        assert sorted(ids.values()) == [1, 2, 3, 4, 5]
        for session in small_trial.sessions:
            assert session.expt_id == ids[session.scheme]

    def test_deterministic_given_seed(self):
        specs = primary_experiment_schemes(
            TransmissionTimePredictor(seed=0), ActorCritic(seed=0)
        )
        config = TrialConfig(n_sessions=10, seed=9)
        a = RandomizedTrial(specs, config).run()
        specs2 = primary_experiment_schemes(
            TransmissionTimePredictor(seed=0), ActorCritic(seed=0)
        )
        b = RandomizedTrial(specs2, config).run()
        assert [s.scheme for s in a.sessions] == [s.scheme for s in b.sessions]
        assert a.consort.streams_total == b.consort.streams_total


class TestConsortAccounting:
    def test_flow_consistency(self, small_trial):
        small_trial.consort.check()

    def test_sessions_contain_multiple_streams(self, small_trial):
        counts = [len(s.streams) for s in small_trial.sessions]
        assert max(counts) > 1
        assert small_trial.consort.streams_total == sum(counts)

    def test_exclusion_categories_populated(self, small_trial):
        flow = small_trial.consort
        total_excluded = sum(a.excluded for a in flow.arms.values())
        assert total_excluded > 0
        assert flow.streams_considered > 0

    def test_considered_streams_meet_minimum_watch(self, small_trial):
        for name in small_trial.scheme_names:
            for stream in small_trial.streams_for(name):
                assert stream.watch_time >= 4.0


class TestResults:
    def test_session_duration_sums_streams(self, small_trial):
        for session in small_trial.sessions:
            assert session.duration == pytest.approx(
                sum(s.total_time for s in session.streams)
            )

    def test_telemetry_collected(self, small_trial):
        assert small_trial.telemetry is not None
        assert len(small_trial.telemetry.video_sent) > 0
        # expt_ids in telemetry match the assignment map.
        valid_ids = set(small_trial.expt_ids.values())
        assert {r.expt_id for r in small_trial.telemetry.video_sent} <= valid_ids

    def test_streams_for_filters_eligibility(self, small_trial):
        for name in small_trial.scheme_names:
            eligible = small_trial.streams_for(name)
            all_streams = small_trial.all_streams_for(name)
            assert len(eligible) <= len(all_streams)


class TestValidation:
    def test_duplicate_scheme_names_rejected(self):
        specs = primary_experiment_schemes(
            TransmissionTimePredictor(seed=0), ActorCritic(seed=0)
        )
        with pytest.raises(ValueError, match="unique"):
            RandomizedTrial(specs + [specs[0]], TrialConfig(n_sessions=1))

    def test_empty_schemes_rejected(self):
        with pytest.raises(ValueError):
            RandomizedTrial([], TrialConfig(n_sessions=1))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TrialConfig(n_sessions=0)
        with pytest.raises(ValueError):
            TrialConfig(extra_stream_prob=1.0)
        with pytest.raises(ValueError):
            TrialConfig(max_streams_per_session=0)

"""Tests for repro.experiment.insitu — the in-situ training loop.

Small scales only; statistical quality is exercised by the benchmarks.
"""

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.core.fugu import Fugu
from repro.experiment.insitu import (
    InSituTrainingConfig,
    deploy_and_collect,
    train_fugu_in_situ,
    train_pensieve_in_simulation,
)


class TestDeployAndCollect:
    def test_returns_eligible_streams(self):
        streams = deploy_and_collect([BBA()], 6, seed=0, watch_time_s=60.0)
        assert streams
        assert all(s.watch_time >= 4.0 for s in streams)

    def test_round_robin_over_algorithms(self):
        a, b = BBA(), BBA(upper_reservoir_fraction=0.9)
        a.name, b.name = "a", "b"
        streams = deploy_and_collect([a, b], 6, seed=0, watch_time_s=30.0)
        names = {s.scheme_name for s in streams}
        # scheme_name is set by the simulator from the algorithm name.
        assert names <= {"a", "b", "bba"}

    def test_validation(self):
        with pytest.raises(ValueError):
            deploy_and_collect([], 5, seed=0)
        with pytest.raises(ValueError):
            deploy_and_collect([BBA()], 0, seed=0)

    def test_deterministic_given_seed(self):
        a = deploy_and_collect([BBA()], 4, seed=3, watch_time_s=30.0)
        b = deploy_and_collect([BBA()], 4, seed=3, watch_time_s=30.0)
        assert [s.play_time for s in a] == [s.play_time for s in b]


class TestTrainFuguInSitu:
    def test_small_training_run(self):
        config = InSituTrainingConfig(
            bootstrap_streams=8, iteration_streams=8, iterations=1,
            epochs=2, watch_time_s=60.0, seed=0,
        )
        predictor = train_fugu_in_situ(config)
        assert predictor.config.horizon == 5
        # The result wraps into a working scheme.
        fugu = Fugu(predictor)
        streams = deploy_and_collect([fugu], 3, seed=1, watch_time_s=40.0)
        assert streams

    def test_tail_calibrated_from_data(self):
        config = InSituTrainingConfig(
            bootstrap_streams=8, iteration_streams=8, iterations=0,
            epochs=1, watch_time_s=60.0, seed=0,
        )
        predictor = train_fugu_in_situ(config)
        assert predictor.tail_center_s >= 10.0


class TestTrainPensieve:
    def test_small_training_run(self):
        model = train_pensieve_in_simulation(
            episodes=10, n_traces=4, seed=0, chunks_per_episode=15
        )
        from repro.abr.pensieve import PENSIEVE_STATE_DIM

        p = model.action_probabilities(np.zeros(PENSIEVE_STATE_DIM))
        assert p.shape[1] == 10

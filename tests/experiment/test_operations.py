"""Tests for repro.experiment.operations — the daily retraining loop."""

import numpy as np
import pytest

from repro.core.ttp import TtpConfig
from repro.experiment.operations import simulate_operation


class TestSimulateOperation:
    @pytest.fixture(scope="class")
    def run(self):
        return simulate_operation(
            n_days=3,
            streams_per_day=24,
            epochs_per_day=3,
            snapshot_days=[0],
            watch_time_s=120.0,
            seed=1,
        )

    def test_history_length(self, run):
        _, report = run
        assert len(report.days) == 3
        assert [d.day for d in report.days] == [0, 1, 2]

    def test_metrics_populated(self, run):
        _, report = run
        for day in report.days:
            assert day.streams_served > 0
            assert not np.isnan(day.fugu_ssim_db)
            assert day.training_loss is not None

    def test_quality_improves_from_untrained_start(self, run):
        # Day 0 serves an untrained TTP; by the final day the model has
        # seen real telemetry and the training loss has dropped.
        _, report = run
        assert report.days[-1].training_loss < report.days[0].training_loss

    def test_snapshot_taken(self, run):
        _, report = run
        assert 0 in report.snapshots
        # The snapshot is a distinct object from the live predictor.
        predictor, _ = run
        assert report.snapshots[0] is not predictor

    def test_final_predictor_usable(self, run):
        predictor, _ = run
        sizes = np.array([5e5])
        from repro.net.tcp import TcpInfo

        info = TcpInfo(20, 5, 0.04, 0.05, 5e6)
        dist = predictor.distribution([], info, sizes)
        dist.validate()

    def test_invalid_days(self):
        with pytest.raises(ValueError):
            simulate_operation(n_days=0)

    def test_final_day_accessor(self, run):
        _, report = run
        assert report.final_day.day == 2

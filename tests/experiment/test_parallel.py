"""Tests for repro.experiment.parallel — the session-sharded trial engine.

The acceptance bar is *bit-identity*: for one :class:`TrialConfig`, the
parallel engine must reproduce the serial loop exactly — same stream
records, same CONSORT accounting, same telemetry records in the same order
— at any worker count.  That is what licenses running paper-scale trials
on many cores without changing the science.
"""

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm
from repro.experiment.harness import (
    RandomizedTrial,
    TrialConfig,
    assign_expt_ids,
    run_session,
)
from repro.experiment.insitu import deploy_and_collect
from repro.experiment.parallel import plan_chunks, run_trial_parallel
from repro.experiment.schemes import SchemeSpec


def classical_specs():
    """Cheap schemes (no trained models) for fast equivalence runs."""
    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
    ]


def learned_specs():
    """The full primary-experiment registry with untrained models — its
    factories are lambdas closing over model objects, which exercises the
    fork-inheritance path (they do not pickle)."""
    from repro.abr.pensieve import ActorCritic
    from repro.core.ttp import TransmissionTimePredictor
    from repro.experiment.schemes import primary_experiment_schemes

    return primary_experiment_schemes(
        TransmissionTimePredictor(seed=0), ActorCritic(seed=0)
    )


def assert_trials_bit_identical(a, b):
    """Full structural equality of two TrialResults (minus throughput)."""
    assert a.scheme_names == b.scheme_names
    assert a.expt_ids == b.expt_ids
    assert len(a.sessions) == len(b.sessions)
    for sa, sb in zip(a.sessions, b.sessions):
        assert sa.session_id == sb.session_id
        assert sa.scheme == sb.scheme
        assert sa.expt_id == sb.expt_id
        assert len(sa.streams) == len(sb.streams)
        for ra, rb in zip(sa.streams, sb.streams):
            assert ra.stream_id == rb.stream_id
            assert ra.records == rb.records  # bit-identical chunk records
            assert ra.startup_delay == rb.startup_delay
            assert ra.play_time == rb.play_time
            assert ra.stall_time == rb.stall_time
            assert ra.total_time == rb.total_time
            assert ra.never_began == rb.never_began
            assert ra.excluded == rb.excluded
    assert list(a.consort.arms) == list(b.consort.arms)  # insertion order
    assert a.consort.arms == b.consort.arms
    if a.telemetry is None:
        assert b.telemetry is None
    else:
        assert a.telemetry.video_sent == b.telemetry.video_sent
        assert a.telemetry.video_acked == b.telemetry.video_acked
        assert a.telemetry.client_buffer == b.telemetry.client_buffer


@pytest.fixture(scope="module")
def serial_trial():
    config = TrialConfig(n_sessions=24, seed=7, collect_telemetry=True)
    return RandomizedTrial(classical_specs(), config).run()


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_across_worker_counts(self, serial_trial, workers):
        config = TrialConfig(n_sessions=24, seed=7, collect_telemetry=True)
        trial = RandomizedTrial(classical_specs(), config).run(workers=workers)
        assert_trials_bit_identical(serial_trial, trial)

    def test_chunk_size_does_not_change_result(self, serial_trial):
        config = TrialConfig(n_sessions=24, seed=7, collect_telemetry=True)
        trial = RandomizedTrial(classical_specs(), config).run(
            workers=2, chunk_size=5
        )
        assert_trials_bit_identical(serial_trial, trial)

    def test_unpicklable_factories_survive_fork(self):
        # The real registry closes over model objects via lambdas.
        config = TrialConfig(n_sessions=6, seed=3)
        serial = RandomizedTrial(learned_specs(), config).run()
        parallel = RandomizedTrial(learned_specs(), config).run(workers=2)
        assert_trials_bit_identical(serial, parallel)

    def test_invalid_worker_count_rejected(self):
        trial = RandomizedTrial(classical_specs(), TrialConfig(n_sessions=2))
        with pytest.raises(ValueError, match="workers"):
            trial.run(workers=0)


@pytest.mark.parallel_smoke
class TestParallelSmoke:
    """Cheap CI coverage of the multiprocessing path: 2 workers x 8
    sessions (``pytest -m parallel_smoke``)."""

    def test_pool_matches_serial(self):
        config = TrialConfig(n_sessions=8, seed=1, collect_telemetry=True)
        serial = RandomizedTrial(classical_specs(), config).run()
        pooled = RandomizedTrial(classical_specs(), config).run(workers=2)
        assert_trials_bit_identical(serial, pooled)
        assert pooled.throughput is not None
        assert pooled.throughput.workers == 2

    def test_deploy_and_collect_matches_serial(self):
        algorithms = [BBA(), MpcHm()]
        serial = deploy_and_collect(
            algorithms, 8, seed=2, watch_time_s=60.0
        )
        pooled = deploy_and_collect(
            [BBA(), MpcHm()], 8, seed=2, watch_time_s=60.0, workers=2
        )
        assert len(serial) == len(pooled)
        for a, b in zip(serial, pooled):
            assert a.stream_id == b.stream_id
            assert a.scheme_name == b.scheme_name
            assert a.records == b.records


class TestThroughputReport:
    def test_serial_report_populated(self, serial_trial):
        report = serial_trial.throughput
        assert report is not None
        assert report.mode == "serial"
        assert report.workers == 1
        assert report.n_sessions == 24
        assert report.n_streams == sum(
            len(s.streams) for s in serial_trial.sessions
        )
        assert report.sessions_per_s > 0
        assert report.streams_per_s > 0
        assert len(report.per_worker) == 1
        assert "sessions/s" in report.format()

    def test_parallel_report_accounts_all_work(self):
        config = TrialConfig(n_sessions=12, seed=0)
        trial = RandomizedTrial(classical_specs(), config).run(workers=2)
        report = trial.throughput
        assert report is not None
        assert report.workers == 2
        assert sum(w.sessions for w in report.per_worker) == 12
        assert report.n_streams == sum(len(s.streams) for s in trial.sessions)
        assert all(w.busy_s >= 0 for w in report.per_worker)


class TestChunkPlanning:
    def test_covers_all_sessions_exactly_once(self):
        chunks = plan_chunks(103, workers=4)
        ids = [i for chunk in chunks for i in chunk]
        assert ids == list(range(103))

    def test_explicit_chunk_size(self):
        chunks = plan_chunks(10, workers=2, chunk_size=4)
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_load_balance_grain(self):
        # Several chunks per worker so stragglers even out.
        chunks = plan_chunks(400, workers=4)
        assert len(chunks) >= 4 * 4 - 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            plan_chunks(0, 2)
        with pytest.raises(ValueError):
            plan_chunks(10, 0)
        with pytest.raises(ValueError):
            plan_chunks(10, 2, chunk_size=0)


class TestRunSessionPurity:
    def test_run_session_is_deterministic(self):
        specs = classical_specs()
        config = TrialConfig(n_sessions=4, seed=11, collect_telemetry=True)
        ids = assign_expt_ids(specs, config.seed)
        a = run_session(specs, config, 2, ids)
        b = run_session(specs, config, 2, ids)
        assert a.session.scheme == b.session.scheme
        for ra, rb in zip(a.session.streams, b.session.streams):
            assert ra.records == rb.records
        assert a.consort.arms == b.consort.arms
        assert a.telemetry.video_sent == b.telemetry.video_sent

    def test_run_session_order_independent(self):
        # Simulating session 3 first (as a worker might) does not change
        # what session 1 sees — sessions share no RNG stream.
        specs = classical_specs()
        config = TrialConfig(n_sessions=4, seed=11)
        ids = assign_expt_ids(specs, config.seed)
        algorithms = {spec.name: spec.build() for spec in specs}
        run_session(specs, config, 3, ids, algorithms)
        reordered = run_session(specs, config, 1, ids, algorithms)
        fresh = run_session(specs, config, 1, ids)
        for ra, rb in zip(reordered.session.streams, fresh.session.streams):
            assert ra.records == rb.records

    def test_run_trial_parallel_validates_specs(self):
        with pytest.raises(ValueError, match="at least one"):
            run_trial_parallel([], TrialConfig(n_sessions=2), workers=2)
        dup = classical_specs() + [classical_specs()[0]]
        with pytest.raises(ValueError, match="unique"):
            run_trial_parallel(dup, TrialConfig(n_sessions=2), workers=2)


class TestSeedFolding:
    """Regression tests for the trial-seed bugs: media content and the
    connection loss process used to ignore ``config.seed``, so two trials
    with different seeds replayed identical video and losses."""

    def test_distinct_seeds_draw_distinct_media(self):
        specs = [classical_specs()[0]]  # single arm: assignment identical
        sizes = {}
        for seed in (0, 1):
            config = TrialConfig(n_sessions=2, seed=seed)
            shard = run_session(specs, config, 0)
            sizes[seed] = [
                r.size_bytes
                for stream in shard.session.streams
                for r in stream.records
            ]
        assert sizes[0] and sizes[1]
        assert sizes[0] != sizes[1], (
            "different trial seeds replayed identical video content"
        )

    def test_distinct_seeds_distinct_connection_draws(self):
        # The loss/connection seed must fold the trial seed in.
        from repro.experiment.harness import connection_seed, media_seed

        assert connection_seed(0, 5) != connection_seed(1, 5)
        assert media_seed(0, 5, 0) != media_seed(1, 5, 0)
        rng_a = np.random.default_rng(connection_seed(0, 5))
        rng_b = np.random.default_rng(connection_seed(1, 5))
        assert rng_a.random() != rng_b.random()

    def test_same_seed_still_reproducible(self):
        specs = classical_specs()
        config = TrialConfig(n_sessions=6, seed=4)
        a = RandomizedTrial(specs, config).run()
        b = RandomizedTrial(classical_specs(), config).run()
        assert_trials_bit_identical(a, b)

"""Tests for repro.experiment.presets — trial scale presets."""

import pytest

from repro.experiment.presets import (
    PAPER_SESSIONS,
    bench_trial_config,
    paper_scale_trial_config,
    smoke_trial_config,
)


class TestPresets:
    def test_scales_ordered(self):
        smoke = smoke_trial_config()
        bench = bench_trial_config()
        paper = paper_scale_trial_config()
        assert smoke.n_sessions < bench.n_sessions < paper.n_sessions

    def test_paper_session_count_matches_figA1(self):
        assert PAPER_SESSIONS == 337_170
        assert paper_scale_trial_config().n_sessions == PAPER_SESSIONS

    def test_paper_viewer_time_scale(self):
        config = paper_scale_trial_config()
        assert config.viewer.tail_threshold_s == 2.5 * 3600.0

    def test_smoke_trial_runs_quickly(self):
        from repro.abr.pensieve import ActorCritic
        from repro.core.ttp import TransmissionTimePredictor
        from repro.experiment import RandomizedTrial, primary_experiment_schemes

        specs = primary_experiment_schemes(
            TransmissionTimePredictor(seed=0), ActorCritic(seed=0)
        )
        trial = RandomizedTrial(specs, smoke_trial_config(seed=1)).run()
        assert trial.consort.sessions_randomized == 50
        assert trial.consort.streams_considered > 0

    def test_bench_config_parameterized(self):
        assert bench_trial_config(n_sessions=77).n_sessions == 77

"""Tests for repro.experiment.schemes — the Fig. 5 registry."""

import pytest

from repro.abr.pensieve import ActorCritic
from repro.core.ttp import TransmissionTimePredictor
from repro.emulation import train_fugu_in_emulation
from repro.experiment.schemes import (
    SchemeSpec,
    primary_experiment_schemes,
    scheme_table,
)


@pytest.fixture(scope="module")
def specs():
    return primary_experiment_schemes(
        TransmissionTimePredictor(seed=0), ActorCritic(seed=0)
    )


class TestRegistry:
    def test_five_primary_schemes(self, specs):
        assert [s.name for s in specs] == [
            "bba", "mpc_hm", "robust_mpc_hm", "pensieve", "fugu",
        ]

    def test_factories_build_named_algorithms(self, specs):
        for spec in specs:
            algorithm = spec.build()
            assert algorithm.name == spec.name

    def test_fig5_feature_matrix(self, specs):
        table = scheme_table(specs)
        assert table["bba"]["predictor"] == "n/a"
        assert table["mpc_hm"]["control"] == "classical (MPC)"
        assert table["pensieve"]["how_trained"] == (
            "reinforcement learning in simulation"
        )
        assert table["fugu"]["how_trained"] == "supervised learning in situ"
        assert table["fugu"]["predictor"] == "learned (DNN)"

    def test_ssim_objective_shared_by_mpc_family(self, specs):
        table = scheme_table(specs)
        goal = "+SSIM, -stalls, -dSSIM"
        assert table["mpc_hm"]["optimization_goal"] == goal
        assert table["robust_mpc_hm"]["optimization_goal"] == goal
        assert table["fugu"]["optimization_goal"] == goal
        # Pensieve optimizes bitrate, not SSIM (§3.3).
        assert "bitrate" in table["pensieve"]["optimization_goal"]

    def test_emulation_arm_optional(self):
        specs = primary_experiment_schemes(
            TransmissionTimePredictor(seed=0),
            ActorCritic(seed=0),
            emulation_fugu_predictor=TransmissionTimePredictor(seed=1),
        )
        assert specs[-1].name == "fugu_emulation"
        assert specs[-1].build().name == "fugu_emulation"

    def test_mismatched_factory_name_detected(self):
        from repro.abr.bba import BBA

        spec = SchemeSpec(
            name="not_bba", control="x", predictor="x",
            optimization_goal="x", how_trained="x", factory=BBA,
        )
        with pytest.raises(ValueError, match="built"):
            spec.build()

"""Tests for repro.experiment.watch — viewer behaviour (Fig. 10)."""

import numpy as np
import pytest

from repro.experiment.watch import PAPER_SCALE_VIEWER, ViewerModel
from repro.streaming.session import StreamResult


class TestStreamKinds:
    def test_kind_proportions(self):
        model = ViewerModel(zap_fraction=0.5, abort_fraction=0.2)
        rng = np.random.default_rng(0)
        kinds = [model.sample_stream_kind(rng) for _ in range(4000)]
        assert np.mean([k == "abort" for k in kinds]) == pytest.approx(0.2, abs=0.03)
        assert np.mean([k == "zap" for k in kinds]) == pytest.approx(0.5, abs=0.03)

    def test_watch_time_ranges(self):
        model = ViewerModel()
        rng = np.random.default_rng(1)
        for _ in range(200):
            assert model.sample_watch_time("abort", rng) < 0.3
            assert 0.3 <= model.sample_watch_time("zap", rng) <= model.zap_max_s
            assert model.sample_watch_time("view", rng) > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ViewerModel().sample_watch_time("binge", np.random.default_rng(0))

    def test_view_times_heavy_tailed(self):
        model = ViewerModel()
        rng = np.random.default_rng(2)
        times = [model.sample_watch_time("view", rng) for _ in range(5000)]
        # Mean far above median is the log-normal signature.
        assert np.mean(times) > 1.4 * np.median(times)


class TestQoeTail:
    def make_result(self, stall_ratio=0.0, ssim=16.0):
        result = StreamResult(0, "x", play_time=1000.0 * (1 - stall_ratio),
                              stall_time=1000.0 * stall_ratio)
        # Give it one record so mean_ssim_db is defined.
        from repro.abr.base import ChunkRecord
        from repro.net.tcp import TcpInfo

        info = TcpInfo(10, 0, 0.05, 0.05, 5e6)
        result.records.append(
            ChunkRecord(0, 5, 5e5, ssim, 1.0, info, 0.0)
        )
        return result

    def test_stalls_reduce_continuation(self):
        model = ViewerModel()
        clean = model.continue_probability(self.make_result(0.0))
        stally = model.continue_probability(self.make_result(0.05))
        assert stally < clean

    def test_quality_increases_continuation(self):
        model = ViewerModel()
        low = model.continue_probability(self.make_result(ssim=12.0))
        high = model.continue_probability(self.make_result(ssim=18.0))
        assert high > low

    def test_probability_bounded(self):
        model = ViewerModel()
        assert 0.0 <= model.continue_probability(self.make_result(0.5)) <= 0.97
        assert model.continue_probability(self.make_result(ssim=60.0)) <= 0.97

    def test_hook_inactive_before_threshold(self):
        model = ViewerModel(tail_threshold_s=1000.0)
        hook = model.make_extension_hook(np.random.default_rng(0))
        assert hook(500.0, self.make_result()) == 0.0

    def test_hook_extends_after_threshold(self):
        model = ViewerModel(tail_threshold_s=100.0, tail_continue_base=0.95)
        hook = model.make_extension_hook(np.random.default_rng(0))
        extensions = [hook(200.0, self.make_result()) for _ in range(50)]
        assert any(e > 0 for e in extensions)

    def test_hook_respects_session_cap(self):
        model = ViewerModel(tail_threshold_s=100.0, max_session_s=300.0)
        hook = model.make_extension_hook(np.random.default_rng(0))
        assert hook(300.0, self.make_result()) == 0.0

    def test_better_qoe_means_longer_tails(self):
        # The §5.1 mechanism: run the hook repeatedly and compare expected
        # total extensions for a clean vs a stall-ridden stream.
        model = ViewerModel(tail_threshold_s=0.5)
        rng = np.random.default_rng(3)

        def expected_blocks(result):
            total = 0
            for _ in range(400):
                hook = model.make_extension_hook(rng)
                t = 1.0
                while True:
                    extra = hook(t, result)
                    if extra <= 0:
                        break
                    t += extra
                    total += 1
            return total

        clean = expected_blocks(self.make_result(0.0, ssim=17.0))
        bad = expected_blocks(self.make_result(0.08, ssim=13.0))
        assert clean > bad


class TestScales:
    def test_paper_scale_thresholds(self):
        assert PAPER_SCALE_VIEWER.tail_threshold_s == 2.5 * 3600.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ViewerModel(zap_fraction=1.5)
        with pytest.raises(ValueError):
            ViewerModel(tail_continue_base=1.0)
        with pytest.raises(ValueError):
            ViewerModel(tail_block_s=0.0)

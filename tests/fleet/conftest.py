"""Shared fixtures for the fleet-subsystem tests: cheap classical schemes
and a tiny deployment configuration that runs in well under a second."""

import pytest

from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm
from repro.experiment.presets import smoke_trial_config
from repro.experiment.schemes import SchemeSpec
from repro.fleet import FleetConfig, WorkloadConfig


def classical_specs():
    """Cheap schemes (no trained models) for fast fleet runs."""
    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
    ]


@pytest.fixture()
def specs():
    return classical_specs()


@pytest.fixture()
def tiny_fleet_config():
    """~35 sessions over half an hour of simulated calendar time."""
    return FleetConfig(
        workload=WorkloadConfig(
            days=0.02, sessions_per_hour=80.0, seed=5
        ),
        trial=smoke_trial_config(seed=11),
        chunk_sessions=8,
    )

"""Crash-safety tests (satellite d of PR 4): kill a fleet run mid-flight,
resume from the surviving checkpoint, and demand a *byte-identical*
metrics dump and open-data archive.

Two layers:

* in-process: ``stop_after_sessions`` pauses at chosen cut points (a
  deterministic stand-in for SIGKILL that exercises the identical resume
  path), across worker counts;
* out-of-process: a real ``SIGKILL`` delivered to a ``repro fleet run``
  subprocess at a randomized moment, then ``repro fleet resume``.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.fleet import CheckpointError, FleetConfig, WorkloadConfig, run_fleet
from repro.fleet.checkpoint import (
    CheckpointManager,
    FleetCheckpoint,
    config_fingerprint,
)
from repro.fleet.sinks import FleetSink


def dump_bytes(result):
    return json.dumps(result.to_dump_dict(), sort_keys=True)


class TestCheckpointManager:
    def test_save_load_round_trip(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ckpt.json"))
        assert not manager.exists()
        sink = FleetSink()
        sink.sessions = 7
        checkpoint = FleetCheckpoint(
            fingerprint="abc", next_session_id=7, sink=sink,
            archive_offsets={"video_sent": 123}, cli_args={"days": 1.0},
        )
        manager.save(checkpoint)
        assert manager.exists()
        loaded = manager.load(expected_fingerprint="abc")
        assert loaded.next_session_id == 7
        assert loaded.sink.sessions == 7
        assert loaded.archive_offsets == {"video_sent": 123}
        assert loaded.cli_args == {"days": 1.0}
        assert not loaded.completed

    def test_fingerprint_mismatch_refused(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ckpt.json"))
        manager.save(
            FleetCheckpoint(
                fingerprint="abc", next_session_id=0, sink=FleetSink()
            )
        )
        with pytest.raises(CheckpointError):
            manager.load(expected_fingerprint="different")

    def test_corrupt_checkpoint_detected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            CheckpointManager(str(path)).load()

    def test_missing_checkpoint_raises_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CheckpointManager(str(tmp_path / "absent.json")).load()

    def test_wrong_schema_version_refused(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(CheckpointError):
            CheckpointManager(str(path)).load()

    def test_save_leaves_no_tmp_file(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ckpt.json"))
        manager.save(
            FleetCheckpoint(
                fingerprint="abc", next_session_id=0, sink=FleetSink()
            )
        )
        assert not os.path.exists(str(tmp_path / "ckpt.json.tmp"))

    def test_fingerprint_sensitive_to_every_part(self):
        base = config_fingerprint({"a": 1}, ["x"])
        assert config_fingerprint({"a": 2}, ["x"]) != base
        assert config_fingerprint({"a": 1}, ["y"]) != base
        assert config_fingerprint({"a": 1}, ["x"]) == base


class TestInProcessResume:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        from .conftest import classical_specs

        from repro.experiment.presets import smoke_trial_config

        config = FleetConfig(
            workload=WorkloadConfig(
                days=0.02, sessions_per_hour=80.0, seed=5
            ),
            trial=smoke_trial_config(seed=11),
            chunk_sessions=8,
        )
        archive = tmp_path_factory.mktemp("reference") / "archive"
        result = run_fleet(
            classical_specs(), config, workers=1, archive_dir=str(archive)
        )
        return config, result, archive

    @pytest.mark.parametrize(
        "cut,workers_before,workers_after",
        [(8, 1, 1), (17, 2, 1), (30, 1, 2)],
    )
    def test_pause_resume_byte_identical(
        self, reference, tmp_path, cut, workers_before, workers_after
    ):
        from .conftest import classical_specs

        config, expected, expected_archive = reference
        ckpt = str(tmp_path / "ckpt.json")
        archive = tmp_path / "archive"
        partial = run_fleet(
            classical_specs(), config, workers=workers_before,
            checkpoint_path=ckpt, archive_dir=str(archive),
            stop_after_sessions=cut,
        )
        assert not partial.completed
        resumed = run_fleet(
            classical_specs(), config, workers=workers_after,
            checkpoint_path=ckpt, archive_dir=str(archive), resume=True,
        )
        assert resumed.completed
        assert dump_bytes(resumed) == dump_bytes(expected)
        for name in ("video_sent.csv", "video_acked.csv",
                     "client_buffer.csv"):
            assert (archive / name).read_bytes() == (
                expected_archive / name
            ).read_bytes()

    def test_resume_refused_under_different_config(
        self, reference, tmp_path
    ):
        from dataclasses import replace

        from .conftest import classical_specs

        config, _, _ = reference
        ckpt = str(tmp_path / "ckpt.json")
        run_fleet(
            classical_specs(), config, checkpoint_path=ckpt,
            stop_after_sessions=8,
        )
        changed = replace(
            config, workload=replace(config.workload, seed=999)
        )
        with pytest.raises(CheckpointError):
            run_fleet(
                classical_specs(), changed, checkpoint_path=ckpt,
                resume=True,
            )

    def test_resume_of_completed_run_is_idempotent(
        self, reference, tmp_path
    ):
        from .conftest import classical_specs

        config, expected, _ = reference
        ckpt = str(tmp_path / "ckpt.json")
        first = run_fleet(classical_specs(), config, checkpoint_path=ckpt)
        again = run_fleet(
            classical_specs(), config, checkpoint_path=ckpt, resume=True
        )
        assert again.completed
        assert dump_bytes(again) == dump_bytes(first) == dump_bytes(expected)

    def test_fresh_start_ignores_missing_checkpoint(
        self, reference, tmp_path
    ):
        from .conftest import classical_specs

        config, expected, _ = reference
        result = run_fleet(
            classical_specs(), config,
            checkpoint_path=str(tmp_path / "new.json"), resume=True,
        )
        assert dump_bytes(result) == dump_bytes(expected)


@pytest.mark.parallel_smoke
class TestSigkillResume:
    """A real kill -9 delivered to the CLI mid-run, then CLI resume."""

    CLI = [
        "fleet", "run",
        "--days", "0.02", "--rate", "80", "--seed", "5",
        "--trial-seed", "11", "--chunk-size", "4",
    ]

    def _run_cli(self, args, cwd):
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            cwd=cwd, env=env, capture_output=True, text=True,
        )

    def test_sigkill_then_resume_byte_identical(self, tmp_path):
        # Reference: one uninterrupted CLI run.
        ref_dir = tmp_path / "ref"
        ref_dir.mkdir()
        completed = self._run_cli(
            self.CLI + [
                "--archive-dir", str(ref_dir / "archive"),
                "--out", str(ref_dir / "dump.json"),
            ],
            cwd=str(tmp_path),
        )
        assert completed.returncode == 0, completed.stderr

        # Victim: same run with a checkpoint, killed without warning.
        victim_dir = tmp_path / "victim"
        victim_dir.mkdir()
        ckpt = str(victim_dir / "ckpt.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.getcwd(), "src") + os.pathsep + (
            env.get("PYTHONPATH", "")
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", *self.CLI,
                "--checkpoint", ckpt,
                "--archive-dir", str(victim_dir / "archive"),
            ],
            cwd=str(tmp_path), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # Let it commit a few chunks, then kill -9 mid-run.  The trigger is
        # state-based (checkpointed progress), not a fixed sleep, so the
        # kill lands mid-run on fast and slow machines alike; checkpoint
        # saves are atomic (tmp + os.replace), so reads see whole files.
        deadline = time.time() + 30.0
        while time.time() < deadline:
            try:
                with open(ckpt) as f:
                    snapshot = json.load(f)
            except (FileNotFoundError, ValueError):
                snapshot = None
            if snapshot is not None and snapshot["next_session_id"] >= 8:
                break
            time.sleep(0.02)
        process.kill()
        process.wait(timeout=30)
        assert os.path.exists(ckpt), "run was killed before any checkpoint"

        checkpoint = json.loads(open(ckpt).read())
        assert not checkpoint["completed"]
        assert checkpoint["next_session_id"] > 0

        # Resume from the surviving checkpoint via the CLI.
        resumed = self._run_cli(
            [
                "fleet", "resume", "--checkpoint", ckpt, "--workers", "2",
                "--out", str(victim_dir / "dump.json"),
            ],
            cwd=str(tmp_path),
        )
        assert resumed.returncode == 0, resumed.stderr

        assert (victim_dir / "dump.json").read_bytes() == (
            ref_dir / "dump.json"
        ).read_bytes()
        for name in ("video_sent.csv", "video_acked.csv",
                     "client_buffer.csv"):
            assert (victim_dir / "archive" / name).read_bytes() == (
                ref_dir / "archive" / name
            ).read_bytes()

"""The crash-point runtime, the power-loss simulator, and the crash-matrix
harness (``repro crash-matrix``).

Three layers, bottom-up: in-process unit tests for the numbered
crash-point runtime (arming, logging, the abort latch), crash-state
enumeration semantics of :class:`PowerLossSimulator`, and a small
subprocess round trip — the reference run's point log is deterministic,
and killing a real fleet run at a pre-checkpoint and a post-checkpoint
point both recover byte-identically.  The exhaustive all-points sweep
runs in CI (``repro crash-matrix`` on the retrain and edge scenarios).
"""

import os

import pytest

from repro import crashpoints
from repro.crashpoints import (
    CRASH_EXIT_CODE,
    CrashMatrixError,
    PowerLossSimulator,
    crashpoint,
    format_report,
    run_crash_matrix,
)


@pytest.fixture(autouse=True)
def _clean_crashpoint_state(monkeypatch):
    """Never let armed state or env leak between tests."""
    monkeypatch.delenv(crashpoints.ENV_CRASHPOINT, raising=False)
    monkeypatch.delenv(crashpoints.ENV_CRASHPOINT_LOG, raising=False)
    crashpoints.reset()
    yield
    crashpoints.reset()


class TestCrashpointRuntime:
    def test_disarmed_is_a_noop(self):
        crashpoint("anything")
        crashpoint("anything-else")
        assert crashpoints.hits() == 0

    def test_log_enumerates_points_in_order(self, tmp_path):
        log = tmp_path / "points.log"
        crashpoints.configure(target=None, log_path=str(log))
        crashpoint("alpha")
        crashpoint("beta")
        crashpoint("alpha")
        assert crashpoints.hits() == 3
        assert log.read_text() == "1 alpha\n2 beta\n3 alpha\n"

    def test_abort_fires_exactly_at_target(self, monkeypatch):
        aborted = []
        monkeypatch.setattr(crashpoints, "_abort", aborted.append)
        crashpoints.configure(target=2)
        crashpoint("one")
        assert aborted == []
        crashpoint("two")
        assert aborted == [CRASH_EXIT_CODE]
        crashpoint("three")  # past the target: no re-fire
        assert aborted == [CRASH_EXIT_CODE]

    def test_env_arming_is_read_once(self, monkeypatch, tmp_path):
        log = tmp_path / "env.log"
        monkeypatch.setenv(crashpoints.ENV_CRASHPOINT_LOG, str(log))
        crashpoints.reset()
        crashpoint("seen")
        monkeypatch.delenv(crashpoints.ENV_CRASHPOINT_LOG)
        crashpoint("still-seen")  # state was latched at first use
        assert log.read_text() == "1 seen\n2 still-seen\n"

    @pytest.mark.parametrize("raw", ["zero", "0", "-3"])
    def test_bad_env_values_raise(self, monkeypatch, raw):
        monkeypatch.setenv(crashpoints.ENV_CRASHPOINT, raw)
        crashpoints.reset()
        with pytest.raises(ValueError):
            crashpoint("never")


class TestPowerLossSimulator:
    def _publish(self, work, fsync=True):
        tmp = work / "state.txt.tmp"
        with open(tmp, "w") as f:
            f.write("new")
            if fsync:
                f.flush()
                os.fsync(f.fileno())
        os.replace(tmp, work / "state.txt")

    def test_correct_protocol_never_tears(self, tmp_path):
        (tmp_path / "state.txt").write_text("old")
        sim = PowerLossSimulator(tmp_path)
        with sim:
            self._publish(tmp_path, fsync=True)
        # open, fsync, replace -> 3 ops, 4 states.
        assert sim.n_states() == 4
        for _, state in sim.crash_states():
            assert state["state.txt"] in (b"old", b"new")

    def test_unfsynced_publish_has_torn_state(self, tmp_path):
        (tmp_path / "state.txt").write_text("old")
        sim = PowerLossSimulator(tmp_path)
        with sim:
            self._publish(tmp_path, fsync=False)
        torn = [
            prefix
            for prefix, state in sim.crash_states()
            if state["state.txt"] == b""
        ]
        # The rename metadata persisted but the data never got a sync.
        assert torn, "expected the rename to publish an empty file"

    def test_truncate_on_open_loses_old_content(self, tmp_path):
        (tmp_path / "a.txt").write_text("old")
        sim = PowerLossSimulator(tmp_path)
        with sim:
            with open(tmp_path / "a.txt", "w") as f:
                f.write("new")
        # One op (the open); the post-open state is the truncated file.
        assert sim.durable_state(1)["a.txt"] == b""

    def test_materialize_round_trip(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        (work / "keep.txt").write_text("kept")
        sim = PowerLossSimulator(work)
        with sim:
            self._publish(work, fsync=True)
        dest = sim.materialize(sim.durable_state(3), tmp_path / "survivor")
        assert (dest / "keep.txt").read_text() == "kept"
        assert (dest / "state.txt").read_text() == "new"
        assert not (dest / "state.txt.tmp").exists()


@pytest.mark.parallel_smoke
class TestCrashMatrixSubprocess:
    """Small real-subprocess round trips; the full sweep lives in CI."""

    MINI = dict(mode="run", days=0.02, rate=200.0, chunk_size=6)

    def test_reference_point_log_is_deterministic(self, tmp_path):
        from repro.crashpoints import (
            ENV_CRASHPOINT_LOG,
            _fleet_args,
            _parse_point_log,
            _run_cli,
            _subprocess_env,
        )
        import sys

        logs = []
        for name in ("one", "two"):
            base = tmp_path / name
            base.mkdir()
            log = base / "points.log"
            proc = _run_cli(
                _fleet_args("run", base, 0.02, 200.0, 6),
                _subprocess_env({ENV_CRASHPOINT_LOG: str(log)}),
                sys.executable,
            )
            assert proc.returncode == 0, proc.stderr.decode()[-500:]
            labels = _parse_point_log(log)
            assert labels, "reference run registered no crash points"
            logs.append(labels)
        assert logs[0] == logs[1]

    def test_kill_and_resume_both_recovery_paths(self, tmp_path):
        # Point 2 precedes the first durable checkpoint (fresh-start
        # recovery); a point near the end resumes from a checkpoint.
        report = run_crash_matrix(tmp_path, points=[2, 5], **self.MINI)
        assert [o.index for o in report.outcomes] == [2, 5]
        assert all(o.crashed for o in report.outcomes)
        assert all(o.resumed for o in report.outcomes)
        assert all(o.identical for o in report.outcomes)
        assert report.ok
        text = format_report(report)
        assert "PASS" in text and "mode=run" in text

    def test_out_of_range_point_is_an_error(self, tmp_path):
        with pytest.raises(CrashMatrixError, match="out of range"):
            run_crash_matrix(tmp_path, points=[10_000], **self.MINI)

"""Continual in-situ retraining: differential and crash-safety tests.

Three contracts from the PR's acceptance criteria:

* **differential** — feeding :class:`~repro.core.train.DailyRetrainer` the
  archive day-by-day (a batch replay of §4.3) produces *exactly* the
  ``state_dict`` the continual service committed for every generation — no
  tolerance, since both sides are pure functions of the archive bytes;
* **byte-identity** — the metrics dump, the model registry (every file),
  and the archive are byte-identical across worker counts, executors, and
  pause/resume cut points;
* **registry invariants** — lineage hash chaining, hash-verified loads,
  truncation of crash orphans, and the fresh-start policy.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.train import DailyRetrainer
from repro.core.ttp import TransmissionTimePredictor, TtpConfig
from repro.data.archive import (
    read_telemetry_slice,
    reconstruct_training_streams,
)
from repro.experiment.presets import smoke_trial_config
from repro.fleet import (
    FleetConfig,
    FleetSink,
    ModelRegistry,
    RegistryError,
    RetrainConfig,
    WorkloadConfig,
    run_fleet_retrain,
)
from repro.fleet.checkpoint import (
    CheckpointManager,
    FleetCheckpoint,
    config_fingerprint,
)

from .conftest import classical_specs


def retrain_config():
    """Tiny but real continual policy: 2 generations in a few seconds."""
    return RetrainConfig(
        ttp=TtpConfig(horizon=2),
        window_days=3,
        recency_decay=0.9,
        epochs_per_day=2,
        seed=0,
    )


def fleet_config():
    """Just over one simulated day, so two day boundaries close."""
    return FleetConfig(
        workload=WorkloadConfig(
            days=1.15, sessions_per_hour=3.0, seed=5
        ),
        trial=smoke_trial_config(seed=11),
        chunk_sessions=8,
    )


def dump_bytes(result):
    return json.dumps(result.to_dump_dict(), sort_keys=True)


def registry_bytes(directory):
    """Every registry file, byte-exact (the replayability surface)."""
    return {
        path.name: path.read_bytes()
        for path in sorted(Path(directory).glob("*.json"))
    }


def canonical(state_dict):
    return json.dumps(state_dict, sort_keys=True)


class TestRetrainConfig:
    def test_round_trip(self):
        config = RetrainConfig(
            ttp=TtpConfig(horizon=3), window_days=5, recency_decay=0.8,
            epochs_per_day=4, seed=9, arm_prefix="ttp",
        )
        assert RetrainConfig.from_dict(config.to_dict()) == config

    def test_arm_naming(self):
        assert retrain_config().arm_name(7) == "fugu@g007"
        assert RetrainConfig(arm_prefix="ttp").arm_name(12) == "ttp@g012"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_days": 0},
            {"recency_decay": 0.0},
            {"recency_decay": 1.5},
            {"epochs_per_day": 0},
            {"arm_prefix": ""},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetrainConfig(**kwargs)


class TestModelRegistry:
    def _state(self, seed=0):
        return TransmissionTimePredictor(
            TtpConfig(horizon=1), seed=seed
        ).state_dict()

    def _commit(self, registry, day, state=None):
        return registry.commit(
            day=day,
            arm=f"fugu@g{len(registry) + 1:03d}",
            state=self._state() if state is None else state,
            window_days=[day],
            n_streams_day=3,
            n_streams_window=3,
            evaluation=[],
        )

    def test_lineage_chains_and_reloads(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        first = self._commit(registry, day=1)
        second = self._commit(registry, day=2, state=self._state(seed=1))
        assert first.parent_sha256 is None
        assert second.parent_sha256 == first.sha256

        reopened = ModelRegistry(tmp_path)
        assert reopened.generations == registry.generations
        assert canonical(
            reopened.load_predictor(1).state_dict()
        ) == canonical(self._state())

    def test_commits_are_replay_identical(self, tmp_path):
        a = ModelRegistry(tmp_path / "a")
        b = ModelRegistry(tmp_path / "b")
        self._commit(a, day=1)
        self._commit(b, day=1)
        assert registry_bytes(a.directory) == registry_bytes(b.directory)

    def test_tampered_generation_detected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        entry = self._commit(registry, day=1)
        path = tmp_path / entry.filename
        path.write_bytes(path.read_bytes().replace(b'"day": 1', b'"day": 2'))
        with pytest.raises(RegistryError):
            registry.load_payload(1)

    def test_truncate_deletes_crash_orphans(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        self._commit(registry, day=1)
        self._commit(registry, day=2)
        # A crash between gen-file write and manifest write leaves an
        # orphan beyond the durable count.
        (tmp_path / "gen-0003.json").write_text("{}")
        registry.truncate(1)
        assert len(registry) == 1
        assert sorted(p.name for p in tmp_path.glob("gen-*.json")) == [
            "gen-0001.json"
        ]
        assert len(ModelRegistry(tmp_path)) == 1

    def test_truncate_beyond_manifest_refused(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        self._commit(registry, day=1)
        with pytest.raises(RegistryError):
            registry.truncate(2)

    def test_wrong_schema_version_refused(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"schema_version": 999, "generations": []})
        )
        with pytest.raises(RegistryError):
            ModelRegistry(tmp_path)

    def test_empty_registry_has_no_payload(self, tmp_path):
        with pytest.raises(RegistryError):
            ModelRegistry(tmp_path).load_payload()

    def test_format_table_shows_lineage(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        self._commit(registry, day=1)
        self._commit(registry, day=2)
        table = registry.format_table()
        assert "(genesis)" in table
        assert "fugu@g001" in table
        assert "fugu@g002" in table
        assert "2 generation(s)" in table


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted continual run; every other test compares to it."""
    root = tmp_path_factory.mktemp("retrain_reference")
    result = run_fleet_retrain(
        classical_specs(),
        fleet_config(),
        retrain_config(),
        archive_dir=root / "archive",
        registry_dir=root / "registry",
        workers=1,
        checkpoint_path=str(root / "ckpt.json"),
    )
    assert result.completed
    return root, result


class TestContinualService:
    def test_generations_enroll_as_arms(self, reference):
        root, result = reference
        registry = ModelRegistry(root / "registry")
        assert len(registry) == 2
        assert result.scheme_names == [
            "bba", "mpc_hm", "fugu@g001", "fugu@g002"
        ]
        for generation, entry in enumerate(registry.generations, start=1):
            assert entry.generation == generation
            assert entry.arm == f"fugu@g{generation:03d}"
        # Day-2 sessions were served by generation 1: its arm has streams.
        sink = result.sink
        assert sink.schemes["fugu@g001"].n_streams > 0

    def test_generation_payload_is_self_describing(self, reference):
        root, _ = reference
        registry = ModelRegistry(root / "registry")
        for entry in registry.generations:
            payload = registry.load_payload(entry.generation)
            assert payload["window_days"][-1] == entry.day
            assert payload["n_streams_day"] > 0
            assert payload["eval"], "committed without eval metrics"
            for record in payload["eval"]:
                assert record["n_examples"] > 0

    def test_batch_daily_replay_matches_registry_exactly(self, reference):
        """The differential test: DailyRetrainer fed the archive day by
        day reproduces every committed ``state_dict`` bit for bit."""
        root, _ = reference
        registry = ModelRegistry(root / "registry")
        state = json.loads((root / "ckpt.json").read_text())
        slices = state["extra"]["retrain"]["window"]
        assert len(slices) == len(registry) == 2

        retrain = retrain_config()
        predictor = TransmissionTimePredictor(
            retrain.ttp, seed=retrain.seed
        )
        retrainer = DailyRetrainer(
            predictor,
            window_days=retrain.window_days,
            recency_decay=retrain.recency_decay,
            epochs_per_day=retrain.epochs_per_day,
            seed=retrain.seed,
        )
        for entry, (day, start, end) in zip(registry.generations, slices):
            streams = reconstruct_training_streams(
                read_telemetry_slice(root / "archive", start, end)
            )
            retrainer.add_day(streams)
            assert retrainer.current_day == day == entry.day
            assert retrainer.window_datasets() is not None
            # The service's day-close order: calibrate on the full
            # window, then retrain (warm-started, recency-weighted).
            predictor.calibrate_tail(
                [
                    stream
                    for _, day_streams in retrainer.window_state()
                    for stream in day_streams
                ]
            )
            retrainer.retrain()
            committed = registry.load_payload(entry.generation)
            assert canonical(predictor.state_dict()) == canonical(
                committed["state_dict"]
            )
            # And the registry loader round-trips it bitwise.
            assert canonical(
                registry.load_predictor(entry.generation).state_dict()
            ) == canonical(committed["state_dict"])


class TestByteIdentity:
    @pytest.mark.parametrize(
        "cut,workers_before,workers_after",
        [(10, 1, 1), (40, 2, 1), (80, 1, 2)],
    )
    def test_pause_resume_byte_identical(
        self, reference, tmp_path, cut, workers_before, workers_after
    ):
        root, expected = reference
        ckpt = str(tmp_path / "ckpt.json")
        partial = run_fleet_retrain(
            classical_specs(), fleet_config(), retrain_config(),
            archive_dir=tmp_path / "archive",
            registry_dir=tmp_path / "registry",
            workers=workers_before, checkpoint_path=ckpt,
            stop_after_sessions=cut,
        )
        assert not partial.completed
        resumed = run_fleet_retrain(
            classical_specs(), fleet_config(), retrain_config(),
            archive_dir=tmp_path / "archive",
            registry_dir=tmp_path / "registry",
            workers=workers_after, checkpoint_path=ckpt, resume=True,
        )
        assert resumed.completed
        assert dump_bytes(resumed) == dump_bytes(expected)
        assert registry_bytes(tmp_path / "registry") == registry_bytes(
            root / "registry"
        )
        for name in ("video_sent.csv", "video_acked.csv",
                     "client_buffer.csv"):
            assert (tmp_path / "archive" / name).read_bytes() == (
                root / "archive" / name
            ).read_bytes()

    def test_worker_count_invariant(self, reference, tmp_path):
        root, expected = reference
        result = run_fleet_retrain(
            classical_specs(), fleet_config(), retrain_config(),
            archive_dir=tmp_path / "archive",
            registry_dir=tmp_path / "registry",
            workers=2,
        )
        assert dump_bytes(result) == dump_bytes(expected)
        assert registry_bytes(tmp_path / "registry") == registry_bytes(
            root / "registry"
        )

    def test_executor_invariant(self, reference, tmp_path):
        root, expected = reference
        result = run_fleet_retrain(
            classical_specs(),
            replace(fleet_config(), executor="batch"),
            retrain_config(),
            archive_dir=tmp_path / "archive",
            registry_dir=tmp_path / "registry",
        )
        assert dump_bytes(result) == dump_bytes(expected)
        assert registry_bytes(tmp_path / "registry") == registry_bytes(
            root / "registry"
        )


class TestGuards:
    def test_nonempty_registry_requires_resume(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.commit(
            day=1, arm="fugu@g001", state={}, window_days=[1],
            n_streams_day=1, n_streams_window=1, evaluation=[],
        )
        with pytest.raises(RegistryError):
            run_fleet_retrain(
                classical_specs(), fleet_config(), retrain_config(),
                archive_dir=tmp_path / "archive",
                registry_dir=tmp_path / "registry",
            )

    def test_resume_without_checkpoint_wipes_crash_leftovers(
        self, tmp_path
    ):
        # A crash before the first checkpoint may leave registry files;
        # resume=True with no checkpoint on disk must start fresh.
        registry = ModelRegistry(tmp_path / "registry")
        registry.commit(
            day=1, arm="fugu@g001", state={}, window_days=[1],
            n_streams_day=1, n_streams_window=1, evaluation=[],
        )
        partial = run_fleet_retrain(
            classical_specs(), fleet_config(), retrain_config(),
            archive_dir=tmp_path / "archive",
            registry_dir=tmp_path / "registry",
            checkpoint_path=str(tmp_path / "ckpt.json"), resume=True,
            stop_after_sessions=5,
        )
        assert not partial.completed
        assert len(ModelRegistry(tmp_path / "registry")) == 0

    def test_base_names_must_not_collide_with_arms(self, tmp_path):
        specs = classical_specs()
        clash = replace(specs[0], name="fugu@g001")
        with pytest.raises(ValueError):
            run_fleet_retrain(
                [clash, specs[1]], fleet_config(), retrain_config(),
                archive_dir=tmp_path / "archive",
                registry_dir=tmp_path / "registry",
            )

    def test_plain_fleet_checkpoint_refused(self, tmp_path):
        # A checkpoint written by `repro fleet run` (no retrain state)
        # must not silently restart the learning loop from scratch.
        specs = classical_specs()
        fingerprint = config_fingerprint(
            fleet_config().fingerprint(specs), retrain_config().to_dict()
        )
        ckpt = str(tmp_path / "ckpt.json")
        CheckpointManager(ckpt).save(
            FleetCheckpoint(
                fingerprint=fingerprint, next_session_id=0,
                sink=FleetSink(),
            )
        )
        with pytest.raises(RegistryError):
            run_fleet_retrain(
                specs, fleet_config(), retrain_config(),
                archive_dir=tmp_path / "archive",
                registry_dir=tmp_path / "registry",
                checkpoint_path=ckpt, resume=True,
            )

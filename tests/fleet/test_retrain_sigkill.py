"""A real ``kill -9`` delivered to ``repro fleet retrain`` *mid-retrain
era* — after at least one generation is committed but before the run
finishes — then a CLI resume at a different worker count must reproduce
the uninterrupted run's dump, registry, and archive byte for byte.

The kill trigger is state-based: the victim's checkpoint is polled until
``extra["retrain"]["generations"] >= 1``, so the signal lands after the
first generation has enrolled (the window where learner state, registry,
and fleet state must all be rolled back consistently) on fast and slow
machines alike.
"""

import json
import os
import subprocess
import sys
import time

import pytest


@pytest.mark.parallel_smoke
class TestRetrainSigkillResume:
    CLI = [
        "fleet", "retrain",
        "--days", "1.15", "--rate", "3", "--seed", "5",
        "--trial-seed", "11", "--chunk-size", "4",
        "--window-days", "3", "--recency-decay", "0.9",
        "--epochs-per-day", "2", "--ttp-horizon", "2",
    ]

    def _env(self):
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _run_cli(self, args, cwd):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            cwd=cwd, env=self._env(), capture_output=True, text=True,
        )

    def test_sigkill_after_first_generation_then_resume(self, tmp_path):
        # Reference: one uninterrupted CLI run.
        ref_dir = tmp_path / "ref"
        ref_dir.mkdir()
        completed = self._run_cli(
            self.CLI + [
                "--archive-dir", str(ref_dir / "archive"),
                "--registry", str(ref_dir / "registry"),
                "--out", str(ref_dir / "dump.json"),
            ],
            cwd=str(tmp_path),
        )
        assert completed.returncode == 0, completed.stderr
        ref_manifest = json.loads(
            (ref_dir / "registry" / "manifest.json").read_text()
        )
        assert len(ref_manifest["generations"]) >= 2

        # Victim: same run with a checkpoint, killed without warning once
        # the first generation is durably committed.
        victim_dir = tmp_path / "victim"
        victim_dir.mkdir()
        ckpt = str(victim_dir / "ckpt.json")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", *self.CLI,
             "--checkpoint", ckpt,
             "--archive-dir", str(victim_dir / "archive"),
             "--registry", str(victim_dir / "registry")],
            cwd=str(tmp_path), env=self._env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.time() + 60.0
        generations = 0
        while time.time() < deadline:
            if process.poll() is not None:
                break
            try:
                with open(ckpt) as f:
                    snapshot = json.load(f)
            except (FileNotFoundError, ValueError):
                snapshot = None
            if snapshot is not None:
                generations = snapshot["extra"]["retrain"]["generations"]
                if generations >= 1 and not snapshot["completed"]:
                    break
            time.sleep(0.02)
        process.kill()
        process.wait(timeout=30)
        assert os.path.exists(ckpt), "killed before any checkpoint"
        assert generations >= 1, (
            "run finished before the kill could land mid-era"
        )

        checkpoint = json.loads(open(ckpt).read())
        assert not checkpoint["completed"]

        # Resume via the CLI (mode round-trips through the checkpoint's
        # stored cli_args) at a different worker count.
        resumed = self._run_cli(
            ["fleet", "resume", "--checkpoint", ckpt, "--workers", "2",
             "--out", str(victim_dir / "dump.json")],
            cwd=str(tmp_path),
        )
        assert resumed.returncode == 0, resumed.stderr

        assert (victim_dir / "dump.json").read_bytes() == (
            ref_dir / "dump.json"
        ).read_bytes()
        victim_registry = sorted(
            (victim_dir / "registry").glob("*.json")
        )
        ref_registry = sorted((ref_dir / "registry").glob("*.json"))
        assert [p.name for p in victim_registry] == [
            p.name for p in ref_registry
        ]
        for victim_file, ref_file in zip(victim_registry, ref_registry):
            assert victim_file.read_bytes() == ref_file.read_bytes()
        for name in ("video_sent.csv", "video_acked.csv",
                     "client_buffer.csv"):
            assert (victim_dir / "archive" / name).read_bytes() == (
                ref_dir / "archive" / name
            ).read_bytes()

"""Tests for repro.fleet.runner — the deployment driver.

Acceptance bar (ISSUE 4): the canonical metrics dump is *byte-identical*
at any worker count and any chunk size, and a fleet run streaming the
open-data archive produces the same CSV bytes serially and in parallel.
"""

import json
import os

import pytest

from repro.fleet import FleetConfig, WorkloadConfig, run_fleet
from repro.fleet.checkpoint import CheckpointManager
from repro.fleet.runner import format_sink_table


def dump_bytes(result):
    return json.dumps(result.to_dump_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def reference():
    """One serial reference run, shared across the byte-identity and
    accounting tests (the config matches ``tiny_fleet_config``)."""
    from repro.experiment.presets import smoke_trial_config

    from .conftest import classical_specs

    config = FleetConfig(
        workload=WorkloadConfig(days=0.02, sessions_per_hour=80.0, seed=5),
        trial=smoke_trial_config(seed=11),
        chunk_sessions=8,
    )
    return run_fleet(classical_specs(), config, workers=1)


class TestValidation:
    def test_rejects_empty_specs(self, tiny_fleet_config):
        with pytest.raises(ValueError):
            run_fleet([], tiny_fleet_config)

    def test_rejects_duplicate_scheme_names(self, specs, tiny_fleet_config):
        with pytest.raises(ValueError):
            run_fleet(specs + [specs[0]], tiny_fleet_config)

    def test_rejects_bad_workers(self, specs, tiny_fleet_config):
        with pytest.raises(ValueError):
            run_fleet(specs, tiny_fleet_config, workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            FleetConfig(chunk_sessions=0)

    def test_rejects_bad_stop_after(self, specs, tiny_fleet_config):
        with pytest.raises(ValueError):
            run_fleet(specs, tiny_fleet_config, stop_after_sessions=0)


class TestByteIdentity:
    def test_parallel_matches_serial(self, specs, tiny_fleet_config, reference):
        parallel = run_fleet(specs, tiny_fleet_config, workers=3)
        assert dump_bytes(reference) == dump_bytes(parallel)
        assert reference.completed and parallel.completed

    def test_chunk_size_is_irrelevant(
        self, specs, tiny_fleet_config, reference
    ):
        from dataclasses import replace

        b = run_fleet(
            specs, replace(tiny_fleet_config, chunk_sessions=3), workers=2
        )
        assert dump_bytes(reference) == dump_bytes(b)

    def test_archive_identical_serial_vs_parallel(
        self, specs, tiny_fleet_config, tmp_path
    ):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        run_fleet(specs, tiny_fleet_config, workers=1,
                  archive_dir=str(serial_dir))
        run_fleet(specs, tiny_fleet_config, workers=2,
                  archive_dir=str(parallel_dir))
        for name in ("video_sent.csv", "video_acked.csv",
                     "client_buffer.csv"):
            assert (serial_dir / name).read_bytes() == (
                parallel_dir / name
            ).read_bytes()
            assert (serial_dir / name).stat().st_size > 0

    def test_dump_file_round_trip(self, reference, tmp_path):
        result = reference
        path = result.dump(str(tmp_path / "dump.json"))
        with open(path) as f:
            data = json.load(f)
        assert data["schema_version"] == 1
        assert data["completed"] is True
        assert sorted(data["summaries"]) == sorted(result.scheme_names)
        from repro.fleet import FleetSink

        restored = FleetSink.from_dict(data["sink"])
        assert json.dumps(restored.to_dict(), sort_keys=True) == json.dumps(
            result.sink.to_dict(), sort_keys=True
        )


class TestAccounting:
    def test_sessions_match_workload(self, tiny_fleet_config, reference):
        from repro.fleet import WorkloadGenerator

        expected = WorkloadGenerator(tiny_fleet_config.workload).count()
        result = reference
        assert result.sink.sessions == expected
        assert result.next_session_id == expected
        assert sum(result.sink.arrivals_by_hour) == expected
        assert sum(result.sink.sessions_by_day.values()) == expected

    def test_consort_accounting_consistent(self, reference):
        result = reference
        total_assigned = 0
        for name, scheme in result.sink.schemes.items():
            excluded = (
                scheme.did_not_begin
                + scheme.watch_time_under_4s
                + scheme.slow_video_decoder
            )
            assert scheme.n_streams == scheme.streams_assigned - excluded
            total_assigned += scheme.streams_assigned
        assert total_assigned == result.sink.streams

    def test_summaries_and_table(self, reference):
        result = reference
        rows = result.summaries()
        assert [r.scheme for r in rows] == sorted(result.scheme_names)
        table = result.format_table()
        assert table == format_sink_table(result.sink)
        for name in result.scheme_names:
            assert name in table

    def test_throughput_reported(self, specs, tiny_fleet_config):
        result = run_fleet(specs, tiny_fleet_config, workers=2)
        throughput = result.throughput
        assert throughput is not None
        assert throughput.sessions == result.sink.sessions
        assert throughput.commits > 0
        assert "sessions/s" in throughput.format()

    def test_on_commit_hook_sees_monotone_progress(
        self, specs, tiny_fleet_config
    ):
        seen = []
        run_fleet(
            specs, tiny_fleet_config,
            on_commit=lambda next_id, sink: seen.append(next_id),
        )
        assert seen == sorted(seen)
        assert len(seen) > 1


class TestPause:
    def test_stop_after_sessions_pauses(
        self, specs, tiny_fleet_config, tmp_path
    ):
        ckpt = str(tmp_path / "ckpt.json")
        result = run_fleet(
            specs, tiny_fleet_config, checkpoint_path=ckpt,
            stop_after_sessions=10,
        )
        assert not result.completed
        assert result.next_session_id >= 10
        checkpoint = CheckpointManager(ckpt).load()
        assert not checkpoint.completed
        assert checkpoint.next_session_id == result.next_session_id

"""Property tests for the fleet sinks (satellite c of PR 4).

Two families of properties:

* **Exactness** — sink merging is associative and permutation-invariant
  *bit for bit*: any grouping of observations into sub-sinks, merged in any
  order, serializes to the identical canonical JSON.  This is the property
  that licenses "byte-identical at any worker count / kill point".
* **Fidelity** — the streaming sink's summary statistics agree with the
  exact list-based statistics within the documented tolerances (point
  estimates ~1e-12 relative; normal-approximation CIs match their
  closed-form list-based counterparts to ~1e-9).
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.abr.base import ChunkRecord
from repro.analysis.stats import weighted_mean, weighted_mean_ci
from repro.fleet.sinks import (
    ExactSum,
    StreamingMoments,
    StreamingSchemeSink,
    WeightedMoments,
)
from repro.net.tcp import TcpInfo
from repro.streaming.session import StreamResult

# Finite doubles across many magnitudes (denormals included via min side).
finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-1e12, max_value=1e12,
)

float_lists = st.lists(finite_floats, min_size=0, max_size=40)


def chunkings(n, rng):
    """A random partition of range(n) into consecutive chunks."""
    bounds = sorted(rng.choice(n + 1, size=rng.integers(0, 4), replace=True))
    edges = [0] + [int(b) for b in bounds] + [n]
    return [
        (edges[i], edges[i + 1])
        for i in range(len(edges) - 1)
        if edges[i] < edges[i + 1]
    ]


class TestExactSumProperties:
    @given(values=float_lists, seed=st.integers(0, 2**16))
    def test_any_grouping_and_order_is_bit_identical(self, values, seed):
        rng = np.random.default_rng(seed)

        reference = ExactSum()
        for v in values:
            reference.add(v)

        # Random permutation, random chunking, random merge order.
        order = rng.permutation(len(values))
        permuted = [values[i] for i in order]
        parts = []
        for lo, hi in chunkings(len(permuted), rng):
            part = ExactSum()
            for v in permuted[lo:hi]:
                part.add(v)
            parts.append(part)
        rng.shuffle(parts)
        merged = ExactSum()
        for part in parts:
            merged.merge(part)

        assert merged == reference
        assert merged.to_dict() == reference.to_dict()

    @given(values=float_lists)
    def test_serialization_round_trip_exact(self, values):
        s = ExactSum()
        for v in values:
            s.add(v)
        assert ExactSum.from_dict(json.loads(json.dumps(s.to_dict()))) == s

    @given(values=st.lists(finite_floats, min_size=1, max_size=40))
    def test_value_at_least_as_accurate_as_float_sum(self, values):
        s = ExactSum()
        for v in values:
            s.add(v)
        exact = s.fraction()
        naive = 0.0
        for v in values:
            naive += v
        # The exact sum's rounding error is bounded by the naive sum's.
        from fractions import Fraction

        assert abs(Fraction(s.value()) - exact) <= abs(Fraction(naive) - exact)


class TestMomentsProperties:
    @given(values=st.lists(finite_floats, min_size=2, max_size=40))
    def test_streaming_moments_match_numpy(self, values):
        m = StreamingMoments()
        for v in values:
            m.observe(v)
        assert m.mean() == pytest.approx(
            float(np.mean(values)), rel=1e-9, abs=1e-9
        )
        # Exact reference: np.std's two-pass float64 computation loses up
        # to ~4e-6 relative to catastrophic cancellation when the spread is
        # tiny against the magnitude (e.g. three values near 7.3e11 spread
        # by 0.03) — the streaming sink's exact-rational moments do not, so
        # the reference must be computed in rational arithmetic too.
        from fractions import Fraction

        fr = [Fraction(v) for v in values]
        n = len(fr)
        fmean = sum(fr) / n
        var = sum((x - fmean) ** 2 for x in fr) / (n - 1)
        se = math.sqrt(float(var / n))
        assert m.standard_error() == pytest.approx(se, rel=1e-12, abs=1e-12)

    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                st.floats(min_value=1e-3, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
            ),
            min_size=2,
            max_size=40,
        )
    )
    def test_weighted_moments_match_list_formula(self, data):
        values = np.array([v for v, _ in data])
        weights = np.array([w for _, w in data])
        m = WeightedMoments()
        for v, w in data:
            m.observe(v, w)
        assert m.mean() == pytest.approx(
            weighted_mean(values, weights), rel=1e-12, abs=1e-12
        )
        reference = weighted_mean_ci(values, weights)
        ci = m.mean_ci()
        assert ci.point == pytest.approx(reference.point, rel=1e-12, abs=1e-12)
        assert ci.low == pytest.approx(reference.low, rel=1e-9, abs=1e-9)
        assert ci.high == pytest.approx(reference.high, rel=1e-9, abs=1e-9)

    @given(values=float_lists, seed=st.integers(0, 2**16))
    def test_moments_merge_permutation_invariant(self, values, seed):
        rng = np.random.default_rng(seed)
        reference = StreamingMoments()
        for v in values:
            reference.observe(v)

        order = rng.permutation(len(values))
        permuted = [values[i] for i in order]
        merged = StreamingMoments()
        for lo, hi in chunkings(len(permuted), rng):
            part = StreamingMoments()
            for v in permuted[lo:hi]:
                part.observe(v)
            merged.merge(part)
        assert merged.to_dict() == reference.to_dict()


# ---------------------------------------------------------------------------
# Whole-sink properties over synthetic stream results.
# ---------------------------------------------------------------------------
stream_params = st.tuples(
    st.floats(min_value=1.0, max_value=30.0,
              allow_nan=False, allow_infinity=False),   # ssim dB
    st.floats(min_value=4.0, max_value=2000.0,
              allow_nan=False, allow_infinity=False),   # play time
    st.floats(min_value=0.0, max_value=60.0,
              allow_nan=False, allow_infinity=False),   # stall time
)


def build_stream(index, ssim, play, stall):
    info = TcpInfo(cwnd=20, in_flight=5, min_rtt=0.04, rtt=0.05,
                   delivery_rate=1e7)
    records = [
        ChunkRecord(
            chunk_index=i, rung=5, size_bytes=5e5, ssim_db=ssim,
            transmission_time=1.0, info_at_send=info, send_time=i * 2.0,
        )
        for i in range(3)
    ]
    return StreamResult(
        index, "x", records=records, play_time=play, stall_time=stall,
        startup_delay=0.4, total_time=play + stall,
    )


class TestSchemeSinkProperties:
    @given(
        params=st.lists(stream_params, min_size=1, max_size=12),
        seed=st.integers(0, 2**16),
    )
    def test_merge_permutation_and_grouping_invariant(self, params, seed):
        rng = np.random.default_rng(seed)
        streams = [build_stream(i, *p) for i, p in enumerate(params)]

        reference = StreamingSchemeSink("x")
        for s in streams:
            reference.observe_stream(s)
            reference.observe_session_duration(s.total_time + 10.0)

        order = rng.permutation(len(streams))
        permuted = [streams[i] for i in order]
        parts = []
        for lo, hi in chunkings(len(permuted), rng):
            part = StreamingSchemeSink("x")
            for s in permuted[lo:hi]:
                part.observe_stream(s)
                part.observe_session_duration(s.total_time + 10.0)
            parts.append(part)
        rng.shuffle(parts)
        merged = StreamingSchemeSink("x")
        for part in parts:
            merged.merge(part)

        assert (
            json.dumps(merged.to_dict(), sort_keys=True)
            == json.dumps(reference.to_dict(), sort_keys=True)
        )

    @given(params=st.lists(stream_params, min_size=2, max_size=12))
    def test_summary_matches_exact_list_statistics(self, params):
        from repro.analysis.summary import summarize_scheme

        streams = [build_stream(i, *p) for i, p in enumerate(params)]
        sink = StreamingSchemeSink("x")
        for s in streams:
            sink.observe_stream(s)
        row = sink.summary()
        reference = summarize_scheme("x", streams, n_resamples=50)

        assert row.n_streams == reference.n_streams
        assert row.stall_ratio.point == pytest.approx(
            reference.stall_ratio.point, rel=1e-12, abs=1e-15
        )
        assert row.mean_ssim_db.point == pytest.approx(
            reference.mean_ssim_db.point, rel=1e-12
        )
        # The SSIM interval uses the same closed-form weighted SE as the
        # list path — agreement is tight, not just asymptotic.
        values = np.array([s.mean_ssim_db for s in streams])
        weights = np.array([s.watch_time for s in streams])
        closed_form = weighted_mean_ci(values, weights)
        assert row.mean_ssim_db.low == pytest.approx(
            closed_form.low, rel=1e-9, abs=1e-9
        )
        assert row.mean_ssim_db.high == pytest.approx(
            closed_form.high, rel=1e-9, abs=1e-9
        )
        assert row.mean_bitrate_bps == pytest.approx(
            reference.mean_bitrate_bps, rel=1e-12
        )
        assert row.fraction_streams_with_stall == pytest.approx(
            reference.fraction_streams_with_stall
        )
        # Stall-ratio CI is a normal approximation of the bootstrap's
        # target: it must at least bracket the identical point estimate.
        assert row.stall_ratio.low <= row.stall_ratio.point
        assert row.stall_ratio.point <= row.stall_ratio.high

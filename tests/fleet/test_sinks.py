"""Unit tests for repro.fleet.sinks — exact accumulators and the
streaming per-scheme sink against the list-based reference path."""

import json
import math

import numpy as np
import pytest

from repro.abr.base import ChunkRecord
from repro.analysis.stats import weighted_mean, weighted_mean_ci
from repro.analysis.summary import summarize_scheme
from repro.fleet.sinks import (
    DURATION_SPEC,
    ExactSum,
    FleetHistogram,
    FleetSink,
    StreamingMoments,
    StreamingSchemeSink,
    WeightedMoments,
)
from repro.net.tcp import TcpInfo
from repro.streaming.session import StreamResult


def make_stream(
    stream_id=0, ssim=16.0, play=100.0, stall=0.0, delivery=1e7, n_chunks=10
):
    info = TcpInfo(cwnd=20, in_flight=5, min_rtt=0.04, rtt=0.05,
                   delivery_rate=delivery)
    records = [
        ChunkRecord(
            chunk_index=i, rung=5, size_bytes=5e5, ssim_db=ssim,
            transmission_time=1.0, info_at_send=info, send_time=i * 2.0,
        )
        for i in range(n_chunks)
    ]
    return StreamResult(
        stream_id, "x", records=records, play_time=play, stall_time=stall,
        startup_delay=0.5, total_time=play + stall,
    )


class TestExactSum:
    def test_empty_is_zero(self):
        assert ExactSum().value() == 0.0
        assert ExactSum().is_zero()

    def test_single_value_exact(self):
        s = ExactSum()
        s.add(0.1)
        assert s.value() == 0.1

    def test_classic_non_associative_case_is_exact(self):
        # 0.1 + 0.2 != 0.3 in floats; the exact sum rounds to the nearest
        # double of the true rational 3/10.
        s = ExactSum()
        for v in (0.1, 0.2):
            s.add(v)
        from fractions import Fraction

        assert s.fraction() == Fraction(0.1) + Fraction(0.2)

    def test_rejects_non_finite(self):
        s = ExactSum()
        with pytest.raises(ValueError):
            s.add(float("nan"))
        with pytest.raises(ValueError):
            s.add(float("inf"))

    def test_serialization_round_trip_negative(self):
        s = ExactSum()
        s.add(-1.25e-300)
        s.add(3.5e300)
        restored = ExactSum.from_dict(s.to_dict())
        assert restored == s
        # And through actual JSON.
        assert ExactSum.from_dict(json.loads(json.dumps(s.to_dict()))) == s


class TestStreamingMoments:
    def test_matches_numpy(self):
        values = [0.1, 0.7, 2.5, -3.25, 1e-3, 11.0]
        m = StreamingMoments()
        for v in values:
            m.observe(v)
        assert m.mean() == pytest.approx(np.mean(values), rel=1e-12)
        se = np.std(values, ddof=1) / math.sqrt(len(values))
        assert m.standard_error() == pytest.approx(se, rel=1e-12)

    def test_ci_degenerate_cases(self):
        m = StreamingMoments()
        assert m.mean_ci() is None
        m.observe(4.0)
        ci = m.mean_ci()
        assert ci is not None and ci.low == ci.high == ci.point == 4.0


class TestWeightedMoments:
    def test_matches_weighted_mean_ci(self):
        values = np.array([10.0, 20.0, 13.5, 17.25])
        weights = np.array([100.0, 300.0, 55.0, 10.0])
        m = WeightedMoments()
        for v, w in zip(values, weights):
            m.observe(v, w)
        reference = weighted_mean_ci(values, weights)
        assert m.mean() == pytest.approx(reference.point, rel=1e-12)
        ci = m.mean_ci()
        assert ci.low == pytest.approx(reference.low, rel=1e-9)
        assert ci.high == pytest.approx(reference.high, rel=1e-9)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            WeightedMoments().observe(1.0, -1.0)

    def test_zero_weight_mean_is_nan(self):
        m = WeightedMoments()
        m.observe(5.0, 0.0)
        assert math.isnan(m.mean())


class TestFleetHistogram:
    def test_counts_and_overflow(self):
        hist = FleetHistogram(DURATION_SPEC)
        hist.observe(0.5)      # below lo=1.0
        hist.observe(10.0)
        hist.observe(2e5)      # above hi=1e5
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.count == 3
        assert hist.mean() == pytest.approx((0.5 + 10.0 + 2e5) / 3)

    def test_quantile_monotone(self):
        hist = FleetHistogram(DURATION_SPEC)
        for v in (2.0, 5.0, 50.0, 500.0, 5000.0):
            hist.observe(v)
        qs = [hist.quantile(q) for q in (0.1, 0.5, 0.9)]
        assert qs == sorted(qs)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_merge_requires_same_spec(self):
        from repro.fleet.sinks import SSIM_SPEC

        with pytest.raises(ValueError):
            FleetHistogram(DURATION_SPEC).merge(FleetHistogram(SSIM_SPEC))


class TestStreamingSchemeSink:
    def test_point_estimates_match_list_path(self):
        streams = [
            make_stream(0, ssim=10.0, play=100.0, stall=2.0),
            make_stream(1, ssim=20.0, play=300.0, stall=0.0),
            make_stream(2, ssim=14.0, play=50.0, stall=1.0),
        ]
        durations = [120.0, 400.0, 75.0]
        sink = StreamingSchemeSink("x")
        for s in streams:
            sink.observe_stream(s)
        for d in durations:
            sink.observe_session_duration(d)
        reference = summarize_scheme(
            "x", streams, session_durations=durations, n_resamples=200
        )
        row = sink.summary()
        assert row.n_streams == reference.n_streams
        assert row.stream_years == pytest.approx(
            reference.stream_years, rel=1e-12
        )
        assert row.stall_ratio.point == pytest.approx(
            reference.stall_ratio.point, rel=1e-12
        )
        assert row.mean_ssim_db.point == pytest.approx(
            reference.mean_ssim_db.point, rel=1e-12
        )
        assert row.ssim_variation_db == pytest.approx(
            reference.ssim_variation_db, rel=1e-12, abs=1e-12
        )
        assert row.mean_bitrate_bps == pytest.approx(
            reference.mean_bitrate_bps, rel=1e-12
        )
        assert row.mean_session_duration_s.point == pytest.approx(
            reference.mean_session_duration_s.point, rel=1e-12
        )
        assert row.startup_delay_s == pytest.approx(
            reference.startup_delay_s, rel=1e-12
        )
        assert row.first_chunk_ssim_db == pytest.approx(
            reference.first_chunk_ssim_db, rel=1e-12
        )
        assert row.fraction_streams_with_stall == pytest.approx(
            reference.fraction_streams_with_stall
        )

    def test_ssim_ci_matches_weighted_se_formula(self):
        streams = [
            make_stream(0, ssim=10.0, play=100.0),
            make_stream(1, ssim=20.0, play=300.0),
            make_stream(2, ssim=14.0, play=50.0),
        ]
        sink = StreamingSchemeSink("x")
        for s in streams:
            sink.observe_stream(s)
        values = np.array([s.mean_ssim_db for s in streams])
        weights = np.array([s.watch_time for s in streams])
        reference = weighted_mean_ci(values, weights)
        ci = sink.summary().mean_ssim_db
        assert ci.point == pytest.approx(reference.point, rel=1e-12)
        assert ci.low == pytest.approx(reference.low, rel=1e-9)
        assert ci.high == pytest.approx(reference.high, rel=1e-9)

    def test_stall_ci_brackets_point(self):
        streams = [
            make_stream(i, play=100.0 + 7 * i, stall=float(i % 3))
            for i in range(12)
        ]
        sink = StreamingSchemeSink("x")
        for s in streams:
            sink.observe_stream(s)
        ci = sink.stall_ratio_ci()
        assert ci.low <= ci.point <= ci.high
        assert ci.low >= 0.0

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            StreamingSchemeSink("x").summary()

    def test_merge_rejects_other_scheme(self):
        with pytest.raises(ValueError):
            StreamingSchemeSink("x").merge(StreamingSchemeSink("y"))

    def test_exclusion_counters_accumulate(self):
        sink = StreamingSchemeSink("x")
        sink.observe_exclusions(streams_assigned=5, did_not_begin=1)
        sink.observe_exclusions(streams_assigned=3, watch_time_under_4s=2)
        assert sink.streams_assigned == 8
        assert sink.did_not_begin == 1
        assert sink.watch_time_under_4s == 2


class TestFleetSink:
    def _populated(self):
        sink = FleetSink()
        sink.sessions = 3
        sink.streams = 4
        sink.sessions_by_day = {0: 2, 1: 1}
        sink.arrivals_by_hour[20] = 3
        sink.sim_watch_s.add(1234.5)
        scheme = sink.scheme("bba")
        scheme.observe_stream(make_stream(0, play=200.0, stall=1.0))
        scheme.observe_session_duration(250.0)
        scheme.observe_exclusions(streams_assigned=2, did_not_begin=1)
        return sink

    def test_serialization_exact_round_trip(self):
        sink = self._populated()
        payload = json.dumps(sink.to_dict(), sort_keys=True)
        restored = FleetSink.from_dict(json.loads(payload))
        assert json.dumps(restored.to_dict(), sort_keys=True) == payload

    def test_schema_version_checked(self):
        data = self._populated().to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError):
            FleetSink.from_dict(data)

    def test_merge_accumulates_everything(self):
        a = self._populated()
        b = self._populated()
        a.merge(b)
        assert a.sessions == 6
        assert a.streams == 8
        assert a.sessions_by_day == {0: 4, 1: 2}
        assert a.arrivals_by_hour[20] == 6
        assert a.scheme("bba").n_streams == 2
        assert a.scheme("bba").streams_assigned == 4

    def test_summaries_skips_empty_schemes(self):
        sink = self._populated()
        sink.scheme("empty")  # registered but never fed a stream
        assert [s.scheme for s in sink.summaries()] == ["bba"]

"""Tests for repro.fleet.workload — the seeded session-arrival process."""

import pytest

from repro.fleet.workload import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    FlashCrowd,
    SessionArrival,
    WorkloadConfig,
    WorkloadGenerator,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        config = WorkloadConfig()
        assert config.horizon_s == SECONDS_PER_DAY

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"days": 0.0},
            {"days": -1.0},
            {"sessions_per_hour": 0.0},
            {"diurnal_amplitude": -0.1},
            {"diurnal_amplitude": 1.0},
            {"peak_hour": 24.0},
            {"peak_hour": -1.0},
        ],
    )
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start_day": -0.5, "duration_hours": 1.0, "multiplier": 2.0},
            {"start_day": 0.0, "duration_hours": 0.0, "multiplier": 2.0},
            {"start_day": 0.0, "duration_hours": 1.0, "multiplier": 0.5},
        ],
    )
    def test_rejects_bad_flash_crowds(self, kwargs):
        with pytest.raises(ValueError):
            FlashCrowd(**kwargs)

    def test_round_trip(self):
        config = WorkloadConfig(
            days=3.5,
            sessions_per_hour=120.0,
            diurnal_amplitude=0.4,
            peak_hour=19.5,
            flash_crowds=(
                FlashCrowd(start_day=1.0, duration_hours=2.0, multiplier=4.0),
            ),
            seed=9,
        )
        assert WorkloadConfig.from_dict(config.to_dict()) == config


class TestIntensity:
    def test_peaks_at_peak_hour(self):
        config = WorkloadConfig(peak_hour=20.0, diurnal_amplitude=0.6)
        peak = config.rate_per_hour(20.0 * SECONDS_PER_HOUR)
        trough = config.rate_per_hour(8.0 * SECONDS_PER_HOUR)
        assert peak == pytest.approx(config.sessions_per_hour * 1.6)
        assert trough == pytest.approx(config.sessions_per_hour * 0.4)

    def test_flash_crowd_multiplies_inside_window_only(self):
        crowd = FlashCrowd(start_day=0.5, duration_hours=6.0, multiplier=3.0)
        config = WorkloadConfig(
            diurnal_amplitude=0.0, flash_crowds=(crowd,)
        )
        inside = config.rate_per_hour(crowd.start_s + 1.0)
        outside = config.rate_per_hour(crowd.start_s - 1.0)
        assert inside == pytest.approx(3.0 * outside)

    def test_peak_rate_bounds_intensity(self):
        config = WorkloadConfig(
            diurnal_amplitude=0.5,
            flash_crowds=(
                FlashCrowd(start_day=0.2, duration_hours=3.0, multiplier=2.0),
            ),
        )
        bound = config.peak_rate_per_hour()
        for hour in range(0, 24):
            assert config.rate_per_hour(hour * SECONDS_PER_HOUR) <= bound

    def test_peak_rate_exact_for_disjoint_crowds(self):
        """Regression: disjoint crowds must not multiply together — the
        envelope is the max *simultaneously active* product, so thinning
        acceptance does not degrade with every extra (non-overlapping)
        event on the calendar."""
        config = WorkloadConfig(
            diurnal_amplitude=0.5,
            flash_crowds=(
                FlashCrowd(start_day=0.1, duration_hours=2.0, multiplier=3.0),
                FlashCrowd(start_day=0.5, duration_hours=2.0, multiplier=4.0),
            ),
        )
        base_peak = config.sessions_per_hour * 1.5
        assert config.peak_rate_per_hour() == pytest.approx(4.0 * base_peak)

    def test_peak_rate_exact_for_overlapping_crowds(self):
        """Two overlapping crowds compound only where both are active; a
        third disjoint one never joins the product."""
        config = WorkloadConfig(
            diurnal_amplitude=0.0,
            flash_crowds=(
                FlashCrowd(start_day=0.1, duration_hours=6.0, multiplier=2.0),
                FlashCrowd(start_day=0.2, duration_hours=6.0, multiplier=3.0),
                FlashCrowd(start_day=0.9, duration_hours=1.0, multiplier=5.0),
            ),
        )
        assert config.peak_rate_per_hour() == pytest.approx(
            6.0 * config.sessions_per_hour
        )
        # Still a true envelope over a fine sweep of the horizon.
        bound = config.peak_rate_per_hour()
        for i in range(0, 24 * 60, 7):
            assert config.rate_per_hour(i * 60.0) <= bound + 1e-9

    def test_peak_rate_without_crowds_unchanged(self):
        config = WorkloadConfig(diurnal_amplitude=0.25, sessions_per_hour=80.0)
        assert config.peak_rate_per_hour() == pytest.approx(80.0 * 1.25)

    def test_single_crowd_arrivals_unchanged_by_exact_envelope(self):
        """With one crowd the exact envelope equals the old product bound,
        so existing single-crowd arrival sequences are untouched."""
        crowd = FlashCrowd(start_day=0.25, duration_hours=6.0, multiplier=5.0)
        config = WorkloadConfig(
            days=1.0, sessions_per_hour=60.0, diurnal_amplitude=0.0,
            flash_crowds=(crowd,), seed=2,
        )
        assert config.peak_rate_per_hour() == pytest.approx(60.0 * 5.0)

    def test_expected_sessions_matches_mean_rate(self):
        # With zero amplitude the intensity is flat: expectation is exact.
        config = WorkloadConfig(
            days=2.0, sessions_per_hour=30.0, diurnal_amplitude=0.0
        )
        assert config.expected_sessions() == pytest.approx(
            2.0 * 24.0 * 30.0, rel=1e-9
        )


class TestGenerator:
    def test_deterministic(self):
        config = WorkloadConfig(days=0.1, sessions_per_hour=100.0, seed=3)
        a = list(WorkloadGenerator(config).arrivals())
        b = list(WorkloadGenerator(config).arrivals())
        assert a == b
        assert a, "expected some arrivals"

    def test_ids_consecutive_and_times_sorted_in_horizon(self):
        config = WorkloadConfig(days=0.1, sessions_per_hour=100.0, seed=3)
        arrivals = list(WorkloadGenerator(config))
        assert [a.session_id for a in arrivals] == list(range(len(arrivals)))
        times = [a.time_s for a in arrivals]
        assert times == sorted(times)
        assert all(0.0 <= t < config.horizon_s for t in times)

    def test_restart_skips_committed_prefix(self):
        """Resume correctness: regenerating from id k replays the exact
        suffix of the full sequence."""
        config = WorkloadConfig(days=0.1, sessions_per_hour=100.0, seed=3)
        full = list(WorkloadGenerator(config).arrivals())
        for k in (0, 1, len(full) // 2, len(full)):
            tail = list(WorkloadGenerator(config).arrivals(start_session_id=k))
            assert tail == full[k:]

    def test_different_seeds_differ(self):
        base = dict(days=0.1, sessions_per_hour=100.0)
        a = list(WorkloadGenerator(WorkloadConfig(seed=0, **base)))
        b = list(WorkloadGenerator(WorkloadConfig(seed=1, **base)))
        assert a != b

    def test_diurnal_shape_visible_in_counts(self):
        """Over several days, peak-side hours see more arrivals than
        trough-side hours (law of large numbers on the thinning)."""
        config = WorkloadConfig(
            days=8.0, sessions_per_hour=40.0,
            diurnal_amplitude=0.8, peak_hour=20.0, seed=1,
        )
        by_hour = [0] * 24
        for arrival in WorkloadGenerator(config):
            by_hour[int(arrival.hour_of_day) % 24] += 1
        peak_window = sum(by_hour[18:23])
        trough_window = sum(by_hour[4:9])
        assert peak_window > 2 * trough_window

    def test_flash_crowd_inflates_window(self):
        crowd = FlashCrowd(start_day=0.25, duration_hours=6.0, multiplier=5.0)
        base = dict(
            days=1.0, sessions_per_hour=60.0, diurnal_amplitude=0.0, seed=2
        )
        quiet = list(WorkloadGenerator(WorkloadConfig(**base)))
        crowded = list(
            WorkloadGenerator(WorkloadConfig(flash_crowds=(crowd,), **base))
        )

        def in_window(arrivals):
            return sum(
                1 for a in arrivals if crowd.start_s <= a.time_s < crowd.end_s
            )

        assert in_window(crowded) > 2 * in_window(quiet)

    def test_take_and_count(self):
        config = WorkloadConfig(days=0.05, sessions_per_hour=100.0, seed=4)
        generator = WorkloadGenerator(config)
        n = generator.count()
        assert n > 0
        head = generator.take(3)
        assert len(head) == min(3, n)
        assert head == list(generator.arrivals())[:3]

    def test_negative_start_rejected(self):
        generator = WorkloadGenerator(WorkloadConfig(days=0.01))
        with pytest.raises(ValueError):
            next(generator.arrivals(start_session_id=-1))


class TestSessionArrival:
    def test_day_and_hour(self):
        arrival = SessionArrival(
            session_id=7, time_s=1.5 * SECONDS_PER_DAY + 3 * SECONDS_PER_HOUR
        )
        assert arrival.day == 1
        assert arrival.hour_of_day == pytest.approx(15.0)

"""Reproducibility: every pipeline is a pure function of its seeds.

The repository's claims depend on re-runnable experiments; these tests pin
bit-for-bit determinism of the simulators, the trainers, and the trial
harness across repeated invocations within a process.
"""

import numpy as np

from repro.abr import BBA
from repro.core.train import TtpTrainer, build_ttp_datasets
from repro.core.ttp import TransmissionTimePredictor, TtpConfig
from repro.experiment import (
    RandomizedTrial,
    TrialConfig,
    deploy_and_collect,
    primary_experiment_schemes,
)


def _stream_fingerprint(results):
    return [
        (
            len(r.records),
            round(r.play_time, 9),
            round(r.stall_time, 9),
            round(r.mean_ssim_db, 9) if r.records else None,
        )
        for r in results
    ]


class TestDeterminism:
    def test_deployment_fingerprint_stable(self):
        a = deploy_and_collect([BBA()], 8, seed=21, watch_time_s=60.0)
        b = deploy_and_collect([BBA()], 8, seed=21, watch_time_s=60.0)
        assert _stream_fingerprint(a) == _stream_fingerprint(b)

    def test_ttp_training_weights_identical(self):
        streams = deploy_and_collect([BBA()], 6, seed=22, watch_time_s=60.0)

        def train_once():
            predictor = TransmissionTimePredictor(TtpConfig(horizon=1), seed=5)
            TtpTrainer(predictor, epochs=3, seed=5).train(
                build_ttp_datasets(streams, predictor)
            )
            return predictor.models[0].state_dict()

        a, b = train_once(), train_once()
        for name in a["weights"]:
            np.testing.assert_array_equal(a["weights"][name], b["weights"][name])

    def test_trial_fingerprint_stable(self):
        from repro.abr.pensieve import ActorCritic

        def run_once():
            specs = primary_experiment_schemes(
                TransmissionTimePredictor(seed=0), ActorCritic(seed=0)
            )
            trial = RandomizedTrial(
                specs, TrialConfig(n_sessions=20, seed=13)
            ).run()
            return [
                (s.scheme, len(s.streams), round(s.duration, 9))
                for s in trial.sessions
            ]

        assert run_once() == run_once()

    def test_emulation_fingerprint_stable(self):
        from repro.emulation import EmulationEnvironment

        env_a = EmulationEnvironment(n_traces=2, seed=3)
        env_b = EmulationEnvironment(n_traces=2, seed=3)
        a = env_a.run_scheme(BBA(), seed=1)
        b = env_b.run_scheme(BBA(), seed=1)
        assert _stream_fingerprint(a) == _stream_fingerprint(b)

    def test_pensieve_training_deterministic(self):
        from repro.abr.pensieve import (
            ActorCritic,
            PensieveTrainer,
            PensieveTrainingConfig,
            SimpleChunkEnv,
        )
        from repro.traces import generate_fcc_dataset

        def train_once():
            traces = generate_fcc_dataset(3, seed=4)
            env = SimpleChunkEnv(traces, chunks_per_episode=10, seed=4)
            model = ActorCritic(seed=4)
            PensieveTrainer(
                model, env, PensieveTrainingConfig(episodes=5, seed=4)
            ).train()
            return model.actor.state_dict()

        a, b = train_once(), train_once()
        for name in a["weights"]:
            np.testing.assert_array_equal(a["weights"][name], b["weights"][name])

"""Integration tests: full pipelines across subsystem boundaries."""

import numpy as np
import pytest

from repro.abr import BBA, Bola, MpcHm, Pensieve, RateBased, RobustMpcHm
from repro.abr.pensieve import ActorCritic
from repro.core import Fugu, TransmissionTimePredictor, TtpConfig
from repro.core.train import TtpTrainer, build_ttp_datasets
from repro.experiment import (
    InSituTrainingConfig,
    RandomizedTrial,
    TrialConfig,
    deploy_and_collect,
    primary_experiment_schemes,
    train_fugu_in_situ,
)
from repro.media.encoder import VbrEncoder
from repro.media.source import DEFAULT_CHANNELS, VideoSource
from repro.net import HeavyTailLink, TcpConnection
from repro.streaming import simulate_stream


def run_one(abr, seed=0, base_bps=8e6, watch=60.0):
    rng = np.random.default_rng(seed)
    source = VideoSource(DEFAULT_CHANNELS[0], rng=rng)
    encoder = VbrEncoder(rng=rng)
    link = HeavyTailLink(base_bps=base_bps, seed=seed)
    conn = TcpConnection(link, base_rtt=0.05)
    return simulate_stream(
        encoder.stream(source), abr, conn, watch_time_s=watch, stream_id=seed
    )


class TestEverySchemeStreams:
    @pytest.mark.parametrize(
        "abr_factory",
        [
            BBA,
            MpcHm,
            RobustMpcHm,
            RateBased,
            Bola,
            lambda: Pensieve(ActorCritic(seed=0)),
            lambda: Fugu(TransmissionTimePredictor(seed=0)),
        ],
    )
    def test_scheme_completes_stream(self, abr_factory):
        result = run_one(abr_factory())
        assert len(result.records) > 10
        assert result.watch_time > 0
        assert result.stall_ratio < 1.0

    def test_all_schemes_adapt_to_slow_path(self):
        # On a 1 Mbps path, every scheme must settle below the top rung.
        for abr in (BBA(), MpcHm(), RobustMpcHm(), RateBased()):
            result = run_one(abr, base_bps=1e6, watch=120.0)
            late_rungs = [r.rung for r in result.records[20:]]
            assert late_rungs, f"{abr.name} sent too few chunks"
            assert np.mean(late_rungs) < 8, abr.name


class TestTrainedFuguQuality:
    def test_in_situ_fugu_streams_well_on_fast_path(self):
        predictor = train_fugu_in_situ(
            InSituTrainingConfig(
                bootstrap_streams=20, iteration_streams=10, iterations=1,
                epochs=4, watch_time_s=90.0, seed=0,
            )
        )
        fugu = Fugu(predictor)
        result = run_one(fugu, seed=101, base_bps=3e7, watch=90.0)
        # A trained Fugu uses a fast path: mean rung well above the floor.
        assert np.mean([r.rung for r in result.records]) > 4
        assert result.stall_ratio < 0.05

    def test_ttp_accuracy_improves_with_training(self):
        streams = deploy_and_collect([BBA()], 16, seed=3, watch_time_s=90.0)
        predictor = TransmissionTimePredictor(TtpConfig(horizon=1), seed=0)
        datasets = build_ttp_datasets(streams, predictor)
        trainer = TtpTrainer(predictor, epochs=6, seed=0)
        before = trainer.evaluate(datasets[0]).cross_entropy
        trainer.train(datasets)
        after = trainer.evaluate(datasets[0]).cross_entropy
        assert after < before


class TestSmallTrialPipeline:
    def test_trial_to_summary_pipeline(self):
        from repro.analysis import results_table, summarize_scheme

        specs = primary_experiment_schemes(
            TransmissionTimePredictor(seed=0), ActorCritic(seed=0)
        )
        trial = RandomizedTrial(
            specs, TrialConfig(n_sessions=40, seed=1)
        ).run()
        summaries = []
        for name in trial.scheme_names:
            streams = trial.streams_for(name)
            if streams:
                summaries.append(
                    summarize_scheme(
                        name, streams, trial.session_durations_for(name),
                        n_resamples=60,
                    )
                )
        table = results_table(summaries)
        assert len(table) >= 3
        for row in table.values():
            assert 0 <= row["time_stalled_percent"] <= 100
            assert 0 < row["mean_ssim_db"] < 30

    def test_connection_state_persists_across_session_streams(self):
        # Channel changes reuse the TCP connection (§3.2): later streams in
        # a session should start with a delivery-rate estimate.
        specs = primary_experiment_schemes(
            TransmissionTimePredictor(seed=0), ActorCritic(seed=0)
        )[:1]
        config = TrialConfig(n_sessions=40, seed=2, collect_telemetry=True)
        trial = RandomizedTrial(specs, config).run()
        multi = [s for s in trial.sessions if len(s.streams) >= 2]
        assert multi
        warm_start_found = False
        for session in multi:
            for stream in session.streams[1:]:
                if stream.records and stream.records[0].info_at_send.delivery_rate > 0:
                    warm_start_found = True
        assert warm_start_found

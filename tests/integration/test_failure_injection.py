"""Failure-injection tests: the stack must behave sanely at the edges of
its operating envelope — dead links, absurd RTTs, degenerate ladders,
near-zero watch times — without crashes or accounting violations."""

import numpy as np
import pytest

from repro.abr import BBA, MpcHm
from repro.core import Fugu, TransmissionTimePredictor
from repro.media.chunk import ChunkMenu, EncodedChunk
from repro.media.encoder import VbrEncoder, encode_clip
from repro.media.ladder import PUFFER_LADDER, EncodingLadder
from repro.media.source import DEFAULT_CHANNELS, VideoSource
from repro.net.link import MIN_CAPACITY, ConstantLink, TraceLink
from repro.net.tcp import TcpConnection
from repro.streaming import simulate_stream


def check_accounting(result, watch):
    assert result.play_time >= 0
    assert result.stall_time >= 0
    assert result.total_time <= watch + 1e-6
    assert result.watch_time <= result.total_time + 1e-6


class TestDeadAndDegradedLinks:
    def test_floor_capacity_link(self):
        # A link at the absolute capacity floor: the viewer stalls out and
        # leaves; nothing crashes and nothing over-counts.
        conn = TcpConnection(ConstantLink(MIN_CAPACITY), base_rtt=0.05)
        result = simulate_stream(
            iter(encode_clip(DEFAULT_CHANNELS[0], 20, seed=0)),
            BBA(), conn, watch_time_s=30.0,
        )
        check_accounting(result, 30.0)
        assert result.stall_ratio > 0.5 or result.never_began

    def test_link_dies_mid_stream(self):
        alive_then_dead = TraceLink(
            [2e7] * 20 + [MIN_CAPACITY] * 600, epoch=1.0, loop=False
        )
        conn = TcpConnection(alive_then_dead, base_rtt=0.05)
        result = simulate_stream(
            iter(encode_clip(DEFAULT_CHANNELS[0], 200, seed=1)),
            MpcHm(), conn, watch_time_s=90.0,
        )
        check_accounting(result, 90.0)
        assert len(result.records) > 5  # streamed while alive
        assert result.stall_time > 0  # then starved

    def test_extreme_rtt(self):
        conn = TcpConnection(ConstantLink(1e7), base_rtt=0.79)
        result = simulate_stream(
            iter(encode_clip(DEFAULT_CHANNELS[0], 60, seed=2)),
            BBA(), conn, watch_time_s=60.0,
        )
        check_accounting(result, 60.0)
        assert result.startup_delay is None or result.startup_delay >= 0.79

    def test_untrained_fugu_on_dead_link(self):
        conn = TcpConnection(ConstantLink(MIN_CAPACITY), base_rtt=0.05)
        result = simulate_stream(
            iter(encode_clip(DEFAULT_CHANNELS[0], 10, seed=3)),
            Fugu(TransmissionTimePredictor(seed=0)), conn, watch_time_s=10.0,
        )
        check_accounting(result, 10.0)


class TestDegenerateMedia:
    def single_rung_menus(self, n=20):
        ladder = EncodingLadder([PUFFER_LADDER[0]])
        rng = np.random.default_rng(0)
        source = VideoSource(DEFAULT_CHANNELS[0], rng=rng)
        encoder = VbrEncoder(ladder=ladder, rng=rng)
        return encoder.encode_source(source, n)

    def test_single_rung_ladder(self):
        for abr in (BBA(), MpcHm()):
            conn = TcpConnection(ConstantLink(5e6), base_rtt=0.05)
            result = simulate_stream(
                iter(self.single_rung_menus()), abr, conn, watch_time_s=30.0
            )
            assert all(r.rung == 0 for r in result.records)

    def test_single_chunk_clip(self):
        conn = TcpConnection(ConstantLink(5e6), base_rtt=0.05)
        result = simulate_stream(
            iter(encode_clip(DEFAULT_CHANNELS[0], 1, seed=4)),
            BBA(), conn, watch_time_s=30.0,
        )
        assert len(result.records) == 1
        check_accounting(result, 30.0)

    def test_zero_watch_time(self):
        conn = TcpConnection(ConstantLink(5e6), base_rtt=0.05)
        result = simulate_stream(
            iter(encode_clip(DEFAULT_CHANNELS[0], 5, seed=5)),
            BBA(), conn, watch_time_s=0.0,
        )
        assert result.never_began
        assert result.records == []


class TestHostileAbr:
    def test_always_highest_on_slow_path(self):
        class MaxRung(BBA):
            name = "max_rung"

            def choose(self, context):
                return len(context.menu) - 1

        conn = TcpConnection(ConstantLink(5e5), base_rtt=0.05)
        result = simulate_stream(
            iter(encode_clip(DEFAULT_CHANNELS[0], 50, seed=6)),
            MaxRung(), conn, watch_time_s=60.0,
        )
        check_accounting(result, 60.0)
        assert result.stall_ratio > 0.2  # reckless choices have consequences

    def test_out_of_range_choice_rejected_not_crashed(self):
        class Broken(BBA):
            def choose(self, context):
                return 99

        conn = TcpConnection(ConstantLink(5e6), base_rtt=0.05)
        with pytest.raises(ValueError, match="chose rung"):
            simulate_stream(
                iter(encode_clip(DEFAULT_CHANNELS[0], 5, seed=7)),
                Broken(), conn, watch_time_s=10.0,
            )

"""Golden-trace regression test.

Pins a SHA-256 digest of the open-data telemetry (``video_sent``,
``video_acked``, ``client_buffer``) produced by a tiny canonical trial:
**4 sessions, seed 0, the classical scheme registry**.  Any change to the
simulator, the TCP model, the ABR schemes, or the trial harness that alters
a single field of a single record changes a digest and fails here —
the point is to make behavioral drift *loud* and reviewable instead of
silent.

Re-blessing
-----------
If a change is *intended* to alter simulation behavior (a modeling fix, a
new default), regenerate the fixture and commit it alongside the change::

    REPRO_REBLESS_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_trace.py -q

then mention the re-bless (and why) in the commit message.  The fixture
records row counts next to the digests so a diff shows the blast radius.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm
from repro.experiment.harness import RandomizedTrial, TrialConfig
from repro.experiment.schemes import SchemeSpec

GOLDEN_PATH = Path(__file__).parent / "golden_trace.json"
REBLESS_ENV = "REPRO_REBLESS_GOLDEN"

N_SESSIONS = 4
SEED = 0


def golden_specs():
    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
    ]


def golden_config(observability: bool = False) -> TrialConfig:
    return TrialConfig(
        n_sessions=N_SESSIONS,
        seed=SEED,
        collect_telemetry=True,
        observability=observability,
    )


def run_and_digest(observability: bool = False) -> dict:
    trial = RandomizedTrial(golden_specs(), golden_config(observability)).run()
    telemetry = trial.telemetry
    assert telemetry is not None
    digests = {}
    for table in ("video_sent", "video_acked", "client_buffer"):
        rows = [
            json.dumps(record.to_dict(), sort_keys=True)
            for record in getattr(telemetry, table)
        ]
        digests[table] = {
            "rows": len(rows),
            "sha256": hashlib.sha256("\n".join(rows).encode()).hexdigest(),
        }
    return digests


def load_golden() -> dict:
    with open(GOLDEN_PATH) as f:
        return json.load(f)


class TestGoldenTrace:
    def test_telemetry_matches_golden_digests(self):
        digests = run_and_digest()
        if os.environ.get(REBLESS_ENV):
            blessed = {
                "_comment": (
                    "Golden open-data digests for 4 sessions, seed 0, "
                    "classical schemes. Re-bless intentionally with "
                    f"{REBLESS_ENV}=1 (see test_golden_trace.py docstring)."
                ),
                "n_sessions": N_SESSIONS,
                "seed": SEED,
                "tables": digests,
            }
            GOLDEN_PATH.write_text(json.dumps(blessed, indent=2) + "\n")
            pytest.skip(f"re-blessed golden fixture at {GOLDEN_PATH}")
        golden = load_golden()
        assert golden["n_sessions"] == N_SESSIONS
        assert golden["seed"] == SEED
        for table, expected in golden["tables"].items():
            got = digests[table]
            assert got["rows"] == expected["rows"], (
                f"{table}: row count drifted "
                f"({got['rows']} != {expected['rows']}); if intended, "
                f"re-bless with {REBLESS_ENV}=1"
            )
            assert got["sha256"] == expected["sha256"], (
                f"{table}: telemetry digest drifted; if the behavior change "
                f"is intended, re-bless with {REBLESS_ENV}=1"
            )

    def test_observability_does_not_perturb_the_trace(self):
        # The instrumentation contract: enabling metrics/tracing must not
        # change a single simulated byte.
        assert run_and_digest(observability=True) == run_and_digest(
            observability=False
        )

    def test_rows_roundtrip_through_json(self):
        # The golden digest hashes to_dict() rows; make sure those rows
        # parse back into the exact records (ties the golden fixture to the
        # serialization contract tested in tests/streaming/test_telemetry).
        trial = RandomizedTrial(golden_specs(), golden_config()).run()
        telemetry = trial.telemetry
        for record in telemetry.client_buffer[:50]:
            parsed = type(record).from_dict(
                json.loads(json.dumps(record.to_dict()))
            )
            assert parsed == record

"""Property-based integration tests: system-level invariants that must hold
for any scheme, any network, any seed."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr import BBA, MpcHm
from repro.core import Fugu, TransmissionTimePredictor
from repro.media.encoder import VbrEncoder
from repro.media.source import DEFAULT_CHANNELS, VideoSource
from repro.net import HeavyTailLink, TcpConnection
from repro.streaming import TelemetryLog, simulate_stream


def run(abr, seed, base_bps, watch, telemetry=None):
    rng = np.random.default_rng(seed)
    source = VideoSource(DEFAULT_CHANNELS[seed % 6], rng=rng)
    encoder = VbrEncoder(rng=rng)
    link = HeavyTailLink(base_bps=base_bps, seed=seed)
    conn = TcpConnection(link, base_rtt=0.05)
    return simulate_stream(
        encoder.stream(source), abr, conn, watch_time_s=watch,
        telemetry=telemetry,
    )


@st.composite
def scenario(draw):
    seed = draw(st.integers(0, 200))
    base = draw(st.sampled_from([5e5, 2e6, 8e6, 4e7]))
    watch = draw(st.floats(5.0, 90.0))
    return seed, base, watch


class TestStreamInvariants:
    @given(scenario())
    @settings(max_examples=15, deadline=None)
    def test_time_accounting(self, params):
        seed, base, watch = params
        result = run(BBA(), seed, base, watch)
        assert result.play_time >= 0
        assert result.stall_time >= 0
        assert result.watch_time == pytest.approx(
            result.play_time + result.stall_time
        )
        assert result.total_time <= watch + 1e-6
        assert result.watch_time <= result.total_time + 1e-6

    @given(scenario())
    @settings(max_examples=15, deadline=None)
    def test_records_well_formed(self, params):
        seed, base, watch = params
        result = run(BBA(), seed, base, watch)
        for record in result.records:
            assert record.transmission_time > 0
            assert record.size_bytes > 0
            assert 0 <= record.rung < 10
            assert 0 < record.ssim_db < 30
        indices = [r.chunk_index for r in result.records]
        assert indices == sorted(indices)

    @given(scenario())
    @settings(max_examples=10, deadline=None)
    def test_telemetry_consistent_with_result(self, params):
        seed, base, watch = params
        log = TelemetryLog()
        result = run(MpcHm(), seed, base, watch, telemetry=log)
        assert len(log.video_sent) >= len(result.records)
        assert len(log.video_acked) == len(result.records)
        if log.client_buffer:
            cum = [r.cum_rebuf for r in log.client_buffer]
            assert all(a <= b + 1e-9 for a, b in zip(cum, cum[1:]))
            assert cum[-1] <= result.stall_time + 1e-6

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_fugu_untrained_still_safe(self, seed):
        # Even an untrained TTP must produce valid decisions (the system
        # must not crash before its first training day).
        fugu = Fugu(TransmissionTimePredictor(seed=seed))
        result = run(fugu, seed, 4e6, 30.0)
        assert result.total_time <= 30.0 + 1e-6

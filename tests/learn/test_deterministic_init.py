"""Regression tests for the DET001 fix in repro.learn.layers.

``Linear(..., rng=None)`` used to fall back to an *unseeded*
``np.random.default_rng()`` — the precise determinism-contract violation
the linter's DET001 rule exists to catch.  The fallback now derives from an
explicit ``seed`` parameter (default ``DEFAULT_INIT_SEED``), so ad-hoc
construction is reproducible and `repro lint src` stays clean.
"""

import numpy as np

from repro.learn.layers import DEFAULT_INIT_SEED, Linear
from repro.learn.network import MLP


class TestLinearDefaultInit:
    def test_default_construction_is_deterministic(self):
        a = Linear(4, 3)
        b = Linear(4, 3)
        np.testing.assert_array_equal(a.weight, b.weight)

    def test_default_matches_explicit_default_seed(self):
        a = Linear(4, 3)
        b = Linear(4, 3, seed=DEFAULT_INIT_SEED)
        np.testing.assert_array_equal(a.weight, b.weight)

    def test_distinct_seeds_give_distinct_weights(self):
        a = Linear(4, 3, seed=1)
        b = Linear(4, 3, seed=2)
        assert not np.allclose(a.weight, b.weight)

    def test_explicit_rng_still_wins(self):
        rng = np.random.default_rng(7)
        expected = np.random.default_rng(7).normal(
            0.0, np.sqrt(2.0 / 4), size=(4, 3)
        )
        layer = Linear(4, 3, rng=rng, seed=99)
        np.testing.assert_array_equal(layer.weight, expected)


class TestMlpDefaultInit:
    def test_default_construction_is_deterministic(self):
        a = MLP(4, [8], 2)
        b = MLP(4, [8], 2)
        for (name_a, val_a, _), (name_b, val_b, __) in zip(
            a.parameters(), b.parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(val_a, val_b)

    def test_same_shape_layers_draw_distinct_weights(self):
        # A single shared generator must feed all layers: a naive
        # per-layer seeded fallback would initialize same-shaped layers
        # identically and break symmetry.
        net = MLP(4, [4], 4)
        weights = {
            name: value for name, value, _ in net.parameters()
            if name.endswith("weight")
        }
        assert not np.allclose(weights["0.weight"], weights["2.weight"])

    def test_seed_param_threads_through(self):
        a = MLP(3, [5], 2, seed=11)
        b = MLP(3, [5], 2, seed=11)
        c = MLP(3, [5], 2, seed=12)
        np.testing.assert_array_equal(
            a.layers[0].weight, b.layers[0].weight
        )
        assert not np.allclose(a.layers[0].weight, c.layers[0].weight)

    def test_state_dict_round_trip_unaffected(self):
        net = MLP(3, [4], 2)
        clone = MLP(3, [4], 2)
        clone.load_state_dict(net.state_dict())
        x = np.ones((2, 3))
        np.testing.assert_allclose(clone.predict(x), net.predict(x))

"""Tests for repro.learn.layers — shapes, gradients, parameter plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn.layers import Linear, ReLU, Sequential


def finite_difference_grad(f, x, eps=1e-6):
    """Numerical gradient of scalar f at x (same shape as x)."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        up = f()
        x[idx] = orig - eps
        down = f()
        x[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_1d_input_promoted(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.ones(4))
        assert out.shape == (1, 3)

    def test_forward_is_affine(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight + layer.bias
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_wrong_width_rejected(self):
        layer = Linear(4, 3)
        with pytest.raises(ValueError, match="expected input width"):
            layer.forward(np.ones((2, 5)))

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ValueError):
            Linear(0, 3)
        with pytest.raises(ValueError):
            Linear(3, -1)

    def test_backward_before_forward_raises(self):
        layer = Linear(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_parameters_exposes_live_arrays(self):
        layer = Linear(2, 3)
        params = dict((n, v) for n, v, _ in layer.parameters())
        assert params["weight"] is layer.weight
        assert params["bias"] is layer.bias

    def test_zero_grad_resets(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        layer.forward(np.ones((3, 2)))
        layer.backward(np.ones((3, 2)))
        assert np.any(layer.grad_weight != 0)
        layer.zero_grad()
        assert np.all(layer.grad_weight == 0)
        assert np.all(layer.grad_bias == 0)

    def test_weight_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float(layer.forward(x).sum())

        layer.zero_grad()
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        numeric = finite_difference_grad(loss, layer.weight)
        np.testing.assert_allclose(layer.grad_weight, numeric, atol=1e-5)

    def test_bias_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(2)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float(layer.forward(x).sum())

        layer.zero_grad()
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        numeric = finite_difference_grad(loss, layer.bias)
        np.testing.assert_allclose(layer.grad_bias, numeric, atol=1e-5)

    def test_input_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(3)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(2, 3))

        def loss():
            return float(layer.forward(x).sum())

        layer.forward(x)
        grad_in = layer.backward(np.ones((2, 2)))
        numeric = finite_difference_grad(loss, x)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-5)

    def test_he_initialization_scale(self):
        layer = Linear(1000, 10, rng=np.random.default_rng(0))
        observed = layer.weight.std()
        expected = np.sqrt(2.0 / 1000)
        assert abs(observed - expected) / expected < 0.1

    def test_gradients_accumulate_across_backward_calls(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        x = np.ones((1, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        first = layer.grad_weight.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        np.testing.assert_allclose(layer.grad_weight, 2 * first)


class TestReLU:
    def test_forward_clamps_negatives(self):
        relu = ReLU()
        out = relu.forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_backward_masks_gradient(self):
        relu = ReLU()
        relu.forward(np.array([-1.0, 3.0]))
        grad = relu.backward(np.array([5.0, 7.0]))
        np.testing.assert_array_equal(grad, [0.0, 7.0])

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones(3))

    def test_no_parameters(self):
        assert list(ReLU().parameters()) == []

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    def test_output_nonnegative(self, values):
        out = ReLU().forward(np.array(values))
        assert np.all(out >= 0)

    @given(st.lists(st.floats(0.001, 100), min_size=1, max_size=30))
    def test_identity_on_positive(self, values):
        x = np.array(values)
        np.testing.assert_array_equal(ReLU().forward(x), x)


class TestSequential:
    def test_composition(self):
        rng = np.random.default_rng(0)
        l1, l2 = Linear(3, 4, rng=rng), Linear(4, 2, rng=rng)
        seq = Sequential([l1, ReLU(), l2])
        x = rng.normal(size=(5, 3))
        manual = l2.forward(np.maximum(l1.forward(x), 0.0))
        np.testing.assert_allclose(seq.forward(x), manual)

    def test_parameter_names_are_prefixed(self):
        seq = Sequential([Linear(2, 2), ReLU(), Linear(2, 1)])
        names = [n for n, _, __ in seq.parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_end_to_end_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(4)
        seq = Sequential([Linear(3, 5, rng=rng), ReLU(), Linear(5, 1, rng=rng)])
        x = rng.normal(size=(4, 3))

        def loss():
            return float(seq.forward(x).sum())

        seq.zero_grad()
        seq.forward(x)
        seq.backward(np.ones((4, 1)))
        for name, value, grad in seq.parameters():
            numeric = finite_difference_grad(loss, value)
            np.testing.assert_allclose(
                grad, numeric, atol=1e-5, err_msg=f"gradient mismatch at {name}"
            )

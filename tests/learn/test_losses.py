"""Tests for repro.learn.losses — values, gradients, sample weighting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.learn.losses import (
    HuberLoss,
    MeanSquaredError,
    SoftmaxCrossEntropy,
    log_softmax,
    softmax,
)


class TestSoftmaxHelpers:
    def test_softmax_rows_sum_to_one(self):
        p = softmax(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        p = softmax(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.all(np.isfinite(p))
        np.testing.assert_allclose(p[0, :2], 0.5, atol=1e-9)

    def test_log_softmax_consistent_with_softmax(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(np.exp(log_softmax(logits)), softmax(logits))

    @given(
        st.lists(
            st.lists(st.floats(-50, 50), min_size=3, max_size=3),
            min_size=1,
            max_size=10,
        )
    )
    def test_softmax_nonnegative_normalized(self, rows):
        p = softmax(np.array(rows))
        assert np.all(p >= 0)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-9)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0, 0.0]])
        value, _ = loss_fn(logits, np.array([0]))
        assert value < 1e-6

    def test_uniform_prediction_loss_is_log_k(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.zeros((4, 8))
        value, _ = loss_fn(logits, np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(value, np.log(8), rtol=1e-9)

    def test_gradient_is_softmax_minus_onehot(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.random.default_rng(0).normal(size=(3, 4))
        _, grad = loss_fn(logits, np.array([1, 0, 3]))
        p = softmax(logits)
        expected = p.copy()
        expected[np.arange(3), [1, 0, 3]] -= 1.0
        np.testing.assert_allclose(grad, expected / 3.0)

    def test_gradient_matches_finite_difference(self):
        loss_fn = SoftmaxCrossEntropy()
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(2, 5))
        target = np.array([2, 4])
        _, grad = loss_fn(logits, target)
        eps = 1e-6
        for i in range(2):
            for j in range(5):
                up = logits.copy()
                up[i, j] += eps
                down = logits.copy()
                down[i, j] -= eps
                numeric = (loss_fn(up, target)[0] - loss_fn(down, target)[0]) / (
                    2 * eps
                )
                assert abs(grad[i, j] - numeric) < 1e-6

    def test_out_of_range_target_rejected(self):
        loss_fn = SoftmaxCrossEntropy()
        with pytest.raises(ValueError, match="targets must lie"):
            loss_fn(np.zeros((1, 3)), np.array([3]))
        with pytest.raises(ValueError, match="targets must lie"):
            loss_fn(np.zeros((1, 3)), np.array([-1]))

    def test_target_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(np.zeros((2, 3)), np.array([0]))

    def test_sample_weights_tilt_loss(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.array([[5.0, 0.0], [0.0, 5.0]])
        targets = np.array([1, 1])  # first sample is wrong, second right
        unweighted, _ = loss_fn(logits, targets)
        emphasize_wrong, _ = loss_fn(logits, targets, np.array([10.0, 1.0]))
        emphasize_right, _ = loss_fn(logits, targets, np.array([1.0, 10.0]))
        assert emphasize_wrong > unweighted > emphasize_right

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(
                np.zeros((2, 3)), np.array([0, 1]), np.zeros(2)
            )

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(
                np.zeros((2, 3)), np.array([0, 1]), np.array([1.0, -1.0])
            )


class TestMeanSquaredError:
    def test_zero_at_exact_fit(self):
        value, grad = MeanSquaredError()(np.ones((3, 2)), np.ones((3, 2)))
        assert value == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_value(self):
        value, _ = MeanSquaredError()(
            np.array([[2.0]]), np.array([[0.0]])
        )
        assert value == pytest.approx(4.0)

    def test_gradient_matches_finite_difference(self):
        loss_fn = MeanSquaredError()
        rng = np.random.default_rng(3)
        out = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        _, grad = loss_fn(out, target)
        eps = 1e-6
        for i in range(3):
            for j in range(2):
                up = out.copy()
                up[i, j] += eps
                down = out.copy()
                down[i, j] -= eps
                numeric = (
                    loss_fn(up, target)[0] - loss_fn(down, target)[0]
                ) / (2 * eps)
                assert abs(grad[i, j] - numeric) < 1e-6


class TestHuberLoss:
    def test_quadratic_inside_delta(self):
        value, _ = HuberLoss(delta=1.0)(np.array([[0.5]]), np.array([[0.0]]))
        assert value == pytest.approx(0.125)

    def test_linear_outside_delta(self):
        value, _ = HuberLoss(delta=1.0)(np.array([[3.0]]), np.array([[0.0]]))
        assert value == pytest.approx(1.0 * (3.0 - 0.5))

    def test_gradient_bounded_by_delta(self):
        _, grad = HuberLoss(delta=1.0)(
            np.array([[100.0], [-100.0]]), np.zeros((2, 1))
        )
        assert np.all(np.abs(grad) <= 1.0)

    def test_invalid_delta_rejected(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)

    def test_gradient_matches_finite_difference(self):
        loss_fn = HuberLoss(delta=0.7)
        rng = np.random.default_rng(4)
        out = rng.normal(size=(4, 1)) * 2
        target = rng.normal(size=(4, 1))
        _, grad = loss_fn(out, target)
        eps = 1e-6
        for i in range(4):
            up = out.copy()
            up[i, 0] += eps
            down = out.copy()
            down[i, 0] -= eps
            numeric = (loss_fn(up, target)[0] - loss_fn(down, target)[0]) / (
                2 * eps
            )
            assert abs(grad[i, 0] - numeric) < 1e-5

"""Tests for repro.learn.network — MLP architecture and serialization."""

import numpy as np
import pytest

from repro.learn.network import MLP


class TestArchitecture:
    def test_two_hidden_layer_shape(self):
        # The TTP's architecture: 22 -> 64 -> 64 -> 21 (§4.5).
        net = MLP(22, [64, 64], 21, rng=np.random.default_rng(0))
        out = net.predict(np.zeros((3, 22)))
        assert out.shape == (3, 21)

    def test_linear_model_when_no_hidden(self):
        net = MLP(4, [], 2, rng=np.random.default_rng(0))
        # A purely linear model: f(a+b) = f(a) + f(b) - f(0).
        a = np.array([[1.0, 2.0, 0.0, 0.0]])
        b = np.array([[0.0, 0.0, 3.0, -1.0]])
        zero = np.zeros((1, 4))
        np.testing.assert_allclose(
            net.predict(a + b), net.predict(a) + net.predict(b) - net.predict(zero)
        )

    def test_predict_proba_normalized(self):
        net = MLP(5, [8], 4, rng=np.random.default_rng(1))
        p = net.predict_proba(np.random.default_rng(2).normal(size=(6, 5)))
        assert p.shape == (6, 4)
        assert np.all(p >= 0)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_parameter_count(self):
        net = MLP(22, [64, 64], 21)
        n_params = sum(v.size for _, v, __ in net.parameters())
        expected = 22 * 64 + 64 + 64 * 64 + 64 + 64 * 21 + 21
        assert n_params == expected


class TestSerialization:
    def test_round_trip_preserves_outputs(self, tmp_path):
        net = MLP(6, [16], 3, rng=np.random.default_rng(0))
        path = tmp_path / "model.json"
        net.save(path)
        loaded = MLP.load(path)
        x = np.random.default_rng(1).normal(size=(4, 6))
        np.testing.assert_allclose(loaded.predict(x), net.predict(x))

    def test_load_state_dict_architecture_mismatch(self):
        a = MLP(4, [8], 2)
        b = MLP(4, [16], 2)
        with pytest.raises(ValueError, match="architecture mismatch"):
            b.load_state_dict(a.state_dict())

    def test_load_state_dict_shape_check(self):
        a = MLP(4, [8], 2)
        state = a.state_dict()
        state["weights"]["0.weight"] = [[0.0]]
        with pytest.raises(ValueError, match="shape mismatch"):
            a.load_state_dict(state)

    def test_missing_parameter_rejected(self):
        a = MLP(4, [8], 2)
        state = a.state_dict()
        del state["weights"]["0.bias"]
        with pytest.raises(ValueError, match="missing parameter"):
            a.load_state_dict(state)

    def test_copy_is_independent(self):
        net = MLP(3, [4], 2, rng=np.random.default_rng(0))
        clone = net.copy()
        x = np.ones((1, 3))
        np.testing.assert_allclose(clone.predict(x), net.predict(x))
        # Mutating the original must not affect the copy (the staleness
        # ablation relies on frozen snapshots, §4.6).
        for _, value, __ in net.parameters():
            value += 1.0
        assert not np.allclose(clone.predict(x), net.predict(x))

    def test_state_dict_is_json_serializable(self):
        import json

        net = MLP(3, [4], 2)
        json.dumps(net.state_dict())  # must not raise

"""Tests for repro.learn.optim — SGD and Adam behaviour."""

import numpy as np
import pytest

from repro.learn.layers import Linear, Sequential
from repro.learn.losses import MeanSquaredError
from repro.learn.optim import SGD, Adam


def quadratic_step(optimizer, layer, target):
    """One optimization step on ||Wx - target||^2 with x = ones."""
    x = np.ones((1, layer.in_features))
    out = layer.forward(x)
    _, grad = MeanSquaredError()(out, target)
    optimizer.zero_grad()
    layer.backward(grad)
    optimizer.step()
    return float(((out - target) ** 2).mean())


class TestSGD:
    def test_reduces_loss_on_quadratic(self):
        layer = Linear(2, 1, rng=np.random.default_rng(0))
        opt = SGD(layer, lr=0.1)
        target = np.array([[3.0]])
        losses = [quadratic_step(opt, layer, target) for _ in range(50)]
        assert losses[-1] < losses[0] * 0.01

    def test_momentum_converges(self):
        layer = Linear(2, 1, rng=np.random.default_rng(0))
        opt = SGD(layer, lr=0.05, momentum=0.9)
        target = np.array([[3.0]])
        losses = [quadratic_step(opt, layer, target) for _ in range(80)]
        assert losses[-1] < 1e-3

    def test_weight_decay_shrinks_weights(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        layer.weight[...] = 10.0
        opt = SGD(layer, lr=0.1, weight_decay=0.5)
        # No data gradient: only decay acts.
        opt.zero_grad()
        opt.step()
        assert np.all(np.abs(layer.weight) < 10.0)

    def test_invalid_hyperparameters_rejected(self):
        layer = Linear(2, 2)
        with pytest.raises(ValueError):
            SGD(layer, lr=0.0)
        with pytest.raises(ValueError):
            SGD(layer, lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(layer, lr=0.1, weight_decay=-1.0)

    def test_step_without_gradient_is_noop(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        before = layer.weight.copy()
        opt = SGD(layer, lr=0.1)
        opt.zero_grad()
        opt.step()
        np.testing.assert_array_equal(layer.weight, before)


class TestAdam:
    def test_reduces_loss_on_quadratic(self):
        layer = Linear(2, 1, rng=np.random.default_rng(0))
        opt = Adam(layer, lr=0.1)
        target = np.array([[3.0]])
        losses = [quadratic_step(opt, layer, target) for _ in range(100)]
        assert losses[-1] < losses[0] * 0.01

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the first Adam step is ~lr in each coord.
        layer = Linear(1, 1, rng=np.random.default_rng(0))
        before = layer.weight.copy()
        opt = Adam(layer, lr=0.01)
        layer.forward(np.ones((1, 1)))
        layer.backward(np.ones((1, 1)))
        opt.step()
        delta = np.abs(layer.weight - before)
        np.testing.assert_allclose(delta, 0.01, rtol=1e-3)

    def test_invalid_betas_rejected(self):
        layer = Linear(2, 2)
        with pytest.raises(ValueError):
            Adam(layer, beta1=1.0)
        with pytest.raises(ValueError):
            Adam(layer, beta2=-0.1)

    def test_handles_multi_layer_model(self):
        from repro.learn.layers import ReLU

        rng = np.random.default_rng(1)
        model = Sequential([Linear(3, 8, rng=rng), ReLU(), Linear(8, 1, rng=rng)])
        opt = Adam(model, lr=0.01)
        x = rng.normal(size=(16, 3))
        y = (x.sum(axis=1, keepdims=True) > 0).astype(float)
        losses = []
        for _ in range(150):
            out = model.forward(x)
            value, grad = MeanSquaredError()(out, y)
            opt.zero_grad()
            model.backward(grad)
            opt.step()
            losses.append(value)
        assert losses[-1] < losses[0] * 0.2

"""Tests for repro.learn.training — datasets, trainer, early stopping."""

import numpy as np
import pytest

from repro.learn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.learn.network import MLP
from repro.learn.optim import Adam
from repro.learn.training import Dataset, Trainer


def toy_classification(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    return Dataset(x, y)


class TestDataset:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(2))

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(3), np.ones(2))

    def test_subset(self):
        ds = Dataset(np.arange(10).reshape(5, 2), np.arange(5), np.ones(5))
        sub = ds.subset(np.array([0, 2]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.targets, [0, 2])

    def test_split_sizes(self):
        ds = toy_classification(100)
        train, val = ds.split(0.25, np.random.default_rng(0))
        assert len(train) == 75
        assert len(val) == 25

    def test_split_disjoint_and_complete(self):
        ds = Dataset(np.arange(20).reshape(10, 2), np.arange(10))
        train, val = ds.split(0.3, np.random.default_rng(1))
        combined = sorted(list(train.targets) + list(val.targets))
        assert combined == list(range(10))

    def test_split_invalid_fraction(self):
        ds = toy_classification(10)
        with pytest.raises(ValueError):
            ds.split(0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            ds.split(1.0, np.random.default_rng(0))

    def test_concatenate(self):
        a = toy_classification(10, seed=0)
        b = toy_classification(20, seed=1)
        merged = Dataset.concatenate([a, b])
        assert len(merged) == 30

    def test_concatenate_mixed_weights(self):
        a = Dataset(np.zeros((2, 1)), np.zeros(2), np.full(2, 0.5))
        b = Dataset(np.zeros((3, 1)), np.zeros(3))  # no weights -> 1.0
        merged = Dataset.concatenate([a, b])
        np.testing.assert_array_equal(merged.weights, [0.5, 0.5, 1, 1, 1])

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            Dataset.concatenate([])


class TestTrainer:
    def test_learns_linearly_separable_problem(self):
        ds = toy_classification(300)
        net = MLP(2, [16], 2, rng=np.random.default_rng(0))
        trainer = Trainer(
            net,
            SoftmaxCrossEntropy(),
            optimizer=Adam(net, lr=1e-2),
            epochs=30,
            seed=0,
        )
        report = trainer.fit(ds)
        predictions = net.predict_proba(ds.features).argmax(axis=1)
        accuracy = (predictions == ds.targets).mean()
        assert accuracy > 0.95
        assert report.train_losses[-1] < report.train_losses[0]

    def test_early_stopping_triggers(self):
        ds = toy_classification(120)
        train, val = ds.split(0.25, np.random.default_rng(0))
        net = MLP(2, [8], 2, rng=np.random.default_rng(0))
        trainer = Trainer(
            net,
            SoftmaxCrossEntropy(),
            optimizer=Adam(net, lr=1e-2),
            epochs=200,
            patience=3,
            seed=0,
        )
        report = trainer.fit(train, validation=val)
        assert report.epochs_run < 200
        assert report.stopped_early

    def test_best_validation_weights_restored(self):
        ds = toy_classification(120)
        train, val = ds.split(0.25, np.random.default_rng(0))
        net = MLP(2, [8], 2, rng=np.random.default_rng(0))
        trainer = Trainer(
            net, SoftmaxCrossEntropy(), epochs=60, patience=5, seed=0
        )
        report = trainer.fit(train, validation=val)
        final_val = trainer.evaluate(val)
        assert final_val <= min(report.validation_losses) + 1e-9

    def test_sample_weighting_shifts_fit(self):
        # Two clusters with contradictory labels; weights decide which wins.
        x = np.array([[1.0, 0.0]] * 20 + [[1.0, 0.0]] * 20)
        y = np.array([0] * 20 + [1] * 20)
        weights = np.array([10.0] * 20 + [0.1] * 20)
        ds = Dataset(x, y, weights)
        net = MLP(2, [8], 2, rng=np.random.default_rng(0))
        Trainer(
            net,
            SoftmaxCrossEntropy(),
            optimizer=Adam(net, lr=1e-2),
            epochs=40,
            seed=0,
        ).fit(ds)
        predicted = net.predict_proba(np.array([[1.0, 0.0]]))[0].argmax()
        assert predicted == 0

    def test_regression_with_mse(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(200, 1))
        y = 3 * x + 1
        net = MLP(1, [], 1, rng=rng)
        trainer = Trainer(
            net,
            MeanSquaredError(),
            optimizer=Adam(net, lr=5e-2),
            epochs=100,
            seed=0,
        )
        trainer.fit(Dataset(x, y))
        pred = net.predict(np.array([[2.0]]))
        assert abs(pred[0, 0] - 7.0) < 0.3

    def test_invalid_hyperparameters(self):
        net = MLP(2, [], 2)
        with pytest.raises(ValueError):
            Trainer(net, SoftmaxCrossEntropy(), batch_size=0)
        with pytest.raises(ValueError):
            Trainer(net, SoftmaxCrossEntropy(), epochs=0)

    def test_deterministic_given_seed(self):
        def train_once():
            ds = toy_classification(100, seed=7)
            net = MLP(2, [8], 2, rng=np.random.default_rng(3))
            Trainer(net, SoftmaxCrossEntropy(), epochs=5, seed=11).fit(ds)
            return net.predict(np.ones((1, 2)))

        np.testing.assert_array_equal(train_once(), train_once())

# repro: module=fixturepkg.ckpt001_bad_field
"""BAD: a config field neither fingerprinted nor excluded.

With an exclusions entry declaring ``fingerprint`` as the coverage
function, CKPT001 fires on ``verbose`` — it is read by nothing and
excluded by nothing.
"""

from dataclasses import dataclass


@dataclass
class JobConfig:
    seed: int = 0
    depth: int = 2
    verbose: bool = False

    def fingerprint(self):
        return f"{self.seed}:{self.depth}"

# repro: module=fixturepkg.ckpt001_good_covered
"""GOOD: every field is either fingerprinted or explicitly excluded.

``seed`` and ``depth`` are attribute reads in ``fingerprint``; ``verbose``
is a string key in the serializer; ``workers`` is named in the exclusions
entry the test supplies.
"""

from dataclasses import dataclass


@dataclass
class JobConfig:
    seed: int = 0
    depth: int = 2
    verbose: bool = False
    workers: int = 1

    def fingerprint(self):
        return f"{self.seed}:{self.depth}:{self.to_dict()['verbose']}"

    def to_dict(self):
        return {"verbose": self.verbose}

# repro: module=fixturepkg.ckpt002_bad_nonlocal
"""BAD: a nonlocal cell mutated during the run never reaches the checkpoint.

``commits`` is written by the nested ``commit`` closure but the
``FleetCheckpoint`` construction only threads ``next_session_id`` —
resume would silently reset the counter.  CKPT002 fires at the
``nonlocal`` statement.
"""

from repro.fleet.checkpoint import FleetCheckpoint


def drive(fingerprint, sink, total):
    commits = 0
    next_session_id = 0

    def commit(delta):
        nonlocal commits, next_session_id
        commits += 1
        next_session_id = delta + 1

    for i in range(total):
        commit(i)
    return FleetCheckpoint(
        fingerprint=fingerprint,
        next_session_id=next_session_id,
        sink=sink,
    )

# repro: module=fixturepkg.ckpt002_good_extra
"""GOOD: every mutated nonlocal cell is threaded into the checkpoint.

``commits`` and ``next_session_id`` both appear in the constructor's
argument expressions (``extra={...}`` counts), so CKPT002 stays silent.
"""

from repro.fleet.checkpoint import FleetCheckpoint


def drive(fingerprint, sink, total):
    commits = 0
    next_session_id = 0

    def commit(delta):
        nonlocal commits, next_session_id
        commits += 1
        next_session_id = delta + 1

    for i in range(total):
        commit(i)
    return FleetCheckpoint(
        fingerprint=fingerprint,
        next_session_id=next_session_id,
        sink=sink,
        extra={"commits": commits},
    )

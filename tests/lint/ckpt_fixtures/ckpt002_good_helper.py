# repro: module=fixturepkg.ckpt002_good_helper
"""GOOD: checkpoint state assembled by a helper the constructor calls.

The ``extra=state()`` argument invokes the nested ``state`` helper, whose
body references ``commits`` — helper-following marks it covered.
"""

from repro.fleet.checkpoint import FleetCheckpoint


def drive(fingerprint, sink, total):
    commits = 0

    def commit(delta):
        nonlocal commits
        commits += 1

    def state():
        return {"commits": commits}

    for i in range(total):
        commit(i)
    return FleetCheckpoint(
        fingerprint=fingerprint,
        next_session_id=total,
        sink=sink,
        extra=state(),
    )

# repro: module=fixturepkg.seed001_bad_mul_add
"""BAD: arithmetic seed derivation over free indices, no domain separation.

Static: SEED001 at each ``seed * p + index`` derivation.
Dynamic: ``root(7, 3, 3)`` materializes the same derived seed at two
distinct ``default_rng`` sites — the duplicate-seed registry trips.
"""

import numpy as np


def root(seed, i, j):
    rng_a = np.random.default_rng(seed * 1_000_003 + i)
    rng_b = np.random.default_rng(seed * 1_000_003 + j)
    return float(rng_a.random()) + float(rng_b.random())

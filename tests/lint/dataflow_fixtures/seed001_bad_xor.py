# repro: module=fixturepkg.seed001_bad_xor
"""BAD: XOR-style seed derivation over free variables.

Static: SEED001 (XOR is a BinOp derivation like any other arithmetic).
Dynamic: XOR commutes, so ``root(0, 4, 4)`` collides the two streams and
the duplicate-seed registry trips.
"""

import numpy as np


def root(seed, stream, index):
    rng_a = np.random.default_rng(seed ^ index)
    rng_b = np.random.default_rng(seed ^ stream)
    return float(rng_a.random()) + float(rng_b.random())

# repro: module=fixturepkg.seed001_good_tuple
"""GOOD: tuple seeds with distinct stream constants per consumer.

Static: clean — the folds carry int-literal domain constants.
Dynamic: clean even for equal indices — the constants keep the
materialized tuples distinct.
"""

import numpy as np


def root(seed, i, j):
    rng_a = np.random.default_rng((seed, 0x51, i))
    rng_b = np.random.default_rng((seed, 0x52, j))
    return float(rng_a.random()) + float(rng_b.random())

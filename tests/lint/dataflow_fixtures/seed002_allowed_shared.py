# repro: module=fixturepkg.seed002_allowed_shared
"""WAIVED: an intentionally shared stream, pacified on both sides.

Static: the SEED002 finding attributes to the derivation line, where the
allow comment suppresses it.  Dynamic: the duplicate materialization site
carries the same comment, which the runtime registry honours.
"""

import numpy as np


def root(seed):
    # repro: allow-SEED002(mirrored-arm stream: both arms must draw identical noise by design)
    shared = seed + 41
    rng_a = np.random.default_rng(shared)
    # repro: allow-SEED002(mirrored-arm stream: both arms must draw identical noise by design)
    rng_b = np.random.default_rng(shared)
    return float(rng_a.random()) + float(rng_b.random())

# repro: module=fixturepkg.seed002_bad_module_fn
"""BAD: a const-only derivation shared between a local sink and a helper.

Static: SEED002 only — the derivation has no free variables (so SEED001
stays silent), but the value reaches two independent sinks (one through
interprocedural inlining of ``_score``).
Dynamic: the same value materializes at two distinct ``default_rng``
sites — the duplicate-seed registry trips.
"""

import numpy as np


def _score(seed):
    rng = np.random.default_rng(seed)
    return float(rng.random())


def root(seed):
    derived = seed + 41
    rng = np.random.default_rng(derived)
    return float(rng.random()) + _score(derived)

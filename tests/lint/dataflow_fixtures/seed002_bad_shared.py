# repro: module=fixturepkg.seed002_bad_shared
"""BAD: one derived seed reaches a sink and an RNG-consuming class.

Static: SEED002 (two independent consumers of one derivation) and SEED001
(the derivation folds the free index ``i``).
Dynamic: ``_Sampler.__init__`` materializes the same seed value at a
second ``default_rng`` site — the duplicate-seed registry trips.
"""

import numpy as np


class _Sampler:
    def __init__(self, seed):
        self._rng = np.random.default_rng(seed)

    def draw(self):
        return float(self._rng.random())


def root(seed, i):
    derived_seed = seed + 1000 * i
    rng = np.random.default_rng(derived_seed)
    sampler = _Sampler(derived_seed)
    return float(rng.random()) + sampler.draw()

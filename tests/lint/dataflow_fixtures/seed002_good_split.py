# repro: module=fixturepkg.seed002_good_split
"""GOOD: each consumer gets its own domain-separated tuple seed.

Static: clean.  Dynamic: clean — the stream constants keep the two
materialized tuples distinct.
"""

import numpy as np


def _score(seed):
    rng = np.random.default_rng(seed)
    return float(rng.random())


def root(seed):
    rng = np.random.default_rng((seed, 0xA1))
    return float(rng.random()) + _score((seed, 0xB2))

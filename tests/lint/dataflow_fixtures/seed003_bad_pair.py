# repro: module=fixturepkg.seed003_bad_pair
"""BAD: tuple folds without a domain-separation constant.

Static: SEED003 at each ``(seed, i)``-style fold.
Dynamic: the two folds permute the same values, so ``root(6, 6)``
materializes one tuple at two distinct sites — the registry trips.
"""

import numpy as np


def root(seed, i):
    rng_a = np.random.default_rng((seed, i))
    rng_b = np.random.default_rng((i, seed))
    return float(rng_a.random()) + float(rng_b.random())

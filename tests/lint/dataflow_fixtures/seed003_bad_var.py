# repro: module=fixturepkg.seed003_bad_var
"""BAD: a constant-free tuple fold held in an intermediate variable.

Static: SEED003 at both fold sites (the variable carries the fold taint).
Dynamic: ``root(2, 2)`` materializes the same tuple at two distinct
sites — the registry trips.
"""

import numpy as np


def root(seed, i):
    key = (seed, i)
    rng_a = np.random.default_rng(key)
    rng_b = np.random.default_rng((i, seed))
    return float(rng_a.random()) + float(rng_b.random())

# repro: module=fixturepkg.seed003_good_const
"""GOOD: tuple folds carrying module-level stream constants.

Static: clean — ``_STREAM_A``/``_STREAM_B`` are module-level int bindings
and count as domain-separation constants.  Dynamic: clean for any index.
"""

import numpy as np

_STREAM_A = 0x5A
_STREAM_B = 0x5B


def root(seed, i):
    rng_a = np.random.default_rng((seed, _STREAM_A, i))
    rng_b = np.random.default_rng((seed, _STREAM_B, i))
    return float(rng_a.random()) + float(rng_b.random())

# repro: module=fixturepkg.seed004_bad_forkmap
"""BAD: a constructed Generator crosses ``fork_map``.

Static: SEED004 — the payload tuple carries a generator lineage into the
process boundary.  Dynamic: the ``fork_map`` tripwire scans the payload
structure and trips, even on the serial ``workers=1`` fallback.
(The module attribute is read at call time so the sanitizer's patch is
seen; a ``from ... import fork_map`` would bind the original early.)
"""

import numpy as np

from repro.experiment import parallel


def _work(payload, item):
    rng, base = payload
    return float(rng.random()) + base + item


def root(seed):
    rng = np.random.default_rng((seed, 0x77))
    return parallel.fork_map(_work, (rng, 0.5), range(2), workers=1)

# repro: module=fixturepkg.seed004_bad_pool
"""BAD (static-only): a Generator passed through a pool-style method.

Static: SEED004 — ``apply_async`` is a pool-style boundary on any
receiver.  Dynamic: silent — the runtime tripwire only covers the real
``fork_map`` entrypoint, the documented static over-approximation.
"""

import numpy as np


class _FakePool:
    def apply_async(self, fn, args):
        return fn(*args)


def _work(rng):
    return float(rng.random())


def root(seed):
    rng = np.random.default_rng((seed, 0x88))
    pool = _FakePool()
    return pool.apply_async(_work, (rng,))

# repro: module=fixturepkg.seed004_good_tuple
"""GOOD: the seed crosses ``fork_map`` as a value; workers rebuild RNGs.

Static: clean — no generator lineage reaches the boundary, and the
worker-side fold carries a stream constant.  Dynamic: clean — every
worker materializes a distinct tuple seed.
"""

import numpy as np

from repro.experiment import parallel


def _work(payload, item):
    seed, base = payload
    rng = np.random.default_rng((seed, 0x99, item))
    return float(rng.random()) + base


def root(seed):
    return parallel.fork_map(_work, (seed, 0.5), range(2), workers=1)

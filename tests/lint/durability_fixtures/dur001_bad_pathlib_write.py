# repro: module=durfix.dur001_bad_pathlib_write
"""BAD: ``Path.write_text`` on a durable path.

Static: DUR001 (the pathlib spelling of the raw write).  Dynamic:
``write_text`` truncates then writes — the crash state between the two
is an empty file.
"""

import json


def setup(base):
    (base / "state.json").write_text(json.dumps({"value": 1}))


def root(base):
    (base / "state.json").write_text(json.dumps({"value": 2}))


def consistent(base):
    path = base / "state.json"
    if not path.exists():
        return False
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return False
    return data.get("value") in (1, 2)

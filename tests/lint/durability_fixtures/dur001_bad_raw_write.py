# repro: module=durfix.dur001_bad_raw_write
"""BAD: raw ``open(..., "w")`` on a durable path.

Static: DUR001.  Dynamic: the power cut lands between the
truncate-on-open and the write reaching the disk, leaving an empty
``state.json`` — neither the old nor the new version survives.
"""

import json


def setup(base):
    (base / "state.json").write_text(json.dumps({"value": 1}))


def root(base):
    with open(base / "state.json", "w") as f:
        f.write(json.dumps({"value": 2}))


def consistent(base):
    path = base / "state.json"
    if not path.exists():
        return False
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return False
    return data.get("value") in (1, 2)

# repro: module=durfix.dur001_good_helper
"""GOOD: the durable write goes through the blessed atomic helper.

Static: silent (the call is a HELPER effect).  Dynamic: every crash
state holds either the complete old version or the complete new one.
"""

import json

from repro.atomio import atomic_write_text


def setup(base):
    (base / "state.json").write_text(json.dumps({"value": 1}))


def root(base):
    atomic_write_text(base / "state.json", json.dumps({"value": 2}))


def consistent(base):
    path = base / "state.json"
    if not path.exists():
        return False
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return False
    return data.get("value") in (1, 2)

# repro: module=durfix.dur002_bad_fsync_after_rename
"""BAD: the file fsync happens *after* the rename publishes it.

Static: DUR002 (no file fsync at or before the rename line).  Dynamic:
between the rename and the late fsync there is a window where the
published ``state.json`` still has no data on disk.
"""

import json
import os


def setup(base):
    (base / "state.json").write_text(json.dumps({"value": 1}))


def root(base):
    tmp = base / "state.json.tmp"
    f = open(tmp, "w")
    f.write(json.dumps({"value": 2}))
    f.flush()
    os.replace(tmp, base / "state.json")
    os.fsync(f.fileno())
    f.close()


def consistent(base):
    path = base / "state.json"
    if not path.exists():
        return False
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return False
    return data.get("value") in (1, 2)

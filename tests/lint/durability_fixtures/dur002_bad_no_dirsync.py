# repro: module=durfix.dur002_bad_no_dirsync
"""BAD (static-only): correct file fsync, but no directory fsync.

Static: DUR002's second clause — the rename itself may not survive
power loss on filesystems that do not order directory updates.
Dynamic: the :class:`PowerLossSimulator` crash model deliberately
treats renames as immediately persistent (ext4-ordered semantics), so
this fixture produces NO torn state — the one documented static-only
over-approximation in the DUR family, mirroring the nonlocal-cell case
in the purity crosscheck.
"""

import json
import os


def setup(base):
    (base / "state.json").write_text(json.dumps({"value": 1}))


def root(base):
    tmp = base / "state.json.tmp"
    with open(tmp, "w") as f:
        f.write(json.dumps({"value": 2}))
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, base / "state.json")


def consistent(base):
    path = base / "state.json"
    if not path.exists():
        return False
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return False
    return data.get("value") in (1, 2)

# repro: module=durfix.dur002_bad_no_fsync
"""BAD: tmp+rename publish without fsyncing the written file first.

Static: DUR002 (no file fsync at or before the rename).  Dynamic: the
rename metadata persists immediately but the tmp file's data never got
an fsync, so the crash state publishes an empty ``state.json``.
"""

import json
import os


def setup(base):
    (base / "state.json").write_text(json.dumps({"value": 1}))


def root(base):
    tmp = base / "state.json.tmp"
    with open(tmp, "w") as f:
        f.write(json.dumps({"value": 2}))
    os.replace(tmp, base / "state.json")


def consistent(base):
    path = base / "state.json"
    if not path.exists():
        return False
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return False
    return data.get("value") in (1, 2)

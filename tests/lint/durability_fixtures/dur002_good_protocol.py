# repro: module=durfix.dur002_good_protocol
"""GOOD: the full publish protocol — file fsync, rename, directory fsync.

Static: silent.  Dynamic: every crash state holds a complete old or
new version.
"""

import json
import os


def setup(base):
    (base / "state.json").write_text(json.dumps({"value": 1}))


def root(base):
    tmp = base / "state.json.tmp"
    with open(tmp, "w") as f:
        f.write(json.dumps({"value": 2}))
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, base / "state.json")
    dir_fd = os.open(str(base), os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def consistent(base):
    path = base / "state.json"
    if not path.exists():
        return False
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return False
    return data.get("value") in (1, 2)

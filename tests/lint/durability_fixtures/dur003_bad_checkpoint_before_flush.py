# repro: module=durfix.dur003_bad_checkpoint_before_flush
"""BAD: the checkpoint lands before the archive rows it points into.

Static: DUR003 under the declared pair (first=``flush_rows``,
then=``save_marker``).  Dynamic: the durable marker records an offset
of rows the archive file does not yet hold — the fleet-checkpoint /
archive-flush invariant in miniature.
"""

import json
import os

from repro.atomio import atomic_write_text


def setup(base):
    (base / "rows.log").write_text("")


def save_marker(base, count):
    atomic_write_text(base / "marker.json", json.dumps({"rows": count}))


def flush_rows(base, rows):
    with open(base / "rows.log", "a") as f:
        for row in rows:
            f.write(row + "\n")
        f.flush()
        os.fsync(f.fileno())


def root(base):
    rows = ["row-1", "row-2"]
    save_marker(base, len(rows))
    flush_rows(base, rows)


def consistent(base):
    marker = base / "marker.json"
    if not marker.exists():
        return False
    try:
        recorded = json.loads(marker.read_text()).get("rows", 0)
    except ValueError:
        return False
    log = base / "rows.log"
    on_disk = len(log.read_text().splitlines()) if log.exists() else 0
    return on_disk >= recorded

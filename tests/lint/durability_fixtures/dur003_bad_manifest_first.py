# repro: module=durfix.dur003_bad_manifest_first
"""BAD: the manifest is durably written before the data it names.

Static: DUR003 under the declared pair (first=``write_blob``,
then=``write_index``).  Dynamic: both writes are individually atomic,
but a crash between them leaves a durable index naming a blob that does
not exist.
"""

import json

from repro.atomio import atomic_write_text


def setup(base):
    atomic_write_text(base / "index.json", json.dumps({"blobs": []}))


def write_index(base):
    atomic_write_text(base / "index.json", json.dumps({"blobs": ["blob-1"]}))


def write_blob(base):
    atomic_write_text(base / "blob-1", json.dumps({"payload": 42}))


def root(base):
    write_index(base)
    write_blob(base)


def consistent(base):
    index = base / "index.json"
    if not index.exists():
        return False
    try:
        data = json.loads(index.read_text())
    except ValueError:
        return False
    return all((base / name).exists() for name in data.get("blobs", []))

# repro: module=durfix.dur003_good_data_first
"""GOOD: the data lands durably before the pointer that names it.

Static: silent under the declared pair (first=``store_blob``,
then=``store_index``).  Dynamic: every crash state's index references
only blobs that exist.
"""

import json

from repro.atomio import atomic_write_text


def setup(base):
    atomic_write_text(base / "index.json", json.dumps({"blobs": []}))


def store_index(base):
    atomic_write_text(base / "index.json", json.dumps({"blobs": ["blob-1"]}))


def store_blob(base):
    atomic_write_text(base / "blob-1", json.dumps({"payload": 42}))


def root(base):
    store_blob(base)
    store_index(base)


def consistent(base):
    index = base / "index.json"
    if not index.exists():
        return False
    try:
        data = json.loads(index.read_text())
    except ValueError:
        return False
    return all((base / name).exists() for name in data.get("blobs", []))

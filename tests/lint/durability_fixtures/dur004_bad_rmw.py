# repro: module=durfix.dur004_bad_rmw
"""BAD: read-modify-write of a durable file through a raw rewrite.

Static: DUR004 (the same path expression is read and then
raw-rewritten in place).  Dynamic: the crash between truncate-on-open
and the write loses both the old and the new version.
"""

import json


def setup(base):
    (base / "counter.json").write_text(json.dumps({"count": 1}))


def root(base):
    target = base / "counter.json"
    with open(target) as f:
        data = json.loads(f.read())
    data["count"] += 1
    with open(target, "w") as f:
        f.write(json.dumps(data))


def consistent(base):
    path = base / "counter.json"
    if not path.exists():
        return False
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return False
    return data.get("count") in (1, 2)

# repro: module=durfix.dur004_bad_update_mode
"""BAD: in-place update-mode mutation of a durable file.

Static: DUR004 (``open(..., "r+")``).  Dynamic: the explicit mid-update
fsync stands in for the kernel's freedom to flush at any instant — the
enumerated crash state between the truncate and the rewrite holds an
empty file.
"""

import json
import os


def setup(base):
    (base / "counter.json").write_text(json.dumps({"count": 1}))


def root(base):
    with open(base / "counter.json", "r+") as f:
        data = json.loads(f.read())
        data["count"] += 1
        f.seek(0)
        f.truncate()
        # The kernel may flush the truncate before any new byte lands;
        # the explicit fsync surfaces that window to the crash model.
        os.fsync(f.fileno())
        f.write(json.dumps(data))
        f.flush()
        os.fsync(f.fileno())


def consistent(base):
    path = base / "counter.json"
    if not path.exists():
        return False
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return False
    return data.get("count") in (1, 2)

# repro: module=durfix.dur004_good_commit_section
"""GOOD: read-modify-write published through the atomic helper.

Static: silent (the read pairs with a HELPER effect, not a raw write).
Dynamic: every crash state holds the complete old or new counter.
"""

import json

from repro.atomio import atomic_write_text


def setup(base):
    (base / "counter.json").write_text(json.dumps({"count": 1}))


def root(base):
    target = base / "counter.json"
    with open(target) as f:
        data = json.loads(f.read())
    data["count"] += 1
    atomic_write_text(target, json.dumps(data))


def consistent(base):
    path = base / "counter.json"
    if not path.exists():
        return False
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return False
    return data.get("count") in (1, 2)

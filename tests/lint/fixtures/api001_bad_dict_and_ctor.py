"""BAD: dict literal and constructor-call defaults, incl. keyword-only."""


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts


def register(name, *, registry=dict()):
    registry[name] = True
    return registry


def dedupe(items, seen=set()):
    return [x for x in items if x not in seen]

"""BAD: mutable list default shared across calls."""


def collect(value, acc=[]):
    acc.append(value)
    return acc

"""GOOD: None sentinel (or immutable) defaults."""


def collect(value, acc=None):
    if acc is None:
        acc = []
    acc.append(value)
    return acc


def windowed(values, window=(0, 10), label="w"):
    lo, hi = window
    return [v for v in values if lo <= v < hi], label

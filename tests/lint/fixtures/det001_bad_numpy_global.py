"""BAD: legacy numpy.random module-level draws use the global RandomState."""
import numpy as np
from numpy.random import default_rng


def noise(n):
    np.random.seed(42)
    base = np.random.rand(n)
    return base + np.random.normal(size=n)


def fresh():
    return default_rng()

"""BAD: stdlib random module-level functions use a hidden global RNG."""
import random


def jitter(delay):
    return delay + random.uniform(0.0, 0.1)


def pick(options):
    random.shuffle(options)
    return random.choice(options)

"""BAD: default_rng() with no seed draws from OS entropy."""
import numpy as np


def init_weights(shape):
    rng = np.random.default_rng()
    return rng.normal(size=shape)

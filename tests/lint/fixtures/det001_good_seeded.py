"""GOOD: every generator is constructed from an explicit seed."""
import random

import numpy as np
from numpy.random import default_rng


def init_weights(shape, seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape)


def folded(config_seed, session_id):
    return np.random.default_rng((config_seed, session_id))


def stdlib_ok(seed):
    return random.Random(seed).random()


def from_import_ok(seed):
    return default_rng(seed)

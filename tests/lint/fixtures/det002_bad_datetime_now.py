# repro: module=repro.experiment.fake
"""BAD: wall-clock datetimes leaking into experiment state."""
from datetime import datetime


def session_day():
    return datetime.now().date()


def legacy_utc():
    return datetime.utcnow()

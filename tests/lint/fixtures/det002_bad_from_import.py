# repro: module=repro.net.fake
"""BAD: perf_counter imported by name is still a wall-clock read."""
from time import perf_counter


def measure(conn):
    start = perf_counter()
    conn.poll()
    return perf_counter() - start

# repro: module=repro.streaming.fake
"""BAD: stamping simulated records with the wall clock."""
import time


def stamp_record(record):
    record["time"] = time.time()
    return record

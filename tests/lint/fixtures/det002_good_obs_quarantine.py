# repro: module=repro.obs.fake_profiling
"""GOOD: wall-clock reads inside repro.obs are the quarantined profiling
surface — tagged nondeterministic and excluded from bit-identical dumps."""
import time


def span_start():
    return time.perf_counter()

# repro: module=repro.streaming.fake
"""GOOD: simulated time comes from the event loop, never the OS."""


def advance(clock_s, delta_s):
    return clock_s + delta_s


def stamp_record(record, now_s):
    record["time"] = now_s
    return record

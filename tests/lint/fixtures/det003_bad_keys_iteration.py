"""BAD: .keys() iteration feeding serialized output without sorted()."""


def serialize(metrics):
    lines = []
    for name in metrics.keys():
        lines.append(f"{name}={metrics[name]}")
    return "\n".join(lines)

"""BAD: iterating a set in hash order to assign session ids."""


def assign_ids(names):
    out = {}
    for index, name in enumerate(set(names)):
        out[name] = index
    return out


def listed(names):
    return [name.upper() for name in set(names)]

"""BAD: set algebra iterated without an ordering."""


def pending(scheduled, done):
    for name in set(scheduled) - set(done):
        yield name

"""GOOD: unordered collections are sorted (or consumed order-insensitively)
before anything order-sensitive sees them."""


def serialize(metrics):
    lines = []
    for name in sorted(metrics.keys()):
        lines.append(f"{name}={metrics[name]}")
    return "\n".join(lines)


def assign_ids(names):
    return {name: index for index, name in enumerate(sorted(set(names)))}


def total(values):
    return sum(v for v in set(values))


def membership(name, names):
    return name in set(names)


def insertion_ordered(metrics):
    # Plain dict iteration is insertion-ordered — deterministic when the
    # insertions are.
    return [name for name in metrics]

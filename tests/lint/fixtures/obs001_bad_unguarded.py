# repro: module=repro.streaming.fake
"""BAD: emission helpers called without the obs.ENABLED guard."""
from repro import obs


def on_chunk(size_bytes):
    obs.counter_inc("fake.chunks")
    obs.observe("fake.chunk_bytes", float(size_bytes))

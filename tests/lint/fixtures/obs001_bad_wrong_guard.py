# repro: module=repro.net.fake
"""BAD: guarded by an unrelated condition, not obs.ENABLED."""
from repro import obs


def on_loss(verbose, n):
    if verbose:
        obs.counter_inc("fake.losses")
    if n > 0:
        obs.emit("loss", time=0.0, count=n)

# repro: module=repro.streaming.fake
"""GOOD: every emission sits behind an obs.ENABLED branch (direct,
compound, or early-exit), and span/timed are exempt by design."""
from repro import obs


def on_chunk(size_bytes):
    if obs.ENABLED:
        obs.counter_inc("fake.chunks")
        obs.observe("fake.chunk_bytes", float(size_bytes))


def on_stall(stall_s):
    if stall_s > 0 and obs.ENABLED:
        obs.observe("fake.stall_s", stall_s)


def on_session_end(result):
    if not obs.ENABLED:
        return
    obs.counter_inc("fake.sessions")
    obs.emit("session_end", time=result.t, streams=result.n)


def planner(context):
    with obs.span("fake.plan"):
        return context.plan()

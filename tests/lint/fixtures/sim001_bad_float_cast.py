# repro: module=repro.core.fake
"""BAD: float(...) cast compared exactly in a condition."""


def check(bin_width, total):
    if float(total) == bin_width:
        return True
    return 1 if total / 2 == bin_width else 0

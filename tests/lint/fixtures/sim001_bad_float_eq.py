# repro: module=repro.net.fake
"""BAD: exact float equality steering a simulation branch."""


def on_tick(buffer_s, chunk_s):
    if buffer_s == 0.0:
        return "rebuffer"
    if buffer_s + chunk_s == 15.0:
        return "full"
    return "playing"

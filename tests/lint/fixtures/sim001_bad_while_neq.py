# repro: module=repro.streaming.fake
"""BAD: != on an accumulated float controls loop termination."""


def drain(level_s, step_s):
    while level_s != 0.0:
        level_s = max(level_s - step_s, 0.0)
    return level_s


def ratio_check(sent, acked):
    if float(acked) / float(sent) != 1.0:
        return "loss"
    return "clean"

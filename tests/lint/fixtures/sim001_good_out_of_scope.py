# repro: module=repro.analysis.fake
"""GOOD (scope): SIM001 only covers net/, streaming/, core/ — analysis
post-processing may compare exact sentinels."""


def is_sentinel(value):
    if value == -1.0:
        return True
    return False

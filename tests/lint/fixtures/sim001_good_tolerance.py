# repro: module=repro.net.fake
"""GOOD: tolerance comparisons, integer equality, and float compares
outside control flow are all fine."""
import math


def on_tick(buffer_s, chunks_sent, target):
    if abs(buffer_s - 0.0) < 1e-9:
        return "rebuffer"
    if chunks_sent == 0:
        return "cold"
    if math.isclose(buffer_s, target):
        return "full"
    return "playing"


def mask(values):
    # A float == outside a control-flow condition (vectorized masks) is not
    # a branch and is not flagged.
    return values == 0.0

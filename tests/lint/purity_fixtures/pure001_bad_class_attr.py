# repro: module=fixturepkg.pure001_bad_class_attr
"""BAD: the session root writes a class-level attribute.

Static: PURE001 (class attribute write).  Dynamic: in-module classes expose
their data attributes to the snapshot digest, so the write trips the guard.
"""


class SessionLog:
    last_session = None


def root(session_id):
    SessionLog.last_session = session_id
    return session_id

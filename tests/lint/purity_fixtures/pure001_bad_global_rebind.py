# repro: module=fixturepkg.pure001_bad_global_rebind
"""BAD: the session root rebinds a module global.

Static: PURE001 (global write).  Dynamic: the sanitizer's module-namespace
snapshot digest changes across the guard scope.
"""

_SESSIONS_RUN = 0


def root(session_id):
    global _SESSIONS_RUN
    _SESSIONS_RUN = _SESSIONS_RUN + 1
    return session_id * 2

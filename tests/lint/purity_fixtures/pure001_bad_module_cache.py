# repro: module=fixturepkg.pure001_bad_module_cache
"""BAD: the session root memoizes into a module-level dict.

Static: PURE001 (module-container mutation).  Dynamic: the snapshot digest
of the module namespace changes across the guard scope.
"""

_CACHE = {}


def root(session_id):
    if session_id not in _CACHE:
        _CACHE[session_id] = session_id * 3
    return _CACHE[session_id]

# repro: module=fixturepkg.pure001_bad_nonlocal_cell
"""BAD (static-only): a closure inside the root writes an enclosing cell.

PURE001 flags the ``nonlocal`` store.  There is no dynamic pair: the cell
dies with the root's frame, so the sanitizer correctly stays silent — this
fixture documents the static rule's deliberate over-approximation.
"""


def root(values):
    total = 0

    def add(value):
        nonlocal total
        total = total + value

    for value in values:
        add(value)
    return total

# repro: module=fixturepkg.pure002_bad_environ_write
"""BAD: the root mutates the process environment.

Static: PURE002 (``os.environ`` store).  Dynamic: the ``os.putenv`` audit
event trips inside the guard.
"""

import os


def root(session_id):
    os.environ["PURITY_FIXTURE_SESSION"] = str(session_id)
    return session_id

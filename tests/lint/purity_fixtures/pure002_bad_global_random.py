# repro: module=fixturepkg.pure002_bad_global_random
"""BAD: the root draws from the stdlib's hidden global RNG.

Static: PURE002 (``random.random``).  Dynamic: the patched module function
trips inside the guard.
"""

import random


def root(session_id):
    jitter = random.random()
    return session_id + jitter

# repro: module=fixturepkg.pure002_bad_numpy_global
"""BAD: the root draws from numpy's shared legacy RandomState.

Static: PURE002 (``numpy.random.rand``).  Dynamic: the patched module
function trips inside the guard.
"""

import numpy as np


def root(session_id):
    noise = np.random.rand()
    return session_id + noise

# repro: module=fixturepkg.pure002_bad_wallclock
"""BAD: the root reads the wall clock through a helper.

Static: PURE002 on the ``time.time()`` call, attributed through the call
graph (witness ``root -> _now``).  Dynamic: the patched ``time.time`` trips
inside the guard.
"""

import time


def _now():
    return time.time()


def root(session_id):
    return (session_id, _now())

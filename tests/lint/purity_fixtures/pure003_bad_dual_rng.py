# repro: module=fixturepkg.pure003_bad_dual_rng
"""BAD: the root accepts an RNG but also constructs its own, unseeded.

Static: PURE003 (RNG duality) and PURE002 (unseeded ``default_rng()``).
Dynamic: the unseeded-construction tripwire on ``numpy.random.default_rng``
fires inside the guard.
"""

import numpy as np


def root(session_id, rng):
    extra = np.random.default_rng()
    return float(rng.random()) + float(extra.random()) + session_id

# repro: module=fixturepkg.pure003_good_fallback
"""GOOD: the sanctioned optional-RNG fallback idiom.

``rng if rng is not None else default_rng(seed)`` is how the tree threads
optional generators; PURE003 exempts it and the construction is seeded.
"""

from numpy.random import default_rng


def root(session_id, rng=None):
    rng = rng if rng is not None else default_rng(session_id)
    return float(rng.random())

# repro: module=fixturepkg.pure_good_seeded
"""GOOD: the canonical pure session root.

Every draw comes from an RNG keyed on the session id; no module state is
touched.  Both the static pass and the sanitizer stay silent.
"""

import numpy as np


def root(session_id):
    rng = np.random.default_rng((1234, session_id))
    return float(rng.random()) + session_id

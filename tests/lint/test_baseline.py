"""Baseline round-trip: grandfather findings, fail only on new ones."""

import json
import textwrap

import pytest

from repro.lint import Baseline, lint_paths, refreshed_baseline

BAD_MODULE = """\
import time


def stamp():
    return time.time()
"""

WORSE_MODULE = BAD_MODULE + """\


def stamp_again():
    return time.time()
"""


@pytest.fixture
def bad_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(BAD_MODULE)
    return pkg


class TestBaselineRoundTrip:
    def test_write_then_apply_is_clean(self, bad_tree, tmp_path):
        dirty = lint_paths([bad_tree])
        assert not dirty.ok and len(dirty.findings) == 1

        baseline = refreshed_baseline([bad_tree])
        path = tmp_path / "baseline.json"
        baseline.write(path)

        clean = lint_paths([bad_tree], baseline=Baseline.load(path))
        assert clean.ok
        assert len(clean.baselined) == 1
        assert clean.baselined[0].baselined

    def test_new_finding_beyond_baseline_count_fails(self, bad_tree, tmp_path):
        path = tmp_path / "baseline.json"
        refreshed_baseline([bad_tree]).write(path)

        (bad_tree / "mod.py").write_text(WORSE_MODULE)
        report = lint_paths([bad_tree], baseline=Baseline.load(path))
        # Both calls share a fingerprint (identical source text), but the
        # baseline only allows one occurrence.
        assert not report.ok
        assert len(report.findings) == 1
        assert len(report.baselined) == 1

    def test_baseline_survives_line_shifts(self, bad_tree, tmp_path):
        path = tmp_path / "baseline.json"
        refreshed_baseline([bad_tree]).write(path)

        shifted = "# a new leading comment\n# another\n" + BAD_MODULE
        (bad_tree / "mod.py").write_text(shifted)
        report = lint_paths([bad_tree], baseline=Baseline.load(path))
        assert report.ok and len(report.baselined) == 1

    def test_file_format_is_versioned_and_sorted(self, bad_tree, tmp_path):
        path = tmp_path / "baseline.json"
        refreshed_baseline([bad_tree]).write(path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert list(data["findings"]) == sorted(data["findings"])
        assert all(count >= 1 for count in data["findings"].values())

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_suppressed_findings_do_not_consume_baseline(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(
            textwrap.dedent(
                """\
                import time

                t0 = time.time()  # repro: allow-DET002(startup banner)
                t1 = time.time()
                """
            )
        )
        baseline_path = tmp_path / "baseline.json"
        refreshed_baseline([pkg]).write(baseline_path)
        report = lint_paths([pkg], baseline=Baseline.load(baseline_path))
        assert report.ok
        assert len(report.suppressed) == 1
        assert len(report.baselined) == 1

"""Unit tests for the whole-program call graph (``repro.lint.callgraph``).

The graph is the substrate of the purity phase: these tests pin down the
resolution rules — local calls, imports and aliases, constructors, virtual
dispatch, the unknown-receiver name match and its blocklist — plus BFS
reachability and witness paths, independent of any lint rule.
"""

import textwrap

from repro.lint.callgraph import (
    NAME_MATCH_BLOCKLIST,
    CallGraph,
    build_graph,
)
from repro.lint.engine import parse_module


def _mod(module, source):
    path = module.replace(".", "/") + ".py"
    text = f"# repro: module={module}\n" + textwrap.dedent(source)
    return parse_module(text, path)


def _graph(*parsed):
    return CallGraph.build(parsed)


class TestResolution:
    def test_local_function_call_edge(self):
        graph = _graph(
            _mod(
                "pkg.a",
                """
                def helper():
                    return 1

                def entry():
                    return helper()
                """,
            )
        )
        assert graph.edges["pkg.a.entry"] == ("pkg.a.helper",)

    def test_from_import_call_resolves_to_origin_module(self):
        lib = _mod(
            "pkg.lib",
            """
            def compute():
                return 1
            """,
        )
        app = _mod(
            "pkg.app",
            """
            from pkg.lib import compute

            def entry():
                return compute()
            """,
        )
        graph = _graph(lib, app)
        assert graph.edges["pkg.app.entry"] == ("pkg.lib.compute",)

    def test_module_alias_attribute_call(self):
        lib = _mod(
            "pkg.lib",
            """
            def compute():
                return 1
            """,
        )
        app = _mod(
            "pkg.app",
            """
            import pkg.lib as plib

            def entry():
                return plib.compute()
            """,
        )
        graph = _graph(lib, app)
        assert graph.edges["pkg.app.entry"] == ("pkg.lib.compute",)

    def test_constructor_call_targets_init(self):
        graph = _graph(
            _mod(
                "pkg.a",
                """
                class Widget:
                    def __init__(self):
                        self.state = 0

                def entry():
                    return Widget()
                """,
            )
        )
        assert graph.edges["pkg.a.entry"] == ("pkg.a.Widget.__init__",)

    def test_self_call_includes_subclass_overrides(self):
        graph = _graph(
            _mod(
                "pkg.a",
                """
                class Base:
                    def run(self):
                        return self.step()

                    def step(self):
                        return 0

                class Sub(Base):
                    def step(self):
                        return 1
                """,
            )
        )
        assert set(graph.edges["pkg.a.Base.run"]) == {
            "pkg.a.Base.step",
            "pkg.a.Sub.step",
        }

    def test_unknown_receiver_matches_methods_by_name(self):
        graph = _graph(
            _mod(
                "pkg.a",
                """
                class Engine:
                    def simulate(self):
                        return 1

                def entry(thing):
                    return thing.simulate()
                """,
            )
        )
        assert graph.edges["pkg.a.entry"] == ("pkg.a.Engine.simulate",)

    def test_blocklisted_names_do_not_name_match(self):
        assert "append" in NAME_MATCH_BLOCKLIST
        graph = _graph(
            _mod(
                "pkg.a",
                """
                class Archive:
                    def append(self, row):
                        return row

                def entry(rows, row):
                    rows.append(row)
                """,
            )
        )
        assert graph.edges["pkg.a.entry"] == ()


class TestReachability:
    def _chain_graph(self):
        return _graph(
            _mod(
                "pkg.chain",
                """
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return 1

                def orphan():
                    return 2
                """,
            )
        )

    def test_reachable_is_transitive_and_excludes_orphans(self):
        graph = self._chain_graph()
        region = graph.reachable(["pkg.chain.a"])
        assert region == {"pkg.chain.a", "pkg.chain.b", "pkg.chain.c"}

    def test_witness_path_runs_root_first(self):
        graph = self._chain_graph()
        graph.reachable(["pkg.chain.a"])
        assert graph.witness_path("pkg.chain.c") == [
            "pkg.chain.a",
            "pkg.chain.b",
            "pkg.chain.c",
        ]

    def test_unknown_root_is_ignored(self):
        graph = self._chain_graph()
        assert graph.reachable(["pkg.chain.missing"]) == set()


class TestQuarantine:
    def test_build_graph_drops_quarantined_modules(self):
        noisy = _mod(
            "pkg.noisy",
            """
            def leak():
                return 1
            """,
        )
        app = _mod(
            "pkg.app",
            """
            from pkg.noisy import leak

            def entry():
                return leak()
            """,
        )
        files = {p.path: p for p in (noisy, app)}
        graph = build_graph(files, exclude_prefixes=("pkg.noisy",))
        assert "pkg.noisy.leak" not in graph.functions
        # The edge terminates at the graph boundary.
        assert graph.edges["pkg.app.entry"] == ()
        full = build_graph(files)
        assert full.edges["pkg.app.entry"] == ("pkg.noisy.leak",)

"""CLI: exit codes, formats, baseline and purity flags — via ``repro lint``."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.lint.cli import main as lint_main


@pytest.fixture(autouse=True)
def _no_cache(monkeypatch):
    """CLI tests exercise the lint path, not the findings cache."""
    monkeypatch.setenv("REPRO_LINT_CACHE", "0")


@pytest.fixture
def dirty_dir(tmp_path):
    (tmp_path / "m.py").write_text("import time\nt = time.time()\n")
    return tmp_path


@pytest.fixture
def purity_tree(tmp_path):
    """A mini program with a declared purity root that reads the clock."""
    (tmp_path / "app.py").write_text(
        "# repro: module=pkg.app\n"
        "import time\n"
        "\n"
        "\n"
        "def root():\n"
        "    return time.time()  # repro: allow-DET002(cli purity test)\n"
    )
    config = tmp_path / "purity-roots.json"
    config.write_text(
        json.dumps({"version": 1, "roots": ["pkg.app.root"]}) + "\n"
    )
    return tmp_path


class TestLintCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_dir, capsys):
        assert lint_main([str(dirty_dir)]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out and "m.py:2:" in out

    def test_json_format(self, dirty_dir, capsys):
        assert lint_main([str(dirty_dir), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "DET002"

    def test_write_baseline_then_clean(self, dirty_dir, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main(
                [str(dirty_dir), "--baseline", str(baseline), "--write-baseline"]
            )
            == 0
        )
        assert baseline.is_file()
        assert (
            lint_main([str(dirty_dir), "--baseline", str(baseline)]) == 0
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_overrides(self, dirty_dir, tmp_path):
        baseline = tmp_path / "baseline.json"
        lint_main(
            [str(dirty_dir), "--baseline", str(baseline), "--write-baseline"]
        )
        assert (
            lint_main(
                [
                    str(dirty_dir),
                    "--baseline",
                    str(baseline),
                    "--no-baseline",
                ]
            )
            == 1
        )

    def test_missing_baseline_file_is_usage_error(self, dirty_dir):
        assert (
            lint_main([str(dirty_dir), "--baseline", "/nonexistent.json"]) == 2
        )

    def test_select_filters_rules(self, dirty_dir):
        assert lint_main([str(dirty_dir), "--select", "DET001"]) == 0
        assert lint_main([str(dirty_dir), "--select", "DET002"]) == 1

    def test_unknown_select_is_usage_error(self, dirty_dir, capsys):
        assert lint_main([str(dirty_dir), "--select", "NOPE"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_rules_listing(self, capsys):
        assert lint_main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ["DET001", "DET002", "DET003", "SIM001", "OBS001",
                        "API001", "PURE001", "PURE002", "PURE003"]:
            assert rule_id in out
        assert "(whole-program)" in out


class TestJsonSchema:
    REQUIRED_KEYS = {
        "schema_version",
        "files_checked",
        "findings",
        "suppressed",
        "baselined",
        "parse_errors",
        "whole_program",
        "ok",
    }

    def test_report_round_trips_with_stable_schema(self, dirty_dir, capsys):
        assert lint_main([str(dirty_dir), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == self.REQUIRED_KEYS
        assert payload["schema_version"] == 1
        assert payload["whole_program"] is False
        assert payload["ok"] is False
        finding = payload["findings"][0]
        for key in ("rule", "path", "line", "col", "message"):
            assert key in finding

    def test_whole_program_flag_reaches_the_report(self, purity_tree, capsys):
        assert (
            lint_main(
                [
                    str(purity_tree),
                    "--whole-program",
                    "--purity-roots",
                    str(purity_tree / "purity-roots.json"),
                    "--format",
                    "json",
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["whole_program"] is True
        assert [f["rule"] for f in payload["findings"]] == ["PURE002"]


class TestWholeProgramCli:
    def test_purity_finding_exits_one(self, purity_tree, capsys):
        code = lint_main(
            [
                str(purity_tree),
                "--whole-program",
                "--purity-roots",
                str(purity_tree / "purity-roots.json"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "PURE002" in out and "[whole-program]" in out

    def test_missing_config_is_usage_error(self, purity_tree, capsys):
        code = lint_main(
            [
                str(purity_tree),
                "--whole-program",
                "--purity-roots",
                str(purity_tree / "absent.json"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_repo_tree_is_whole_program_clean(self, capsys, monkeypatch):
        """The shipping gate: ``repro lint src --whole-program`` exits 0."""
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        monkeypatch.chdir(repo_root)
        assert lint_main(["src", "--whole-program"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out and "[whole-program]" in out


class TestBaselineRenames:
    def test_baselined_finding_survives_a_file_rename(
        self, tmp_path, capsys
    ):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "a.py").write_text("import time\nt = time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main(
                [str(tree), "--baseline", str(baseline), "--write-baseline"]
            )
            == 0
        )
        (tree / "a.py").rename(tree / "b.py")
        assert lint_main([str(tree), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_extra_occurrence_beyond_the_budget_is_new(
        self, tmp_path, capsys
    ):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "a.py").write_text("import time\nt = time.time()\n")
        baseline = tmp_path / "baseline.json"
        lint_main(
            [str(tree), "--baseline", str(baseline), "--write-baseline"]
        )
        # A second copy of the same offending line exceeds the count.
        (tree / "b.py").write_text("import time\nt = time.time()\n")
        assert lint_main([str(tree), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "1 finding(s)" in out and "1 baselined" in out


class TestReproSubcommand:
    def test_repro_lint_subcommand(self, dirty_dir, capsys):
        assert repro_main(["lint", str(dirty_dir)]) == 1
        assert "DET002" in capsys.readouterr().out

    def test_repro_lint_help_registered(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(["lint", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "determinism" in out and "--whole-program" in out

    def test_repro_sanitize_run_help_registered(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(["sanitize-run", "--help"])
        assert excinfo.value.code == 0
        assert "REPRO_SANITIZE" in capsys.readouterr().out

    @pytest.mark.parallel_smoke
    def test_repro_sanitize_run_executes_clean(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        from repro import sanitizer

        try:
            assert repro_main(["sanitize-run", "--sessions", "2"]) == 0
        finally:
            sanitizer.uninstall()
            monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        captured = capsys.readouterr()
        assert "digest" in captured.out
        assert "canary" in captured.err

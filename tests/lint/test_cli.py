"""CLI: exit codes, formats, baseline flags — via ``repro lint``."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.lint.cli import main as lint_main


@pytest.fixture
def dirty_dir(tmp_path):
    (tmp_path / "m.py").write_text("import time\nt = time.time()\n")
    return tmp_path


class TestLintCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_dir, capsys):
        assert lint_main([str(dirty_dir)]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out and "m.py:2:" in out

    def test_json_format(self, dirty_dir, capsys):
        assert lint_main([str(dirty_dir), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "DET002"

    def test_write_baseline_then_clean(self, dirty_dir, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main(
                [str(dirty_dir), "--baseline", str(baseline), "--write-baseline"]
            )
            == 0
        )
        assert baseline.is_file()
        assert (
            lint_main([str(dirty_dir), "--baseline", str(baseline)]) == 0
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_overrides(self, dirty_dir, tmp_path):
        baseline = tmp_path / "baseline.json"
        lint_main(
            [str(dirty_dir), "--baseline", str(baseline), "--write-baseline"]
        )
        assert (
            lint_main(
                [
                    str(dirty_dir),
                    "--baseline",
                    str(baseline),
                    "--no-baseline",
                ]
            )
            == 1
        )

    def test_missing_baseline_file_is_usage_error(self, dirty_dir):
        assert (
            lint_main([str(dirty_dir), "--baseline", "/nonexistent.json"]) == 2
        )

    def test_select_filters_rules(self, dirty_dir):
        assert lint_main([str(dirty_dir), "--select", "DET001"]) == 0
        assert lint_main([str(dirty_dir), "--select", "DET002"]) == 1

    def test_rules_listing(self, capsys):
        assert lint_main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ["DET001", "DET002", "DET003", "SIM001", "OBS001",
                        "API001"]:
            assert rule_id in out


class TestReproSubcommand:
    def test_repro_lint_subcommand(self, dirty_dir, capsys):
        assert repro_main(["lint", str(dirty_dir)]) == 1
        assert "DET002" in capsys.readouterr().out

    def test_repro_lint_help_registered(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(["lint", "--help"])
        assert excinfo.value.code == 0
        assert "determinism" in capsys.readouterr().out

"""CLI surface of the durability rules: ``repro lint --durability``.

Exit codes (0 clean / 1 findings / 2 config or usage error), the JSON
report schema for DUR findings, baseline interaction, and the shipping
gate over the real tree with the checked-in ``durable-roots.json``.
"""

import json
import pathlib

import pytest

from repro.lint.cli import main as lint_main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_LINT_CACHE", "0")


@pytest.fixture
def durable_tree(tmp_path):
    """A mini program with one durable root performing a raw write."""
    (tmp_path / "app.py").write_text(
        "# repro: module=pkg.app\n"
        "import json\n"
        "\n"
        "\n"
        "def save(path, value):\n"
        '    with open(path, "w") as f:\n'
        "        f.write(json.dumps(value))\n"
    )
    (tmp_path / "purity-roots.json").write_text(
        json.dumps({"version": 1, "roots": []}) + "\n"
    )
    (tmp_path / "durable-roots.json").write_text(
        json.dumps(
            {
                "version": 1,
                "roots": ["pkg.app.save"],
                "atomic_helpers": ["repro.atomio.atomic_write_bytes"],
                "exempt": [],
                "commit_order": [],
            }
        )
        + "\n"
    )
    return tmp_path


def _args(tree, *extra):
    return [
        str(tree),
        "--whole-program",
        "--purity-roots", str(tree / "purity-roots.json"),
        "--durability",
        "--durable-roots", str(tree / "durable-roots.json"),
        *extra,
    ]


class TestDurabilityCli:
    def test_dur001_finding_exits_one(self, durable_tree, capsys):
        assert lint_main(_args(durable_tree)) == 1
        out = capsys.readouterr().out
        assert "DUR001" in out and "atomic_write" in out

    def test_inline_waiver_silences(self, durable_tree, capsys):
        source = (durable_tree / "app.py").read_text()
        (durable_tree / "app.py").write_text(
            source.replace(
                '    with open(path, "w") as f:\n',
                '    with open(path, "w") as f:'
                "  # repro: allow-DUR001(cli waiver test)\n",
            )
        )
        assert lint_main(_args(durable_tree)) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_durability_requires_whole_program(self, durable_tree, capsys):
        code = lint_main([str(durable_tree), "--durability"])
        assert code == 2
        assert "--whole-program" in capsys.readouterr().err

    def test_missing_config_is_usage_error(self, durable_tree, capsys):
        code = lint_main(
            [
                str(durable_tree),
                "--whole-program",
                "--purity-roots", str(durable_tree / "purity-roots.json"),
                "--durability",
                "--durable-roots", str(durable_tree / "absent.json"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_version_mismatch_is_usage_error(self, durable_tree, capsys):
        bad = durable_tree / "durable-roots.json"
        bad.write_text(json.dumps({"version": 99}))
        assert lint_main(_args(durable_tree)) == 2
        assert "version" in capsys.readouterr().err

    def test_missing_root_is_dur000_finding(self, durable_tree, capsys):
        config = durable_tree / "durable-roots.json"
        data = json.loads(config.read_text())
        data["roots"].append("pkg.app.gone")
        config.write_text(json.dumps(data))
        assert lint_main(_args(durable_tree)) == 1
        assert "DUR000" in capsys.readouterr().out

    def test_json_schema_carries_dur_findings(self, durable_tree, capsys):
        assert lint_main(_args(durable_tree, "--format", "json")) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["whole_program"] is True
        rules = [f["rule"] for f in payload["findings"]]
        assert "DUR001" in rules
        finding = payload["findings"][rules.index("DUR001")]
        for key in ("path", "line", "col", "message", "source_line"):
            assert key in finding

    def test_baseline_absorbs_dur_findings(self, durable_tree, capsys):
        baseline = durable_tree / "baseline.json"
        assert (
            lint_main(
                _args(
                    durable_tree,
                    "--baseline", str(baseline),
                    "--write-baseline",
                )
            )
            == 0
        )
        capsys.readouterr()
        # --write-baseline captures only the per-file phase, so the DUR
        # finding survives a baselined run: whole-program findings are
        # never silently grandfathered — inline waivers are the only
        # mechanism, exactly as for the PURE/SEED/CKPT families.
        code = lint_main(_args(durable_tree, "--baseline", str(baseline)))
        assert code == 1
        assert "DUR001" in capsys.readouterr().out

    def test_repo_tree_is_durability_clean(self, capsys, monkeypatch):
        """The shipping gate: lint src --whole-program --durability."""
        monkeypatch.chdir(REPO_ROOT)
        assert (
            lint_main(
                [
                    "src",
                    "--whole-program",
                    "--fingerprint-exclusions",
                    "fingerprint-exclusions.json",
                    "--durability",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 finding(s)" in out and "[whole-program]" in out

"""Unit tests for the seed-lineage dataflow analysis (repro.lint.dataflow).

Each test builds a one-module call graph from an inline snippet and
inspects the raw :class:`SeedEvent` stream — the layer below the SEED
rules, so semantics are pinned independently of finding presentation.
"""

import textwrap

from repro.lint.callgraph import CallGraph
from repro.lint.dataflow import analyze_seed_flow
from repro.lint.engine import parse_module


def _flow(source, module="fixturepkg.unit"):
    text = f"# repro: module={module}\n" + textwrap.dedent(source)
    parsed = parse_module(text, "fixture/unit.py")
    graph = CallGraph.build([parsed])
    return analyze_seed_flow(graph)


def _sinks(flow):
    return [e for e in flow.events if e.kind == "sink"]


class TestDerivations:
    def test_const_only_derivation_is_derived_but_free_of_vars(self):
        flow = _flow(
            """
            import numpy as np

            def root(seed):
                rng = np.random.default_rng(seed + 1)
                return rng
            """
        )
        (event,) = _sinks(flow)
        assert event.lineage.derived
        assert event.lineage.free_vars == ()
        assert event.lineage.derive_site is not None

    def test_free_variable_derivation_records_the_variable(self):
        flow = _flow(
            """
            import numpy as np

            def root(seed, i):
                rng = np.random.default_rng(seed * 1_000_003 + i)
                return rng
            """
        )
        (event,) = _sinks(flow)
        assert event.lineage.free_vars == ("i",)
        assert not event.lineage.domain_separated

    def test_attribute_receiver_is_not_a_free_variable(self):
        flow = _flow(
            """
            import numpy as np

            def root(config, i):
                rng = np.random.default_rng(config.seed * 3 + i)
                return rng
            """
        )
        (event,) = _sinks(flow)
        assert event.lineage.root == "config.seed"
        assert event.lineage.free_vars == ("i",)

    def test_passthrough_builtin_keeps_the_lineage(self):
        flow = _flow(
            """
            import numpy as np

            def root(seed, i):
                rng = np.random.default_rng(int(seed * 2 + i))
                return rng
            """
        )
        (event,) = _sinks(flow)
        assert event.lineage.derived
        assert event.lineage.free_vars == ("i",)


class TestDomainSeparation:
    def test_tuple_with_int_literal_separates(self):
        flow = _flow(
            """
            import numpy as np

            def root(seed, i):
                rng = np.random.default_rng((seed, 0x7E, i))
                return rng
            """
        )
        (event,) = _sinks(flow)
        assert event.lineage.domain_separated
        assert event.lineage.fold_site is None

    def test_tuple_with_module_constant_separates(self):
        flow = _flow(
            """
            import numpy as np

            _STREAM = 0x99

            def root(seed, i):
                rng = np.random.default_rng((seed, _STREAM, i))
                return rng
            """
        )
        (event,) = _sinks(flow)
        assert event.lineage.domain_separated

    def test_tuple_without_constant_records_fold_site(self):
        flow = _flow(
            """
            import numpy as np

            def root(seed, i):
                rng = np.random.default_rng((seed, i))
                return rng
            """
        )
        (event,) = _sinks(flow)
        assert not event.lineage.domain_separated
        assert event.lineage.fold_site is not None

    def test_seed_sequence_separates(self):
        flow = _flow(
            """
            import numpy as np

            def root(seed, i):
                ss = np.random.SeedSequence(seed * 31 + i)
                rng = np.random.default_rng(ss)
                return rng
            """
        )
        (event,) = _sinks(flow)
        assert event.lineage.domain_separated


class TestRootsAndReroots:
    def test_payload_unpack_reroots_the_seed_name(self):
        flow = _flow(
            """
            import numpy as np

            def worker(payload):
                algo, seed = payload
                rng = np.random.default_rng(seed)
                return rng
            """
        )
        (event,) = _sinks(flow)
        assert event.lineage.root == "fixturepkg.unit.worker.seed"
        assert not event.lineage.derived

    def test_seedish_assignment_from_untracked_rhs_is_a_fresh_root(self):
        flow = _flow(
            """
            import numpy as np

            def root(store):
                seed = store["seed"]
                rng = np.random.default_rng(seed)
                return rng
            """
        )
        (event,) = _sinks(flow)
        assert not event.lineage.derived


class TestInterprocedural:
    def test_inlined_module_function_carries_caller_lineage(self):
        flow = _flow(
            """
            import numpy as np

            def _mk(seed):
                return np.random.default_rng(seed)

            def root(seed, i):
                return _mk(seed + 100 * i)
            """
        )
        derived = [
            e
            for e in _sinks(flow)
            if e.fn == "fixturepkg.unit._mk" and e.lineage.derived
        ]
        assert len(derived) == 1
        assert derived[0].lineage.free_vars == ("i",)

    def test_rng_consuming_class_is_a_handoff(self):
        flow = _flow(
            """
            import numpy as np

            class Sampler:
                def __init__(self, seed):
                    self._rng = np.random.default_rng(seed)

            def root(seed, i):
                return Sampler(seed + i)
            """
        )
        handoffs = [e for e in flow.events if e.kind == "handoff"]
        assert len(handoffs) == 1
        assert handoffs[0].target == "fixturepkg.unit.Sampler"

    def test_config_dataclass_is_not_a_handoff(self):
        flow = _flow(
            """
            from dataclasses import dataclass

            @dataclass
            class Config:
                seed: int = 0

            def root(seed, i):
                return Config(seed=seed + i)
            """
        )
        assert [e for e in flow.events if e.kind == "handoff"] == []

    def test_unresolved_seed_keyword_is_a_handoff(self):
        flow = _flow(
            """
            def root(env, seed, i):
                return env.run(seed=seed + 100 + i)
            """
        )
        handoffs = [e for e in flow.events if e.kind == "handoff"]
        assert len(handoffs) == 1
        assert "seed=..." in handoffs[0].target


class TestBoundaries:
    def test_generator_into_fork_map_is_a_boundary(self):
        flow = _flow(
            """
            import numpy as np

            from repro.experiment import parallel

            def _work(payload, item):
                return item

            def root(seed):
                rng = np.random.default_rng((seed, 0x77))
                return parallel.fork_map(_work, (rng, 1.0), range(2), workers=1)
            """
        )
        boundaries = [e for e in flow.events if e.kind == "boundary"]
        assert len(boundaries) == 1
        assert boundaries[0].lineage.is_generator

    def test_plain_seed_through_fork_map_is_not_a_boundary(self):
        flow = _flow(
            """
            from repro.experiment import parallel

            def _work(payload, item):
                return item

            def root(seed):
                return parallel.fork_map(_work, (seed, 1.0), range(2), workers=1)
            """
        )
        assert [e for e in flow.events if e.kind == "boundary"] == []

    def test_pool_method_is_a_boundary_on_any_receiver(self):
        flow = _flow(
            """
            import numpy as np

            def root(pool, seed):
                rng = np.random.default_rng((seed, 0x88))
                return pool.apply_async(len, (rng,))
            """
        )
        boundaries = [e for e in flow.events if e.kind == "boundary"]
        assert len(boundaries) == 1


class TestDeterminism:
    def test_event_stream_is_stable_across_runs(self):
        source = """
        import numpy as np

        def b(seed, i):
            return np.random.default_rng(seed + i)

        def a(seed, i):
            return b(seed * 3 + i)
        """
        first = _flow(source)
        second = _flow(source)
        assert first.events == second.events

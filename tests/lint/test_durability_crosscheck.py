"""Static ↔ dynamic crosscheck for the durability rules (DUR001–DUR004).

The acceptance bar mirrors ``test_purity_crosscheck.py``'s fail-open
pairing: every bad fixture the static analyzer flags must also produce a
detectable torn crash state when its ``root`` actually runs under the
:class:`repro.crashpoints.PowerLossSimulator` — except the one documented
static-only over-approximation (the missing directory fsync, which the
simulator's ext4-ordered crash model deliberately treats as safe).  Good
fixtures must be silent on both sides: no DUR findings, no torn state.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.crashpoints import find_torn_state
from repro.lint.engine import lint_whole_program, parse_module
from repro.lint.purity import PurityConfig
from repro.lint.rules_durability import CommitOrderPair, DurabilityConfig

FIXTURES = Path(__file__).parent / "durability_fixtures"

#: Declared write-order invariants for the DUR003 fixtures.
COMMIT_ORDER = (
    CommitOrderPair(
        first="durfix.dur003_bad_manifest_first.write_blob",
        then="durfix.dur003_bad_manifest_first.write_index",
        reason="the index must never name a blob a crash can lose",
    ),
    CommitOrderPair(
        first="durfix.dur003_bad_checkpoint_before_flush.flush_rows",
        then="durfix.dur003_bad_checkpoint_before_flush.save_marker",
        reason="the marker offset must reference rows already on disk",
    ),
    CommitOrderPair(
        first="durfix.dur003_good_data_first.store_blob",
        then="durfix.dur003_good_data_first.store_index",
        reason="the index must never name a blob a crash can lose",
    ),
)


def _load_fixture(stem):
    module_name = f"durfix.{stem}"
    path = FIXTURES / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(module_name, path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        sys.modules.pop(module_name, None)
        raise
    return module


def _durability_config():
    parsed = [
        parse_module(p.read_text(), p.as_posix())
        for p in sorted(FIXTURES.glob("*.py"))
    ]
    config = DurabilityConfig(
        roots=tuple(sorted(f"{p.module}.root" for p in parsed)),
        atomic_helpers=(
            "repro.atomio.atomic_write_bytes",
            "repro.atomio.atomic_write_text",
        ),
        exempt=(),
        commit_order=COMMIT_ORDER,
        source_path="<crosscheck>",
    )
    return parsed, config


@pytest.fixture(scope="module")
def static_rules():
    """Map fixture stem -> set of unsuppressed DUR rules it fires."""
    parsed, config = _durability_config()
    purity = PurityConfig(source_path="<crosscheck>")
    by_stem = {}
    for finding in lint_whole_program(parsed, purity, durability=config):
        if finding.suppressed or not finding.rule.startswith("DUR"):
            continue
        by_stem.setdefault(Path(finding.path).stem, set()).add(finding.rule)
    return by_stem


# ---------------------------------------------------------------------------
# The dual corpus: every bad fixture fires its DUR rule statically AND has a
# torn crash state dynamically (except the documented static-only case).
# ---------------------------------------------------------------------------

BAD_FIXTURES = [
    pytest.param("dur001_bad_raw_write", "DUR001", True, id="raw_write"),
    pytest.param(
        "dur001_bad_pathlib_write", "DUR001", True, id="pathlib_write"
    ),
    pytest.param("dur002_bad_no_fsync", "DUR002", True, id="no_fsync"),
    pytest.param(
        "dur002_bad_fsync_after_rename",
        "DUR002",
        True,
        id="fsync_after_rename",
    ),
    # The documented static-only finding: the simulator's crash model
    # keeps renames (ext4-ordered), so no torn state exists dynamically.
    pytest.param("dur002_bad_no_dirsync", "DUR002", False, id="no_dirsync"),
    pytest.param(
        "dur003_bad_manifest_first", "DUR003", True, id="manifest_first"
    ),
    pytest.param(
        "dur003_bad_checkpoint_before_flush",
        "DUR003",
        True,
        id="checkpoint_before_flush",
    ),
    pytest.param("dur004_bad_rmw", "DUR004", True, id="rmw"),
    pytest.param(
        "dur004_bad_update_mode", "DUR004", True, id="update_mode"
    ),
]

GOOD_FIXTURES = [
    pytest.param("dur001_good_helper", id="helper"),
    pytest.param("dur002_good_protocol", id="protocol"),
    pytest.param("dur003_good_data_first", id="data_first"),
    pytest.param("dur004_good_commit_section", id="commit_section"),
]


class TestBadFixtures:
    @pytest.mark.parametrize("stem, rule, diverges", BAD_FIXTURES)
    def test_fires_statically(self, static_rules, stem, rule, diverges):
        fired = static_rules.get(stem, set())
        assert rule in fired, f"{stem}: expected {rule}, fired {fired}"

    @pytest.mark.parametrize("stem, rule, diverges", BAD_FIXTURES)
    def test_diverges_dynamically(self, tmp_path, stem, rule, diverges):
        module = _load_fixture(stem)
        try:
            torn = find_torn_state(
                tmp_path, module.setup, module.root, module.consistent
            )
        finally:
            sys.modules.pop(module.__name__, None)
        if diverges:
            assert torn is not None, (
                f"{stem}: static {rule} finding has no dynamic "
                "counterexample — the rule would be unfalsifiable"
            )
        else:
            assert torn is None, (
                f"{stem}: documented static-only, but the simulator "
                f"found a torn state at prefix {torn}"
            )


class TestGoodFixtures:
    @pytest.mark.parametrize("stem", GOOD_FIXTURES)
    def test_silent_statically(self, static_rules, stem):
        fired = static_rules.get(stem, set())
        assert not fired, f"{stem}: expected silence, fired {fired}"

    @pytest.mark.parametrize("stem", GOOD_FIXTURES)
    def test_no_torn_state(self, tmp_path, stem):
        module = _load_fixture(stem)
        try:
            torn = find_torn_state(
                tmp_path, module.setup, module.root, module.consistent
            )
        finally:
            sys.modules.pop(module.__name__, None)
        assert torn is None, f"{stem}: torn state at prefix {torn}"


class TestConfigErrors:
    def test_missing_root_is_dur000(self):
        parsed, config = _durability_config()
        broken = DurabilityConfig(
            roots=config.roots + ("durfix.dur001_bad_raw_write.missing",),
            atomic_helpers=config.atomic_helpers,
            exempt=(),
            commit_order=(),
            source_path="<crosscheck>",
        )
        purity = PurityConfig(source_path="<crosscheck>")
        findings = lint_whole_program(parsed, purity, durability=broken)
        dur000 = [f for f in findings if f.rule == "DUR000"]
        assert dur000 and "missing" in dur000[0].message

    def test_missing_pair_member_is_dur000(self):
        parsed, config = _durability_config()
        broken = DurabilityConfig(
            roots=config.roots,
            atomic_helpers=config.atomic_helpers,
            exempt=(),
            commit_order=(
                CommitOrderPair(
                    first="durfix.dur003_good_data_first.store_blob",
                    then="durfix.dur003_good_data_first.gone",
                    reason="",
                ),
            ),
            source_path="<crosscheck>",
        )
        purity = PurityConfig(source_path="<crosscheck>")
        findings = lint_whole_program(parsed, purity, durability=broken)
        assert any(f.rule == "DUR000" for f in findings)

    def test_out_of_scope_entries_stay_quiet(self):
        # Partial lints (fixtures only) must not flag the real-tree
        # helpers declared in durable-roots.json.
        parsed, config = _durability_config()
        purity = PurityConfig(source_path="<crosscheck>")
        findings = lint_whole_program(parsed, purity, durability=config)
        assert not any(f.rule == "DUR000" for f in findings)

    def test_version_mismatch_raises(self, tmp_path):
        bad = tmp_path / "durable-roots.json"
        bad.write_text('{"version": 99}')
        with pytest.raises(ValueError, match="version"):
            DurabilityConfig.load(bad)


class TestMutationSensitivity:
    """Textual mutations flip each verdict — the analyzer tracks the
    code, not the file name."""

    def _lint_sources(self, sources, commit_order=()):
        parsed = [
            parse_module(text, f"tests/mutated/{name}.py")
            for name, text in sources.items()
        ]
        config = DurabilityConfig(
            roots=tuple(sorted(f"{p.module}.root" for p in parsed)),
            atomic_helpers=(
                "repro.atomio.atomic_write_bytes",
                "repro.atomio.atomic_write_text",
            ),
            exempt=(),
            commit_order=commit_order,
            source_path="<mutation>",
        )
        purity = PurityConfig(source_path="<mutation>")
        findings = lint_whole_program(parsed, purity, durability=config)
        return {
            f.rule
            for f in findings
            if not f.suppressed and f.rule.startswith("DUR")
        }

    def test_good_protocol_minus_fsync_fires(self):
        source = (FIXTURES / "dur002_good_protocol.py").read_text()
        mutated = source.replace("        os.fsync(f.fileno())\n", "")
        assert mutated != source
        assert "DUR002" in self._lint_sources(
            {"dur002_good_protocol": mutated}
        )

    def test_bad_raw_write_routed_through_helper_goes_quiet(self):
        source = (FIXTURES / "dur001_bad_raw_write.py").read_text()
        mutated = source.replace(
            '    with open(base / "state.json", "w") as f:\n'
            '        f.write(json.dumps({"value": 2}))\n',
            "    atomic_write_text("
            'base / "state.json", json.dumps({"value": 2}))\n',
        ).replace(
            "import json\n",
            "import json\n\nfrom repro.atomio import atomic_write_text\n",
        )
        assert "atomic_write_text" in mutated
        assert self._lint_sources({"dur001_bad_raw_write": mutated}) == set()

    def test_swapping_commit_order_flips_dur003(self):
        source = (FIXTURES / "dur003_good_data_first.py").read_text()
        good_body = "    store_blob(base)\n    store_index(base)\n"
        assert good_body in source
        mutated = source.replace(
            good_body, "    store_index(base)\n    store_blob(base)\n"
        )
        # The checked-in module pragma survives the mutation, so the
        # pair members keep their durfix qualnames.
        pair = (
            CommitOrderPair(
                first="durfix.dur003_good_data_first.store_blob",
                then="durfix.dur003_good_data_first.store_index",
                reason="",
            ),
        )
        assert "DUR003" in self._lint_sources(
            {"dur003_good_data_first": mutated}, commit_order=pair
        )
        assert self._lint_sources(
            {"dur003_good_data_first": source}, commit_order=pair
        ) == set()

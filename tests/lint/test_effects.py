"""Unit tests for the write-effect extraction pass (`repro.lint.effects`)."""

import ast

from repro.lint.base import collect_imports
from repro.lint.callgraph import FunctionInfo
from repro.lint.effects import (
    FSYNC_FILE,
    FSYNC_OTHER,
    HELPER,
    OPEN_READ,
    OPEN_UPDATE,
    OPEN_WRITE,
    PATH_READ,
    PATH_WRITE,
    RENAME,
    TRUNCATE,
    function_calls,
    function_effects,
)

HELPERS = frozenset({"repro.atomio.atomic_write_text"})


def _effects(source, helpers=HELPERS):
    tree = ast.parse(source)
    imports = collect_imports(tree)
    fn_node = next(
        n
        for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    fn = FunctionInfo(
        qualname=f"m.{fn_node.name}",
        module="m",
        path="m.py",
        node=fn_node,
    )
    return fn, function_effects(fn, imports, helpers), imports


class TestOpenClassification:
    def test_write_modes(self):
        source = (
            "def f(p):\n"
            "    open(p, 'w')\n"
            "    open(p, 'ab')\n"
            "    open(p, mode='x')\n"
        )
        _, effects, _ = _effects(source)
        assert [e.kind for e in effects] == [OPEN_WRITE] * 3
        assert [e.detail for e in effects] == ["w", "ab", "x"]

    def test_update_read_and_default_modes(self):
        source = (
            "def f(p):\n"
            "    open(p, 'r+')\n"
            "    open(p, 'rb')\n"
            "    open(p)\n"
        )
        _, effects, _ = _effects(source)
        assert [e.kind for e in effects] == [OPEN_UPDATE, OPEN_READ, OPEN_READ]

    def test_target_text_is_recorded(self):
        _, effects, _ = _effects("def f(base):\n    open(base / 'a', 'w')\n")
        assert effects[0].target == "base / 'a'"


class TestOsLevelEffects:
    def test_rename_and_fsync_split(self):
        source = (
            "import os\n"
            "def f(tmp, dst, handle, dir_fd):\n"
            "    os.fsync(handle.fileno())\n"
            "    os.replace(tmp, dst)\n"
            "    os.fsync(dir_fd)\n"
        )
        _, effects, _ = _effects(source)
        assert [e.kind for e in effects] == [FSYNC_FILE, RENAME, FSYNC_OTHER]
        assert effects[1].detail == "os.replace"
        assert effects[1].target == "dst"

    def test_pathlib_and_truncate(self):
        source = (
            "def f(p):\n"
            "    p.write_text('x')\n"
            "    p.read_bytes()\n"
            "    handle = open(p, 'r+')\n"
            "    handle.truncate()\n"
        )
        _, effects, _ = _effects(source)
        kinds = [e.kind for e in effects]
        assert kinds == [PATH_WRITE, PATH_READ, OPEN_UPDATE, TRUNCATE]


class TestHelperRecognition:
    def test_imported_helper_shadows_other_kinds(self):
        source = (
            "from repro.atomio import atomic_write_text\n"
            "def f(p):\n"
            "    atomic_write_text(p, 'x')\n"
        )
        _, effects, _ = _effects(source)
        assert [e.kind for e in effects] == [HELPER]
        assert effects[0].detail == "repro.atomio.atomic_write_text"
        assert effects[0].target == "p"


class TestFunctionCalls:
    def test_self_calls_resolve_against_the_class(self):
        source = (
            "def f(self):\n"
            "    self._write_manifest()\n"
            "    other.save()\n"
        )
        tree = ast.parse(source)
        imports = collect_imports(tree)
        fn = FunctionInfo(
            qualname="m.Reg.f",
            module="m",
            path="m.py",
            node=tree.body[0],
            class_name="Reg",
        )
        sites = function_calls(fn, imports)
        assert sites[0].resolved == "m.Reg._write_manifest"
        assert sites[0].name == "_write_manifest"
        assert sites[1].name == "save"

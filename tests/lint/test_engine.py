"""Engine, registry, module scoping, and report plumbing."""

import json

import pytest

from repro.lint import (
    Finding,
    derive_module,
    discover_files,
    lint_paths,
    lint_source,
    make_rules,
    registered_rules,
)


class TestRegistry:
    def test_expected_rule_ids(self):
        assert set(registered_rules()) >= {
            "DET001", "DET002", "DET003", "SIM001", "OBS001", "API001",
        }

    def test_select_restricts_rules(self):
        rules = make_rules(select=["DET001"])
        assert [r.id for r in rules] == ["DET001"]

    def test_unknown_select_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            make_rules(select=["NOPE999"])

    def test_rules_have_summaries(self):
        for rule in make_rules():
            assert rule.id and rule.summary


class TestModuleDerivation:
    def test_src_layout(self):
        assert derive_module("src/repro/net/tcp.py", []) == "repro.net.tcp"

    def test_repro_rooted(self):
        assert derive_module("repro/obs/context.py", []) == "repro.obs.context"

    def test_init_collapses_to_package(self):
        assert derive_module("src/repro/lint/__init__.py", []) == "repro.lint"

    def test_pragma_wins(self):
        lines = ["# repro: module=repro.net.fake"]
        assert derive_module("tests/whatever.py", lines) == "repro.net.fake"

    def test_unrecognizable_path_is_empty(self):
        assert derive_module("scripts/tool.py", []) == ""


class TestEngine:
    def test_deterministic_file_order_and_sorting(self, tmp_path):
        for name in ["b.py", "a.py"]:
            (tmp_path / name).write_text("import time\nt = time.time()\n")
        files = discover_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py"]
        report = lint_paths([tmp_path])
        assert [f.path for f in report.findings] == [
            (tmp_path / "a.py").as_posix(),
            (tmp_path / "b.py").as_posix(),
        ]

    def test_two_runs_identical(self, tmp_path):
        (tmp_path / "m.py").write_text("def f(x=[]):\n    return x\n")
        first = lint_paths([tmp_path]).to_json()
        second = lint_paths([tmp_path]).to_json()
        assert first == second

    def test_syntax_error_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = lint_paths([tmp_path])
        assert not report.ok
        assert report.parse_errors and "PARSE" in report.parse_errors[0]

    def test_json_report_shape(self, tmp_path):
        (tmp_path / "m.py").write_text("import time\nt = time.time()\n")
        payload = json.loads(lint_paths([tmp_path]).to_json())
        assert payload["ok"] is False
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET002"
        assert finding["line"] == 2
        assert finding["fingerprint"].startswith("DET002:")

    def test_pycache_ignored(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "m.py").write_text("import time\nt = time.time()\n")
        assert discover_files([tmp_path]) == []

    def test_lint_source_accepts_single_rule_subset(self):
        code = "import time\n\n\ndef f(x=[]):\n    return time.time()\n"
        only_api = lint_source(code, rules=make_rules(select=["API001"]))
        assert {f.rule for f in only_api} == {"API001"}


class TestFinding:
    def test_fingerprint_ignores_line_number(self):
        a = Finding("DET001", "p.py", 3, 0, "m", source_line="  x = rng()")
        b = Finding("DET001", "p.py", 30, 4, "m", source_line="x = rng()  ")
        assert a.fingerprint() == b.fingerprint()

    def test_format_human(self):
        f = Finding("SIM001", "net.py", 7, 4, "float ==")
        assert f.format_human() == "net.py:7:4: SIM001 float =="

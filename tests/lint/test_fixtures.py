"""Self-test corpus: every rule must fire on its bad fixtures and stay
silent on its good ones.

Fixture files live in ``tests/lint/fixtures`` and follow the naming
convention ``<rule>_<bad|good>_<description>.py``.  Rule scoping is driven
by the ``# repro: module=...`` pragma inside each fixture, so the corpus
exercises the same path-scoping logic production files go through.

Deleting (or breaking) any single rule's implementation makes its bad
fixtures stop producing findings, which fails this module — the linter is
its own regression suite.
"""

import re
from pathlib import Path

import pytest

from repro.lint import lint_source, registered_rules

FIXTURES = Path(__file__).parent / "fixtures"

_NAME = re.compile(r"^(?P<rule>[a-z]+\d+)_(?P<verdict>bad|good)_")


def _fixture_cases():
    cases = []
    for path in sorted(FIXTURES.glob("*.py")):
        match = _NAME.match(path.name)
        assert match, f"fixture {path.name} does not follow <rule>_<bad|good>_*"
        cases.append(
            pytest.param(
                path,
                match.group("rule").upper(),
                match.group("verdict"),
                id=path.stem,
            )
        )
    return cases


def _findings_for(path, rule):
    findings = lint_source(path.read_text(), path=path.as_posix())
    return [
        f for f in findings if f.rule == rule and not f.suppressed
    ]


class TestCorpusShape:
    def test_every_rule_has_good_and_two_bad_fixtures(self):
        rules = set(registered_rules())
        by_rule = {rule: {"bad": 0, "good": 0} for rule in rules}
        for path in FIXTURES.glob("*.py"):
            match = _NAME.match(path.name)
            assert match is not None
            rule = match.group("rule").upper()
            assert rule in rules, f"{path.name} names unknown rule {rule}"
            by_rule[rule][match.group("verdict")] += 1
        for rule, counts in sorted(by_rule.items()):
            assert counts["bad"] >= 2, f"{rule} needs >=2 bad fixtures"
            assert counts["good"] >= 1, f"{rule} needs >=1 good fixture"

    def test_at_least_six_rules_registered(self):
        assert len(registered_rules()) >= 6


@pytest.mark.parametrize("path,rule,verdict", _fixture_cases())
def test_fixture(path, rule, verdict):
    findings = _findings_for(path, rule)
    if verdict == "bad":
        assert findings, (
            f"{rule} did not fire on {path.name}; the rule implementation "
            "is missing or broken"
        )
        for finding in findings:
            assert finding.path == path.as_posix()
            assert finding.line >= 1
            assert finding.message
    else:
        assert not findings, (
            f"{rule} false positive on {path.name}: "
            + "; ".join(f.format_human() for f in findings)
        )


class TestBadFixtureLocations:
    """Spot-check that findings land on the offending lines."""

    def test_det001_line_points_at_default_rng(self):
        path = FIXTURES / "det001_bad_unseeded_default_rng.py"
        (finding,) = _findings_for(path, "DET001")
        assert "default_rng" in path.read_text().splitlines()[finding.line - 1]

    def test_sim001_counts_both_branches(self):
        path = FIXTURES / "sim001_bad_float_eq.py"
        assert len(_findings_for(path, "SIM001")) == 2

    def test_det002_counts_every_call(self):
        path = FIXTURES / "det002_bad_from_import.py"
        assert len(_findings_for(path, "DET002")) == 2

    def test_obs001_counts_every_unguarded_emission(self):
        path = FIXTURES / "obs001_bad_unguarded.py"
        assert len(_findings_for(path, "OBS001")) == 2

    def test_api001_counts_every_default(self):
        path = FIXTURES / "api001_bad_dict_and_ctor.py"
        assert len(_findings_for(path, "API001")) == 3

"""The content-hash findings cache (``repro.lint.cache``).

Policy (off in CI / ``REPRO_LINT_CACHE=0``), hit/miss accounting through
``lint_paths``, invalidation on content and rule-set changes, corrupt-entry
tolerance, and the guarantee that the whole-program phase is re-run even
when every per-file entry hits.
"""

import json

import pytest

import repro.lint.cache as cache_mod
from repro.lint.cache import FindingsCache, cache_dir, cache_enabled
from repro.lint.engine import lint_paths, lint_source
from repro.lint.purity import PurityConfig


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    """Isolated cache dir; policy env vars cleared."""
    cache_root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_LINT_CACHE_DIR", str(cache_root))
    monkeypatch.delenv("REPRO_LINT_CACHE", raising=False)
    monkeypatch.delenv("CI", raising=False)
    return cache_root


class TestPolicy:
    def test_enabled_by_default(self, cache_env):
        assert cache_enabled()
        assert cache_dir() == cache_env

    def test_disabled_in_ci(self, cache_env, monkeypatch):
        monkeypatch.setenv("CI", "true")
        assert not cache_enabled()

    def test_disabled_by_env_flag(self, cache_env, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_CACHE", "0")
        assert not cache_enabled()


class TestRoundTrip:
    def test_lint_paths_misses_then_hits(self, cache_env, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("import time\nt = time.time()\n")
        first = lint_paths([str(target)], use_cache=True)
        assert (first.cache_hits, first.cache_misses) == (0, 1)
        second = lint_paths([str(target)], use_cache=True)
        assert (second.cache_hits, second.cache_misses) == (1, 0)
        # Cached findings are byte-for-byte the uncached ones.
        assert [f.to_dict() for f in second.findings] == [
            f.to_dict() for f in first.findings
        ]
        assert second.findings[0].rule == "DET002"

    def test_suppressed_findings_survive_the_cache(self, cache_env, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(
            "import time\n"
            "t = time.time()  # repro: allow-DET002(cache test)\n"
        )
        lint_paths([str(target)], use_cache=True)
        report = lint_paths([str(target)], use_cache=True)
        assert report.cache_hits == 1
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppression_reason == "cache test"

    def test_content_change_invalidates(self, cache_env, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n")
        lint_paths([str(target)], use_cache=True)
        target.write_text("y = 2\n")
        report = lint_paths([str(target)], use_cache=True)
        assert (report.cache_hits, report.cache_misses) == (0, 1)

    def test_use_cache_false_bypasses(self, cache_env, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n")
        lint_paths([str(target)], use_cache=True)
        report = lint_paths([str(target)], use_cache=False)
        assert (report.cache_hits, report.cache_misses) == (0, 0)
        assert not cache_env.exists() or report.cache_hits == 0


class TestInvalidation:
    def test_ruleset_fingerprint_changes_the_key(
        self, cache_env, monkeypatch
    ):
        source = "import time\nt = time.time()\n"
        findings = lint_source(source, "m.py")
        cache = FindingsCache(root=cache_env)
        cache.put("m.py", source, findings)
        assert FindingsCache(root=cache_env).get("m.py", source) is not None
        # A different linter build must never see the old entries.
        monkeypatch.setattr(cache_mod, "_RULESET_FINGERPRINT", "0" * 64)
        stale = FindingsCache(root=cache_env)
        assert stale.get("m.py", source) is None
        assert stale.misses == 1

    def test_editing_a_rule_file_rolls_the_ruleset_fingerprint(
        self, tmp_path
    ):
        """The digest covers the lint package's own sources, so shipping a
        new or edited rule (e.g. rules_seed.py) invalidates every cached
        finding produced by the previous linter build."""
        import shutil
        from pathlib import Path

        import repro.lint as lint_pkg

        package_dir = Path(lint_pkg.__file__).resolve().parent
        copy = tmp_path / "lint"
        copy.mkdir()
        for source in package_dir.glob("*.py"):
            shutil.copy(source, copy / source.name)
        before = cache_mod.ruleset_fingerprint(package_dir=copy)
        assert before == cache_mod.ruleset_fingerprint(package_dir=copy)
        with (copy / "rules_seed.py").open("a") as handle:
            handle.write("\n# edited\n")
        after = cache_mod.ruleset_fingerprint(package_dir=copy)
        assert after != before

    def test_select_participates_in_the_key(self, cache_env):
        source = "x = 1\n"
        all_rules = FindingsCache(root=cache_env)
        selected = FindingsCache(root=cache_env, select=["DET002"])
        all_rules.put("m.py", source, [])
        assert selected.get("m.py", source) is None

    def test_corrupt_entry_is_a_miss(self, cache_env):
        source = "x = 1\n"
        cache = FindingsCache(root=cache_env)
        cache.put("m.py", source, [])
        entry = cache._entry_path("m.py", source)
        entry.write_text("not json{", encoding="utf-8")
        fresh = FindingsCache(root=cache_env)
        assert fresh.get("m.py", source) is None
        assert fresh.misses == 1

    def test_wrong_shape_entry_is_a_miss(self, cache_env):
        source = "x = 1\n"
        cache = FindingsCache(root=cache_env)
        cache.put("m.py", source, [])
        entry = cache._entry_path("m.py", source)
        entry.write_text(json.dumps([{"nonsense": True}]), encoding="utf-8")
        assert FindingsCache(root=cache_env).get("m.py", source) is None


class TestWholeProgramNeverCached:
    def test_purity_findings_recur_on_full_cache_hit(
        self, cache_env, tmp_path
    ):
        target = tmp_path / "app.py"
        target.write_text(
            "# repro: module=pkg.app\n"
            "import time\n"
            "\n"
            "\n"
            "def root():\n"
            "    return time.time()  # repro: allow-DET002(fixture)\n"
        )
        config = PurityConfig(
            roots=("pkg.app.root",),
            method_roots=(),
            quarantine=(),
            snapshot_modules=(),
            source_path="<test>",
        )
        first = lint_paths(
            [str(target)],
            whole_program=True,
            purity_config=config,
            use_cache=True,
        )
        second = lint_paths(
            [str(target)],
            whole_program=True,
            purity_config=config,
            use_cache=True,
        )
        # Per-file phase hit the cache, yet the interprocedural phase
        # re-ran and re-derived the PURE002 finding from the live AST.
        assert second.cache_hits == 1
        for report in (first, second):
            assert [f.rule for f in report.findings] == ["PURE002"]

"""Static ↔ dynamic crosscheck for the purity analyzer and the sanitizer.

The acceptance bar for the purity subsystem is *fail-open pairing*: every
bad fixture the static pass flags must also trip the runtime sanitizer when
its ``root`` actually runs under ``sanitizer.guard`` — except the one
documented static-only over-approximation (the nonlocal cell).  Good
fixtures must be silent on both sides.  Plus the hash-seed canary and a
sanitized serial/parallel bit-equivalence run.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import sanitizer
from repro.experiment.harness import RandomizedTrial, TrialConfig
from repro.lint.engine import lint_whole_program, parse_module
from repro.lint.purity import PurityConfig
from repro.sanitizer import SanitizerViolation

FIXTURES = Path(__file__).parent / "purity_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


# ---------------------------------------------------------------------------
# Fixture loading: execute a purity fixture under its pragma module name so
# the sanitizer's namespace snapshots (keyed by sys.modules) can see it.
# ---------------------------------------------------------------------------


def _load_fixture(stem):
    module_name = f"fixturepkg.{stem}"
    path = FIXTURES / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(module_name, path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def sandbox():
    """Arm the sanitizer around one fixture module; always disarm."""
    loaded = []

    def arm(stem):
        module = _load_fixture(stem)
        loaded.append(module.__name__)
        sanitizer.install([module.__name__])
        return module

    yield arm
    sanitizer.uninstall()
    for name in loaded:
        sys.modules.pop(name, None)
    os.environ.pop("PURITY_FIXTURE_SESSION", None)


@pytest.fixture(scope="module")
def static_rules():
    """Map fixture stem -> set of unsuppressed PURE rules it fires."""
    parsed = [
        parse_module(p.read_text(), p.as_posix())
        for p in sorted(FIXTURES.glob("*.py"))
    ]
    config = PurityConfig(
        roots=tuple(f"{p.module}.root" for p in parsed),
        method_roots=(),
        quarantine=(),
        snapshot_modules=(),
        source_path="<crosscheck>",
    )
    by_stem = {}
    for finding in lint_whole_program(parsed, config):
        if finding.suppressed:
            continue
        stem = Path(finding.path).stem
        by_stem.setdefault(stem, set()).add(finding.rule)
    return by_stem


# ---------------------------------------------------------------------------
# The dual corpus: (stem, static rule, runtime call, violation fragment).
# Eight pairs — each fails open on BOTH sides.
# ---------------------------------------------------------------------------

DUAL_PAIRS = [
    pytest.param(
        "pure001_bad_global_rebind",
        "PURE001",
        lambda m: m.root(3),
        "module state mutated",
        id="global_rebind",
    ),
    pytest.param(
        "pure001_bad_module_cache",
        "PURE001",
        lambda m: m.root(5),
        "module state mutated",
        id="module_cache",
    ),
    pytest.param(
        "pure001_bad_class_attr",
        "PURE001",
        lambda m: m.root(7),
        "module state mutated",
        id="class_attr",
    ),
    pytest.param(
        "pure002_bad_wallclock",
        "PURE002",
        lambda m: m.root(1),
        "wall-clock read",
        id="wallclock",
    ),
    pytest.param(
        "pure002_bad_global_random",
        "PURE002",
        lambda m: m.root(1),
        "global-RNG draw",
        id="global_random",
    ),
    pytest.param(
        "pure002_bad_numpy_global",
        "PURE002",
        lambda m: m.root(1),
        "global-RNG draw",
        id="numpy_global",
    ),
    pytest.param(
        "pure002_bad_environ_write",
        "PURE002",
        lambda m: m.root(1),
        "environment write",
        id="environ_write",
    ),
    pytest.param(
        "pure003_bad_dual_rng",
        "PURE003",
        lambda m: m.root(2, np.random.default_rng(0)),
        "unseeded RNG construction",
        id="dual_rng",
    ),
]


class TestFailOpenPairs:
    @pytest.mark.parametrize("stem,rule,call,fragment", DUAL_PAIRS)
    def test_static_flag_has_a_dynamic_trip(
        self, sandbox, static_rules, stem, rule, call, fragment
    ):
        # Static side: the whole-program pass flags the fixture.
        assert rule in static_rules.get(stem, set()), (
            f"{stem}: static pass did not fire {rule} "
            f"(got {static_rules.get(stem)})"
        )
        # Dynamic side: running root() under guard trips the sanitizer.
        module = sandbox(stem)
        with pytest.raises(SanitizerViolation) as err:
            with sanitizer.guard(stem):
                call(module)
        assert fragment in str(err.value), str(err.value)

    @pytest.mark.parametrize("stem,rule,call,fragment", DUAL_PAIRS)
    def test_trip_requires_the_guard(self, sandbox, stem, rule, call, fragment):
        """Outside a guard scope the patched tree must stay benign."""
        module = sandbox(stem)
        call(module)  # no guard -> no SanitizerViolation

    def test_at_least_six_dual_pairs(self):
        assert len(DUAL_PAIRS) >= 6


class TestGoodFixturesStaySilent:
    @pytest.mark.parametrize(
        "stem,call",
        [
            pytest.param(
                "pure_good_seeded", lambda m: m.root(4), id="seeded"
            ),
            pytest.param(
                "pure003_good_fallback",
                lambda m: m.root(4),
                id="fallback_constructs",
            ),
            pytest.param(
                "pure003_good_fallback",
                lambda m: m.root(4, rng=np.random.default_rng(9)),
                id="fallback_threads",
            ),
        ],
    )
    def test_good_root_runs_clean_under_guard(self, sandbox, stem, call):
        module = sandbox(stem)
        with sanitizer.guard(stem):
            result = call(module)
        assert isinstance(result, float)

    def test_good_fixture_repeats_are_deterministic(self, sandbox):
        module = sandbox("pure_good_seeded")
        with sanitizer.guard("repeat"):
            first = module.root(11)
            second = module.root(11)
        assert first == second


class TestStaticOnlyNonlocal:
    """The documented asymmetry: PURE001 over-approximates nonlocal cells."""

    def test_static_fires_but_dynamic_is_silent(self, sandbox, static_rules):
        assert "PURE001" in static_rules["pure001_bad_nonlocal_cell"]
        module = sandbox("pure001_bad_nonlocal_cell")
        with sanitizer.guard("nonlocal"):
            total = module.root([1, 2, 3])
        assert total == 6  # cell died with the frame; no module state leaked


class TestHashCanary:
    def test_canary_is_stable_within_a_process(self):
        assert sanitizer.hash_canary() == sanitizer.hash_canary()
        assert len(sanitizer.hash_canary()) == 16

    def test_canary_varies_with_hash_seed(self):
        """Different PYTHONHASHSEEDs must yield different canaries for at
        least one pair — proving the canary actually senses hash ordering."""
        code = "from repro import sanitizer; print(sanitizer.hash_canary())"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        canaries = set()
        for seed in ("1", "2", "3", "4", "5"):
            env["PYTHONHASHSEED"] = seed
            out = subprocess.run(
                [sys.executable, "-c", code],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            canaries.add(out.stdout.strip())
        assert len(canaries) >= 2, canaries


def _classical_specs():
    from repro.abr.bba import BBA
    from repro.abr.mpc import MpcHm
    from repro.experiment.schemes import SchemeSpec

    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
    ]


@pytest.mark.parallel_smoke
class TestSanitizedTrial:
    """The production path runs clean — and bit-identical — under guard."""

    def test_serial_parallel_equivalence_under_sanitizer(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        sanitizer.install(sanitizer.DEFAULT_SNAPSHOT_MODULES)
        try:
            config = TrialConfig(n_sessions=8, seed=0, collect_telemetry=True)
            serial = RandomizedTrial(_classical_specs(), config).run()
            parallel = RandomizedTrial(_classical_specs(), config).run(
                workers=2
            )
        finally:
            sanitizer.uninstall()
        assert serial.expt_ids == parallel.expt_ids
        assert len(serial.sessions) == len(parallel.sessions)
        for sa, sb in zip(serial.sessions, parallel.sessions):
            assert sa.session_id == sb.session_id
            assert sa.scheme == sb.scheme
            for ra, rb in zip(sa.streams, sb.streams):
                assert ra.records == rb.records
                assert ra.stall_time == rb.stall_time
        assert serial.consort.arms == parallel.consort.arms
        assert serial.telemetry is not None
        assert parallel.telemetry is not None
        assert serial.telemetry.video_sent == parallel.telemetry.video_sent

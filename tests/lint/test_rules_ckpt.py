"""Tests for the checkpoint-coverage rules CKPT000–CKPT002.

Covers the fixture corpus, the exclusion-config error surface (CKPT000),
and the acceptance-bar mutation test: adding an undeclared field to the
real ``FleetConfig`` must fail CKPT001 until it is fingerprinted or
allowlisted.
"""

from pathlib import Path

import pytest

from repro.lint.engine import lint_whole_program, parse_module
from repro.lint.purity import PurityConfig
from repro.lint.rules_ckpt import (
    ClassCoverage,
    FingerprintExclusions,
)

FIXTURES = Path(__file__).parent / "ckpt_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_CLASS = "fixturepkg.ckpt001_bad_field.JobConfig"
GOOD_CLASS = "fixturepkg.ckpt001_good_covered.JobConfig"


def _lint(named_sources, exclusions=None):
    parsed = [
        parse_module(text, (FIXTURES / f"{stem}.py").as_posix())
        for stem, text in sorted(named_sources.items())
    ]
    config = PurityConfig(roots=(), source_path="<test>")
    return list(lint_whole_program(parsed, config, exclusions=exclusions))


def _sources(*stems):
    return {stem: (FIXTURES / f"{stem}.py").read_text() for stem in stems}


def _coverage(class_qual, exclude=None):
    module = class_qual.rsplit(".", 1)[0]
    return ClassCoverage(
        fingerprint=(f"{module}.JobConfig.fingerprint",),
        exclude=dict(exclude or {}),
    )


class TestCkpt001:
    def test_uncovered_field_fires(self):
        exclusions = FingerprintExclusions(
            classes={BAD_CLASS: _coverage(BAD_CLASS)}
        )
        findings = _lint(_sources("ckpt001_bad_field"), exclusions)
        ckpt = [f for f in findings if f.rule == "CKPT001"]
        assert len(ckpt) == 1
        assert "'verbose'" in ckpt[0].message

    def test_covered_and_excluded_fields_are_silent(self):
        exclusions = FingerprintExclusions(
            classes={
                GOOD_CLASS: _coverage(
                    GOOD_CLASS, {"workers": "execution knob only"}
                )
            }
        )
        findings = _lint(_sources("ckpt001_good_covered"), exclusions)
        assert [f for f in findings if f.rule.startswith("CKPT00")] == []

    def test_rule_is_off_without_an_exclusions_config(self):
        findings = _lint(_sources("ckpt001_bad_field"))
        assert [f for f in findings if f.rule == "CKPT001"] == []

    def test_excluding_the_field_pacifies_it(self):
        exclusions = FingerprintExclusions(
            classes={
                BAD_CLASS: _coverage(
                    BAD_CLASS, {"verbose": "logging toggle only"}
                )
            }
        )
        findings = _lint(_sources("ckpt001_bad_field"), exclusions)
        assert [f for f in findings if f.rule == "CKPT001"] == []


class TestCkpt000ConfigErrors:
    def test_unknown_class_in_scope_is_a_config_error(self):
        exclusions = FingerprintExclusions(
            classes={
                "fixturepkg.ckpt001_bad_field.Ghost": _coverage(BAD_CLASS)
            }
        )
        findings = _lint(_sources("ckpt001_bad_field"), exclusions)
        errors = [f for f in findings if f.rule == "CKPT000"]
        assert len(errors) == 1
        assert "Ghost" in errors[0].message

    def test_unknown_fingerprint_function_in_scope_is_a_config_error(self):
        exclusions = FingerprintExclusions(
            classes={
                BAD_CLASS: ClassCoverage(
                    fingerprint=("fixturepkg.ckpt001_bad_field.digest",),
                    exclude={},
                )
            }
        )
        findings = _lint(_sources("ckpt001_bad_field"), exclusions)
        errors = [f for f in findings if f.rule == "CKPT000"]
        assert len(errors) == 1
        assert "digest" in errors[0].message

    def test_out_of_scope_entries_are_skipped_quietly(self):
        """A partial lint must not demand the whole tree: entries whose
        module was not linted are out of scope, not config errors."""
        exclusions = FingerprintExclusions(
            classes={
                "repro.fleet.runner.FleetConfig": ClassCoverage(
                    fingerprint=(
                        "repro.fleet.runner.FleetConfig.fingerprint",
                    ),
                    exclude={"chunk_sessions": "cadence"},
                )
            }
        )
        findings = _lint(_sources("ckpt001_bad_field"), exclusions)
        assert [f for f in findings if f.rule.startswith("CKPT00")] == []

    def test_stale_exclusion_for_missing_field_is_a_config_error(self):
        exclusions = FingerprintExclusions(
            classes={
                BAD_CLASS: _coverage(BAD_CLASS, {"ghost_field": "stale"})
            }
        )
        findings = _lint(_sources("ckpt001_bad_field"), exclusions)
        errors = [f for f in findings if f.rule == "CKPT000"]
        assert any("ghost_field" in f.message for f in errors)

    def test_stale_exclusion_for_covered_field_is_a_config_error(self):
        exclusions = FingerprintExclusions(
            classes={
                BAD_CLASS: _coverage(
                    BAD_CLASS,
                    {"seed": "stale", "verbose": "real exclusion"},
                )
            }
        )
        findings = _lint(_sources("ckpt001_bad_field"), exclusions)
        errors = [f for f in findings if f.rule == "CKPT000"]
        assert any("'seed'" in f.message for f in errors)

    def test_versioned_loader_rejects_future_schemas(self, tmp_path):
        path = tmp_path / "exclusions.json"
        path.write_text('{"version": 99, "classes": {}}')
        with pytest.raises(ValueError, match="version"):
            FingerprintExclusions.load(path)


class TestCkpt002:
    def test_unthreaded_nonlocal_fires(self):
        findings = _lint(_sources("ckpt002_bad_nonlocal"))
        ckpt = [f for f in findings if f.rule == "CKPT002"]
        assert len(ckpt) == 1
        assert "'commits'" in ckpt[0].message
        assert "next_session_id" not in ckpt[0].message

    @pytest.mark.parametrize(
        "stem", ["ckpt002_good_extra", "ckpt002_good_helper"]
    )
    def test_threaded_state_is_silent(self, stem):
        findings = _lint(_sources(stem))
        assert [f for f in findings if f.rule == "CKPT002"] == []

    def test_threading_the_counter_repairs_the_bad_fixture(self):
        sources = _sources("ckpt002_bad_nonlocal")
        sources["ckpt002_bad_nonlocal"] = sources[
            "ckpt002_bad_nonlocal"
        ].replace("sink=sink,", 'sink=sink,\n        extra={"commits": commits},')
        findings = _lint(sources)
        assert [f for f in findings if f.rule == "CKPT002"] == []


class TestFleetConfigMutation:
    """The acceptance bar: a new undeclared FleetConfig knob must fail."""

    RUNNER = REPO_ROOT / "src" / "repro" / "fleet" / "runner.py"
    EXCLUSIONS = FingerprintExclusions(
        classes={
            "repro.fleet.runner.FleetConfig": ClassCoverage(
                fingerprint=("repro.fleet.runner.FleetConfig.fingerprint",),
                exclude={
                    "chunk_sessions": "cadence only",
                    "executor": "execution knob",
                    "batch_lanes": "lockstep width",
                },
            )
        }
    )

    def _lint_runner(self, text):
        parsed = [parse_module(text, "src/repro/fleet/runner.py")]
        config = PurityConfig(roots=(), source_path="<test>")
        return [
            f
            for f in lint_whole_program(
                parsed, config, exclusions=self.EXCLUSIONS
            )
            if f.rule == "CKPT001"
        ]

    def test_unmodified_fleet_config_is_fully_declared(self):
        assert self._lint_runner(self.RUNNER.read_text()) == []

    def test_new_undeclared_field_fails_before_allowlisting(self):
        text = self.RUNNER.read_text()
        anchor = "    batch_lanes: int = 64"
        assert anchor in text
        mutated = text.replace(
            anchor, "    new_knob: int = 0\n" + anchor, 1
        )
        findings = self._lint_runner(mutated)
        assert len(findings) == 1
        assert "'new_knob'" in findings[0].message

    def test_allowlisting_the_new_field_restores_green(self):
        text = self.RUNNER.read_text()
        anchor = "    batch_lanes: int = 64"
        mutated = text.replace(
            anchor, "    new_knob: int = 0\n" + anchor, 1
        )
        exclusions = FingerprintExclusions(
            classes={
                "repro.fleet.runner.FleetConfig": ClassCoverage(
                    fingerprint=(
                        "repro.fleet.runner.FleetConfig.fingerprint",
                    ),
                    exclude={
                        "chunk_sessions": "cadence only",
                        "executor": "execution knob",
                        "batch_lanes": "lockstep width",
                        "new_knob": "decided: execution knob",
                    },
                )
            }
        )
        parsed = [parse_module(mutated, "src/repro/fleet/runner.py")]
        config = PurityConfig(roots=(), source_path="<test>")
        findings = [
            f
            for f in lint_whole_program(parsed, config, exclusions=exclusions)
            if f.rule == "CKPT001"
        ]
        assert findings == []

    def test_checked_in_exclusions_match_the_tree(self):
        """The real fingerprint-exclusions.json validates against src."""
        real = FingerprintExclusions.load(
            REPO_ROOT / "fingerprint-exclusions.json"
        )
        assert "repro.fleet.runner.FleetConfig" in real.classes
        for coverage in real.classes.values():
            for reason in coverage.exclude.values():
                assert reason.strip()

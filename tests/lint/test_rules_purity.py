"""Static-side tests for the interprocedural purity phase.

Fixture-driven: every ``purity_fixtures/pure*_bad_*`` file must produce its
named rule against a config that declares the fixture's ``root`` function,
and every good fixture must stay silent.  Plus config plumbing: PURE000 on
missing roots, method-root expansion over subclass overrides, inline
suppressions, and the witness chain in messages.
"""

import re
import textwrap
from pathlib import Path

import pytest

from repro.lint.engine import lint_whole_program, parse_module
from repro.lint.purity import (
    PurityConfig,
    analyze_program,
    expand_roots,
)
from repro.lint.callgraph import build_graph

PURITY_FIXTURES = Path(__file__).parent / "purity_fixtures"

_NAME = re.compile(r"^(?P<rule>pure\d+|pure)_(?P<verdict>bad|good)_")


def _parse_fixture(path):
    return parse_module(path.read_text(), path.as_posix())


def _all_fixtures():
    parsed = [_parse_fixture(p) for p in sorted(PURITY_FIXTURES.glob("*.py"))]
    assert parsed, "purity fixture corpus is missing"
    return parsed


def _config_for(parsed_modules):
    return PurityConfig(
        roots=tuple(f"{p.module}.root" for p in parsed_modules),
        method_roots=(),
        quarantine=(),
        snapshot_modules=(),
        source_path="<test>",
    )


def _fixture_cases():
    cases = []
    for path in sorted(PURITY_FIXTURES.glob("*.py")):
        match = _NAME.match(path.name)
        assert match, (
            f"purity fixture {path.name} does not follow "
            "<rule>_<bad|good>_* naming"
        )
        rule = match.group("rule").upper()
        cases.append(
            pytest.param(path, rule, match.group("verdict"), id=path.stem)
        )
    return cases


def _mod(module, source):
    path = module.replace(".", "/") + ".py"
    return parse_module(
        f"# repro: module={module}\n" + textwrap.dedent(source), path
    )


class TestFixtureCorpus:
    def test_corpus_shape(self):
        """Every PURE rule needs >=2 bad and >=1 good fixtures."""
        counts = {"PURE001": 0, "PURE002": 0, "PURE003": 0}
        good = 0
        for path in PURITY_FIXTURES.glob("*.py"):
            match = _NAME.match(path.name)
            assert match is not None
            if match.group("verdict") == "good":
                good += 1
            elif match.group("rule").upper() in counts:
                counts[match.group("rule").upper()] += 1
        # PURE002 bad fixtures double as PURE001/PURE003 context; each rule
        # still needs its own dedicated bad coverage.
        assert counts["PURE001"] >= 2
        assert counts["PURE002"] >= 2
        assert counts["PURE003"] >= 1
        assert good >= 2

    @pytest.mark.parametrize("path,rule,verdict", _fixture_cases())
    def test_fixture(self, path, rule, verdict):
        parsed = _all_fixtures()
        config = _config_for(parsed)
        findings = [
            f
            for f in lint_whole_program(parsed, config)
            if not f.suppressed
        ]
        mine = [f for f in findings if f.path == path.as_posix()]
        if verdict == "bad" and rule != "PURE":
            assert any(f.rule == rule for f in mine), (
                f"{path.name}: expected a {rule} finding, got "
                f"{[f.rule for f in mine]}"
            )
        elif verdict == "good":
            assert mine == [], (
                f"{path.name}: expected silence, got "
                f"{[f.format_human() for f in mine]}"
            )

    def test_witness_chain_appears_in_indirect_findings(self):
        parsed = _all_fixtures()
        config = _config_for(parsed)
        findings = lint_whole_program(parsed, config)
        wallclock = [
            f
            for f in findings
            if f.rule == "PURE002" and "wallclock" in f.path
        ]
        assert wallclock, "wallclock fixture did not fire"
        assert any("root -> _now" in f.message for f in wallclock)


class TestConfig:
    def test_missing_root_is_a_pure000_config_finding(self):
        parsed = {
            p.path: p for p in [_mod("pkg.a", "def real():\n    return 1\n")]
        }
        graph = build_graph(parsed)
        config = PurityConfig(
            roots=("pkg.a.absent",),
            method_roots=(),
            quarantine=(),
            snapshot_modules=(),
            source_path="purity-roots.json",
        )
        roots, findings = expand_roots(graph, config)
        assert roots == []
        assert [f.rule for f in findings] == ["PURE000"]
        assert findings[0].path == "purity-roots.json"
        assert "pkg.a.absent" in findings[0].message

    def test_method_roots_expand_to_subclass_overrides(self):
        parsed = {
            p.path: p
            for p in [
                _mod(
                    "pkg.abr",
                    """
                    class Base:
                        def choose(self):
                            return 0

                    class Sub(Base):
                        def choose(self):
                            return 1
                    """,
                )
            ]
        }
        graph = build_graph(parsed)
        config = PurityConfig(
            roots=(),
            method_roots=("pkg.abr.Base.choose",),
            quarantine=(),
            snapshot_modules=(),
            source_path="<test>",
        )
        roots, findings = expand_roots(graph, config)
        assert findings == []
        assert set(roots) == {"pkg.abr.Base.choose", "pkg.abr.Sub.choose"}

    def test_load_rejects_unknown_version(self, tmp_path):
        bad = tmp_path / "purity-roots.json"
        bad.write_text('{"version": 99, "roots": []}')
        with pytest.raises(ValueError):
            PurityConfig.load(bad)

    def test_checked_in_config_names_real_functions(self):
        """The repo's own purity-roots.json must stay in sync with src."""
        repo_root = Path(__file__).resolve().parents[2]
        config = PurityConfig.load(repo_root / "purity-roots.json")
        src = repo_root / "src"
        parsed = {}
        for path in sorted(src.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            text = path.read_text()
            pm = parse_module(text, path.as_posix())
            parsed[pm.path] = pm
        graph = build_graph(parsed, exclude_prefixes=config.quarantine)
        roots, findings = expand_roots(graph, config)
        assert findings == [], [f.format_human() for f in findings]
        assert "repro.experiment.harness.run_session" in roots
        # The ABR method root expands over every scheme implementation.
        choose_impls = [r for r in roots if r.endswith(".choose")]
        assert len(choose_impls) >= 5


class TestSuppressions:
    def test_inline_allow_silences_a_purity_finding(self):
        parsed = [
            _mod(
                "pkg.s",
                """
                import time


                def root():
                    # repro: allow-PURE002(fixture reason)
                    return time.time()
                """,
            )
        ]
        config = _config_for(parsed)
        findings = lint_whole_program(parsed, config)
        pure = [f for f in findings if f.rule == "PURE002"]
        assert pure and all(f.suppressed for f in pure)
        assert pure[0].suppression_reason == "fixture reason"

    def test_analyze_program_sorts_deterministically(self):
        parsed = {p.path: p for p in _all_fixtures()}
        config = _config_for(list(parsed.values()))
        first = [
            f.format_human() for f in analyze_program(parsed, config)
        ]
        second = [
            f.format_human() for f in analyze_program(parsed, config)
        ]
        assert first == second == sorted(first, key=lambda s: s)

"""Static tests for the SEED001–SEED004 rules over the dual fixture corpus.

Three layers:

* the fixture sweep — every bad fixture fires exactly its documented rule
  set, every good fixture is silent;
* mutation sensitivity — string-level edits flip goods bad and bads good,
  proving the fixtures actually exercise the rule logic rather than
  passing vacuously;
* the CLI contract — JSON schema, exit codes, and baseline survival for
  whole-program SEED findings.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.engine import lint_whole_program, parse_module
from repro.lint.purity import PurityConfig

FIXTURES = Path(__file__).parent / "dataflow_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

EXPECTED_RULES = {
    "seed001_bad_mul_add": {"SEED001"},
    "seed001_bad_xor": {"SEED001"},
    "seed001_good_tuple": set(),
    "seed002_bad_shared": {"SEED001", "SEED002"},
    "seed002_bad_module_fn": {"SEED002"},
    "seed002_good_split": set(),
    "seed002_allowed_shared": set(),
    "seed003_bad_pair": {"SEED003"},
    "seed003_bad_var": {"SEED003"},
    "seed003_good_const": set(),
    "seed004_bad_forkmap": {"SEED004"},
    "seed004_bad_pool": {"SEED004"},
    "seed004_good_tuple": set(),
}


def _lint(named_sources):
    """Lint {stem: source} under an empty-roots whole-program config."""
    parsed = [
        parse_module(text, (FIXTURES / f"{stem}.py").as_posix())
        for stem, text in sorted(named_sources.items())
    ]
    config = PurityConfig(roots=(), source_path="<test>")
    return list(lint_whole_program(parsed, config))


def _corpus_sources():
    return {p.stem: p.read_text() for p in sorted(FIXTURES.glob("*.py"))}


@pytest.fixture(scope="module")
def corpus_findings():
    return _lint(_corpus_sources())


class TestFixtureSweep:
    def test_corpus_matches_expectations(self):
        assert set(_corpus_sources()) == set(EXPECTED_RULES)

    @pytest.mark.parametrize("stem", sorted(EXPECTED_RULES))
    def test_fixture_fires_exactly_its_rules(self, corpus_findings, stem):
        fired = {
            f.rule
            for f in corpus_findings
            if Path(f.path).stem == stem and not f.suppressed
        }
        assert fired == EXPECTED_RULES[stem]

    def test_allowed_fixture_is_suppressed_not_clean(self, corpus_findings):
        suppressed = {
            f.rule
            for f in corpus_findings
            if Path(f.path).stem == "seed002_allowed_shared" and f.suppressed
        }
        assert "SEED002" in suppressed

    def test_findings_name_the_consumer_sites(self, corpus_findings):
        shared = [
            f
            for f in corpus_findings
            if f.rule == "SEED002"
            and Path(f.path).stem == "seed002_bad_module_fn"
        ]
        assert len(shared) == 1
        assert "2 independent RNG consumers" in shared[0].message


MUTATIONS = [
    pytest.param(
        "seed001_good_tuple",
        [("(seed, 0x51, i)", "seed * 1_000_003 + i")],
        "SEED001",
        id="good_tuple_to_arith",
    ),
    pytest.param(
        "seed002_good_split",
        [
            (
                "    rng = np.random.default_rng((seed, 0xA1))\n"
                "    return float(rng.random()) + _score((seed, 0xB2))",
                "    derived = seed + 41\n"
                "    rng = np.random.default_rng(derived)\n"
                "    return float(rng.random()) + _score(derived)",
            )
        ],
        "SEED002",
        id="good_split_to_shared",
    ),
    pytest.param(
        "seed003_good_const",
        [("(seed, _STREAM_A, i)", "(seed, i)")],
        "SEED003",
        id="good_const_to_bare_fold",
    ),
    pytest.param(
        "seed004_good_tuple",
        [("(seed, 0.5)", "(np.random.default_rng((seed, 0x66)), 0.5)")],
        "SEED004",
        id="good_tuple_to_generator_crossing",
    ),
]


class TestMutationSensitivity:
    @pytest.mark.parametrize("stem,replacements,rule", MUTATIONS)
    def test_degrading_a_good_fixture_fires_the_rule(
        self, stem, replacements, rule
    ):
        sources = _corpus_sources()
        mutated = sources[stem]
        for old, new in replacements:
            assert old in mutated, f"mutation anchor missing in {stem}"
            mutated = mutated.replace(old, new)
        sources[stem] = mutated
        fired = {
            f.rule
            for f in _lint(sources)
            if Path(f.path).stem == stem and not f.suppressed
        }
        assert rule in fired

    def test_repairing_a_bad_fixture_silences_it(self):
        sources = _corpus_sources()
        repaired = sources["seed001_bad_mul_add"]
        repaired = repaired.replace("seed * 1_000_003 + i", "(seed, 0x51, i)")
        repaired = repaired.replace("seed * 1_000_003 + j", "(seed, 0x52, j)")
        sources["seed001_bad_mul_add"] = repaired
        fired = {
            f.rule
            for f in _lint(sources)
            if Path(f.path).stem == "seed001_bad_mul_add" and not f.suppressed
        }
        assert fired == set()


# ---------------------------------------------------------------------------
# CLI contract.
# ---------------------------------------------------------------------------


def _run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={
            "PYTHONPATH": (REPO_ROOT / "src").as_posix(),
            "PATH": "/usr/bin:/bin",
        },
    )


@pytest.fixture
def cli_tree(tmp_path):
    """A tmp tree with one bad fixture, one good, and an empty-roots config."""
    (tmp_path / "purity-roots.json").write_text(
        json.dumps({"version": 1, "roots": []})
    )
    bad = tmp_path / "seed001_bad_mul_add.py"
    bad.write_text((FIXTURES / "seed001_bad_mul_add.py").read_text())
    good = tmp_path / "seed001_good_tuple.py"
    good.write_text((FIXTURES / "seed001_good_tuple.py").read_text())
    return tmp_path


class TestCli:
    def test_bad_fixture_exits_one_with_schema_v1_json(self, cli_tree):
        proc = _run_cli(
            [
                "seed001_bad_mul_add.py",
                "--whole-program",
                "--no-baseline",
                "--no-cache",
                "--format",
                "json",
            ],
            cwd=cli_tree,
        )
        assert proc.returncode == 1, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["schema_version"] == 1
        assert payload["whole_program"] is True
        assert payload["ok"] is False
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"SEED001"}
        for finding in payload["findings"]:
            assert {"rule", "path", "line", "col", "message"} <= set(finding)

    def test_good_fixture_exits_zero(self, cli_tree):
        proc = _run_cli(
            [
                "seed001_good_tuple.py",
                "--whole-program",
                "--no-baseline",
                "--no-cache",
                "--format",
                "json",
            ],
            cwd=cli_tree,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []

    def test_bad_exclusions_path_exits_two(self, cli_tree):
        proc = _run_cli(
            [
                "seed001_good_tuple.py",
                "--whole-program",
                "--no-baseline",
                "--no-cache",
                "--fingerprint-exclusions",
                "does-not-exist.json",
            ],
            cwd=cli_tree,
        )
        assert proc.returncode == 2
        assert "error" in proc.stderr.lower()

    def test_seed_findings_survive_in_a_baseline(self, cli_tree):
        baseline = cli_tree / "baseline.json"
        first = _run_cli(
            [
                "seed001_bad_mul_add.py",
                "--whole-program",
                "--no-cache",
                "--no-baseline",
                "--format",
                "json",
            ],
            cwd=cli_tree,
        )
        findings = json.loads(first.stdout)["findings"]
        from repro.lint.baseline import Baseline
        from repro.lint.findings import Finding

        restored = [
            Finding(
                rule=f["rule"],
                path=f["path"],
                line=f["line"],
                col=f["col"],
                message=f["message"],
                source_line=f.get("source_line", ""),
            )
            for f in findings
        ]
        Baseline.from_findings(restored).write(baseline)
        second = _run_cli(
            [
                "seed001_bad_mul_add.py",
                "--whole-program",
                "--no-cache",
                "--baseline",
                "baseline.json",
                "--format",
                "json",
            ],
            cwd=cli_tree,
        )
        assert second.returncode == 0, second.stdout + second.stderr
        payload = json.loads(second.stdout)
        assert payload["findings"] == []
        assert len(payload["baselined"]) == len(findings)

"""Unit tests for ``repro.sanitizer`` lifecycle and snapshot machinery.

The fixture-pairing behaviour lives in ``test_purity_crosscheck``; this
file pins the plumbing: install/uninstall restore semantics, guard no-op
without install, allowance comments, the env self-arming decorator, and
the stability of namespace digests.
"""

import random
import time

import numpy as np
import pytest

from repro import sanitizer
from repro.sanitizer import SanitizerViolation


@pytest.fixture(autouse=True)
def disarm(monkeypatch):
    """Every test starts and ends with the sanitizer fully disarmed."""
    monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
    sanitizer.uninstall()
    yield
    sanitizer.uninstall()


class TestLifecycle:
    def test_install_patches_and_uninstall_restores(self):
        original_time = time.time
        original_random = random.random
        sanitizer.install()
        assert time.time is not original_time
        assert random.random is not original_random
        sanitizer.uninstall()
        assert time.time is original_time
        assert random.random is original_random

    def test_install_is_idempotent(self):
        sanitizer.install(["repro.sanitizer"])
        patched = time.time
        sanitizer.install(["repro.experiment.harness"])
        assert time.time is patched  # not double-wrapped
        assert sanitizer._STATE.snapshot_modules == (
            "repro.experiment.harness",
        )

    def test_enabled_reflects_env(self, monkeypatch):
        assert not sanitizer.enabled()
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        assert sanitizer.enabled()
        monkeypatch.setenv(sanitizer.ENV_FLAG, "0")
        assert not sanitizer.enabled()

    def test_install_from_env(self, monkeypatch):
        assert not sanitizer.install_from_env()
        assert not sanitizer.installed()
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        assert sanitizer.install_from_env()
        assert sanitizer.installed()


class TestGuard:
    def test_guard_is_a_noop_without_install(self):
        with sanitizer.guard("noop"):
            time.time()  # patched tripwire absent: nothing can raise
        assert not sanitizer.active()

    def test_patched_functions_pass_through_outside_guard(self):
        sanitizer.install()
        before = time.time()
        assert isinstance(before, float)
        assert isinstance(random.random(), float)
        assert isinstance(np.random.default_rng(), np.random.Generator)

    def test_wallclock_trips_inside_guard(self):
        sanitizer.install()
        with pytest.raises(SanitizerViolation, match="wall-clock read"):
            with sanitizer.guard("unit"):
                time.time()

    def test_allowance_comment_silences_the_trip(self):
        sanitizer.install()
        with sanitizer.guard("unit"):
            stamp = time.time()  # repro: allow-PURE002(sanitizer unit test)
        assert isinstance(stamp, float)

    def test_guarded_decorator_self_arms_from_env(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")

        @sanitizer.guarded("unit")
        def entry():
            return time.time()

        assert not sanitizer.installed()
        with pytest.raises(SanitizerViolation):
            entry()
        assert sanitizer.installed()

    def test_guarded_decorator_is_transparent_when_off(self):
        @sanitizer.guarded("unit")
        def entry(value, scale=2):
            """doc"""
            return value * scale

        assert entry(3) == 6
        assert entry.__name__ == "entry"
        assert entry.__doc__ == "doc"


class TestSnapshots:
    def test_digest_is_stable_for_untouched_module(self):
        import repro.experiment.harness  # noqa: F401  (must be loaded)

        first = sanitizer.snapshot_digest("repro.experiment.harness")
        second = sanitizer.snapshot_digest("repro.experiment.harness")
        assert first == second != "<unloaded>"

    def test_unloaded_module_digest_is_sentinel(self):
        assert sanitizer.snapshot_digest("no.such.module") == "<unloaded>"

    def test_digest_senses_module_mutation(self):
        import repro.experiment.parallel as parallel

        before = sanitizer.snapshot_digest("repro.experiment.parallel")
        parallel._WORKER_STATE.payload = ("sentinel",)
        try:
            assert (
                sanitizer.snapshot_digest("repro.experiment.parallel")
                != before
            )
        finally:
            parallel._WORKER_STATE.payload = None
        assert sanitizer.snapshot_digest("repro.experiment.parallel") == before

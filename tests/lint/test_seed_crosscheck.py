"""Static ↔ dynamic crosscheck for the seed-lineage rules and the runtime
seed registry.

Every SEED rule has at least one fixture that fails on BOTH sides: the
whole-program pass flags it statically, and actually running its ``root``
under ``sanitizer.guard`` (with colliding arguments) trips the runtime —
the duplicate-seed registry for SEED001–SEED003, the ``fork_map``
generator tripwire for SEED004.  Good fixtures are silent on both sides.
This is the same fail-open pairing contract the purity subsystem holds
(see ``test_purity_crosscheck.py``).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro import sanitizer
from repro.lint.engine import lint_whole_program, parse_module
from repro.lint.purity import PurityConfig
from repro.sanitizer import SanitizerViolation

FIXTURES = Path(__file__).parent / "dataflow_fixtures"


def _load_fixture(stem):
    module_name = f"fixturepkg.{stem}"
    path = FIXTURES / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(module_name, path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def sandbox():
    """Arm the sanitizer around one fixture module; always disarm."""
    loaded = []

    def arm(stem):
        module = _load_fixture(stem)
        loaded.append(module.__name__)
        sanitizer.install([module.__name__])
        return module

    yield arm
    sanitizer.uninstall()
    for name in loaded:
        sys.modules.pop(name, None)


@pytest.fixture(scope="module")
def static_rules():
    """Map fixture stem -> set of unsuppressed SEED rules it fires."""
    parsed = [
        parse_module(p.read_text(), p.as_posix())
        for p in sorted(FIXTURES.glob("*.py"))
    ]
    config = PurityConfig(roots=(), source_path="<crosscheck>")
    by_stem = {}
    for finding in lint_whole_program(parsed, config):
        if finding.suppressed:
            continue
        stem = Path(finding.path).stem
        by_stem.setdefault(stem, set()).add(finding.rule)
    return by_stem


# ---------------------------------------------------------------------------
# The dual corpus: (stem, static rule, runtime call, violation fragment).
# Every SEED rule appears at least once.
# ---------------------------------------------------------------------------

DUAL_PAIRS = [
    pytest.param(
        "seed001_bad_mul_add",
        "SEED001",
        lambda m: m.root(7, 3, 3),
        "duplicate materialized seed",
        id="seed001_mul_add",
    ),
    pytest.param(
        "seed001_bad_xor",
        "SEED001",
        lambda m: m.root(0, 4, 4),
        "duplicate materialized seed",
        id="seed001_xor",
    ),
    pytest.param(
        "seed002_bad_shared",
        "SEED002",
        lambda m: m.root(5, 2),
        "duplicate materialized seed",
        id="seed002_class_handoff",
    ),
    pytest.param(
        "seed002_bad_module_fn",
        "SEED002",
        lambda m: m.root(3),
        "duplicate materialized seed",
        id="seed002_inlined_helper",
    ),
    pytest.param(
        "seed003_bad_pair",
        "SEED003",
        lambda m: m.root(6, 6),
        "duplicate materialized seed",
        id="seed003_permuted_fold",
    ),
    pytest.param(
        "seed003_bad_var",
        "SEED003",
        lambda m: m.root(2, 2),
        "duplicate materialized seed",
        id="seed003_fold_via_variable",
    ),
    pytest.param(
        "seed004_bad_forkmap",
        "SEED004",
        lambda m: m.root(9),
        "generator crossed a process boundary",
        id="seed004_fork_map",
    ),
]


class TestFailOpenPairs:
    @pytest.mark.parametrize("stem,rule,call,fragment", DUAL_PAIRS)
    def test_static_flag_has_a_dynamic_trip(
        self, sandbox, static_rules, stem, rule, call, fragment
    ):
        assert rule in static_rules.get(stem, set()), (
            f"{stem}: static pass did not fire {rule} "
            f"(got {static_rules.get(stem)})"
        )
        module = sandbox(stem)
        with pytest.raises(SanitizerViolation) as err:
            with sanitizer.guard(stem):
                call(module)
        assert fragment in str(err.value), str(err.value)

    @pytest.mark.parametrize("stem,rule,call,fragment", DUAL_PAIRS)
    def test_trip_requires_the_guard(self, sandbox, stem, rule, call, fragment):
        """Outside a guard scope the patched tree must stay benign."""
        module = sandbox(stem)
        call(module)  # no guard -> no SanitizerViolation

    def test_every_seed_rule_has_a_dual_pair(self):
        rules = {rule for _, rule, _, _ in (p.values for p in DUAL_PAIRS)}
        assert rules == {"SEED001", "SEED002", "SEED003", "SEED004"}


class TestGoodFixturesStaySilent:
    GOODS = [
        pytest.param(
            "seed001_good_tuple", lambda m: m.root(4, 1, 1), id="seed001"
        ),
        pytest.param("seed002_good_split", lambda m: m.root(3), id="seed002"),
        pytest.param(
            "seed003_good_const", lambda m: m.root(5, 5), id="seed003"
        ),
        pytest.param("seed004_good_tuple", lambda m: m.root(2), id="seed004"),
    ]

    @pytest.mark.parametrize("stem,call", GOODS)
    def test_good_root_is_statically_clean(self, static_rules, stem, call):
        assert static_rules.get(stem, set()) == set()

    @pytest.mark.parametrize("stem,call", GOODS)
    def test_good_root_runs_clean_under_guard(self, sandbox, stem, call):
        module = sandbox(stem)
        with sanitizer.guard(stem):
            result = call(module)
        assert result is not None


class TestSeedRegistry:
    def test_same_site_replay_is_exempt(self, sandbox):
        """Re-materializing the same seed at the SAME site is replay, not
        duplication — the oboe/emulator rebuild idiom."""
        module = sandbox("seed001_good_tuple")
        with sanitizer.guard("replay"):
            module.root(1, 2, 3)
            module.root(1, 2, 3)

    def test_registry_records_normalized_seeds(self, sandbox):
        module = sandbox("seed003_good_const")
        with sanitizer.guard("records"):
            module.root(5, 1)
            records = sanitizer.seed_records()
        keys = [key for key, _ in records]
        assert ("tuple", 5, 0x5A, 1) in keys
        assert ("tuple", 5, 0x5B, 1) in keys

    def test_registry_clears_per_guard(self, sandbox):
        module = sandbox("seed001_bad_mul_add")
        with sanitizer.guard("first"):
            module.root(7, 3, 4)
            assert len(sanitizer.seed_records()) >= 2
        with sanitizer.guard("second"):
            assert sanitizer.seed_records() == []

    def test_allow_comment_pacifies_the_registry(self, sandbox):
        module = sandbox("seed002_allowed_shared")
        with sanitizer.guard("allowed"):
            result = module.root(5)
        assert isinstance(result, float)


class TestStaticOnlyPool:
    """The documented asymmetry: pool-style methods are a static-only
    over-approximation; the runtime tripwire covers only ``fork_map``."""

    def test_static_fires_but_dynamic_is_silent(self, sandbox, static_rules):
        assert "SEED004" in static_rules["seed004_bad_pool"]
        module = sandbox("seed004_bad_pool")
        with sanitizer.guard("pool"):
            result = module.root(11)
        assert isinstance(result, float)

"""Inline suppression comments: same-line, standalone-line, reason audit."""

import textwrap

from repro.lint import MALFORMED_RULE_ID, lint_source, parse_suppressions


def _lint(code):
    return lint_source(textwrap.dedent(code))


class TestSuppressionComments:
    def test_same_line_suppression_silences_finding(self):
        findings = _lint(
            """\
            import time

            def report():
                return time.time()  # repro: allow-DET002(operator-facing log only)
            """
        )
        det002 = [f for f in findings if f.rule == "DET002"]
        assert len(det002) == 1
        assert det002[0].suppressed
        assert det002[0].suppression_reason == "operator-facing log only"

    def test_standalone_comment_suppresses_next_code_line(self):
        findings = _lint(
            """\
            import time

            def report():
                # repro: allow-DET002(operator-facing log only)
                return time.time()
            """
        )
        det002 = [f for f in findings if f.rule == "DET002"]
        assert len(det002) == 1 and det002[0].suppressed

    def test_wrong_rule_id_does_not_silence(self):
        findings = _lint(
            """\
            import time

            def report():
                return time.time()  # repro: allow-DET001(not the right rule)
            """
        )
        det002 = [f for f in findings if f.rule == "DET002"]
        assert len(det002) == 1 and not det002[0].suppressed

    def test_suppression_without_reason_is_malformed(self):
        findings = _lint(
            """\
            import time

            def report():
                return time.time()  # repro: allow-DET002
            """
        )
        assert any(f.rule == MALFORMED_RULE_ID for f in findings)
        det002 = [f for f in findings if f.rule == "DET002"]
        assert len(det002) == 1 and not det002[0].suppressed

    def test_empty_reason_is_malformed(self):
        findings = _lint(
            """\
            x = 1  # repro: allow-API001()
            """
        )
        assert any(f.rule == MALFORMED_RULE_ID for f in findings)

    def test_multiple_suppressions_on_one_line(self):
        lines = [
            "x = 1  # repro: allow-DET001(a) repro: allow-SIM001(b)",
        ]
        effective, malformed = parse_suppressions(lines, "f.py")
        assert not malformed
        rules = {s.rule for s in effective[1]}
        assert rules == {"DET001", "SIM001"}

    def test_standalone_comment_skips_blank_and_comment_lines(self):
        lines = [
            "# repro: allow-DET002(why)",
            "",
            "# another comment",
            "t = time.time()",
        ]
        effective, _ = parse_suppressions(lines, "f.py")
        assert any(s.rule == "DET002" for s in effective.get(4, []))

"""Tier-1 gate: the source tree must lint clean.

This is the enforcement point for the determinism contract — the same check
CI runs as ``repro lint src``.  It runs with *no* baseline, so the tree
must be genuinely clean (inline reasoned suppressions are the only waiver
mechanism), and every suppression in the tree must carry a reason.
"""

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


class TestTreeClean:
    def test_src_lints_clean_without_baseline(self):
        report = lint_paths([SRC], baseline=None)
        assert report.files_checked > 50
        assert not report.parse_errors, report.parse_errors
        assert not report.findings, "\n" + "\n".join(
            f.format_human() for f in report.findings
        )

    def test_all_suppressions_carry_reasons(self):
        report = lint_paths([SRC], baseline=None)
        for finding in report.suppressed:
            assert finding.suppression_reason.strip(), finding.format_human()

    def test_committed_baseline_is_empty(self):
        # The goal state after the cleanup sweep: nothing grandfathered.
        baseline_path = REPO_ROOT / "lint-baseline.json"
        assert baseline_path.is_file()
        import json

        data = json.loads(baseline_path.read_text())
        assert data["findings"] == {}


class TestTreeCleanWholeProgram:
    """The full interprocedural gate — purity, seed lineage, and
    checkpoint coverage — over the checked-in configs, exactly as CI runs
    ``repro lint src --whole-program``."""

    def test_src_lints_clean_whole_program(self):
        from repro.lint.purity import PurityConfig
        from repro.lint.rules_ckpt import FingerprintExclusions

        config = PurityConfig.load(REPO_ROOT / "purity-roots.json")
        exclusions = FingerprintExclusions.load(
            REPO_ROOT / "fingerprint-exclusions.json"
        )
        report = lint_paths(
            [SRC],
            baseline=None,
            whole_program=True,
            purity_config=config,
            fingerprint_exclusions=exclusions,
        )
        assert not report.parse_errors, report.parse_errors
        assert not report.findings, "\n" + "\n".join(
            f.format_human() for f in report.findings
        )

    def test_seed_and_ckpt_suppressions_carry_reasons(self):
        from repro.lint.purity import PurityConfig
        from repro.lint.rules_ckpt import FingerprintExclusions

        config = PurityConfig.load(REPO_ROOT / "purity-roots.json")
        exclusions = FingerprintExclusions.load(
            REPO_ROOT / "fingerprint-exclusions.json"
        )
        report = lint_paths(
            [SRC],
            baseline=None,
            whole_program=True,
            purity_config=config,
            fingerprint_exclusions=exclusions,
        )
        waived = [
            f
            for f in report.suppressed
            if f.rule.startswith("SEED") or f.rule.startswith("CKPT")
        ]
        assert waived, "expected reasoned SEED/CKPT waivers in the tree"
        for finding in waived:
            assert finding.suppression_reason.strip(), finding.format_human()


class TestTreeCleanDurability:
    """The crash-consistency gate — ``repro lint src --whole-program
    --durability`` over the checked-in ``durable-roots.json``."""

    def _report(self):
        from repro.lint.purity import PurityConfig
        from repro.lint.rules_ckpt import FingerprintExclusions
        from repro.lint.rules_durability import DurabilityConfig

        return lint_paths(
            [SRC],
            baseline=None,
            whole_program=True,
            purity_config=PurityConfig.load(REPO_ROOT / "purity-roots.json"),
            fingerprint_exclusions=FingerprintExclusions.load(
                REPO_ROOT / "fingerprint-exclusions.json"
            ),
            durability=DurabilityConfig.load(
                REPO_ROOT / "durable-roots.json"
            ),
        )

    def test_src_lints_clean_with_durability(self):
        report = self._report()
        assert not report.parse_errors, report.parse_errors
        assert not report.findings, "\n" + "\n".join(
            f.format_human() for f in report.findings
        )

    def test_durable_roots_config_is_validated(self):
        # Every declared root/helper/pair member resolves (no DUR000) and
        # the declared roots actually cover the tree's durable writers.
        from repro.lint.rules_durability import DurabilityConfig

        config = DurabilityConfig.load(REPO_ROOT / "durable-roots.json")
        assert "repro.fleet.checkpoint.CheckpointManager.save" in config.roots
        assert config.atomic_helpers
        assert config.commit_order
        report = self._report()
        assert not any(f.rule == "DUR000" for f in report.findings)

    def test_dur_suppressions_carry_reasons(self):
        report = self._report()
        for finding in report.suppressed:
            if finding.rule.startswith("DUR"):
                assert finding.suppression_reason.strip(), (
                    finding.format_human()
                )

"""Optional mypy gate: runs when mypy is installed, skips otherwise.

CI has a dedicated ``typecheck`` job that installs mypy and runs it
directly; this test mirrors it for local development so annotation
regressions in ``repro.lint`` / ``repro.obs`` / ``repro.core`` surface in
the normal pytest loop too.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

mypy_missing = importlib.util.find_spec("mypy") is None


@pytest.mark.skipif(mypy_missing, reason="mypy not installed")
def test_mypy_clean_on_contract_packages():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        "mypy reported errors:\n" + result.stdout + result.stderr
    )

"""Tests for repro.media.chunk — encoded chunks and menus."""

import pytest

from repro.media.chunk import ChunkMenu, EncodedChunk
from repro.media.ladder import PUFFER_LADDER


def make_version(rung=0, chunk_index=0, size=1e5, ssim=10.0):
    return EncodedChunk(
        chunk_index=chunk_index,
        profile=PUFFER_LADDER[rung],
        size_bytes=size,
        ssim_db=ssim,
        duration=2.002,
    )


class TestEncodedChunk:
    def test_bitrate(self):
        chunk = make_version(size=250_250)  # 250,250 B * 8 / 2.002 s = 1 Mbps
        assert chunk.bitrate == pytest.approx(1e6)

    def test_size_bits(self):
        assert make_version(size=100).size_bits == 800

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            make_version(size=0)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            EncodedChunk(0, PUFFER_LADDER[0], 100.0, 10.0, 0.0)


class TestChunkMenu:
    def test_orders_by_profile_bitrate(self):
        menu = ChunkMenu([make_version(rung=5), make_version(rung=0)])
        assert menu[0].profile is PUFFER_LADDER[0]
        assert menu[1].profile is PUFFER_LADDER[5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChunkMenu([])

    def test_mixed_chunk_indices_rejected(self):
        with pytest.raises(ValueError, match="share a chunk index"):
            ChunkMenu([make_version(chunk_index=0), make_version(rung=1, chunk_index=1)])

    def test_sizes_and_ssims(self):
        menu = ChunkMenu(
            [make_version(rung=0, size=100, ssim=5.0),
             make_version(rung=1, size=200, ssim=8.0)]
        )
        assert menu.sizes == (100, 200)
        assert menu.ssims_db == (5.0, 8.0)

    def test_version_for_profile(self):
        v0 = make_version(rung=0)
        menu = ChunkMenu([v0, make_version(rung=1)])
        assert menu.version_for_profile(PUFFER_LADDER[0]) is v0
        with pytest.raises(KeyError):
            menu.version_for_profile(PUFFER_LADDER[9])

    def test_duration_shared(self):
        menu = ChunkMenu([make_version(rung=0), make_version(rung=1)])
        assert menu.duration == 2.002

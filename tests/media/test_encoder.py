"""Tests for repro.media.encoder — the VBR encoder model (Fig. 3 behaviour)."""

import numpy as np
import pytest

from repro.media.encoder import VbrEncoder, encode_clip
from repro.media.ladder import PUFFER_LADDER
from repro.media.source import DEFAULT_CHANNELS, VideoSource


class TestEncodeChunk:
    def test_menu_has_all_rungs(self):
        menu = VbrEncoder(seed=0).encode_chunk(0, 1.0)
        assert len(menu) == len(PUFFER_LADDER)

    def test_sizes_increase_with_rung(self):
        menu = VbrEncoder(seed=0).encode_chunk(0, 1.0)
        sizes = menu.sizes
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_quality_monotone_in_rung(self):
        # A bigger encoding of the same frames never looks worse.
        encoder = VbrEncoder(seed=1)
        for i in range(50):
            menu = encoder.encode_chunk(i, float(np.exp(np.random.default_rng(i).normal())))
            ssims = menu.ssims_db
            assert all(a <= b + 1e-12 for a, b in zip(ssims, ssims[1:]))

    def test_size_scales_with_complexity(self):
        encoder = VbrEncoder(size_noise_sigma=0.0, seed=0)
        small = encoder.encode_chunk(0, 0.5)
        big = encoder.encode_chunk(1, 2.0)
        assert big[0].size_bytes == pytest.approx(4 * small[0].size_bytes)

    def test_complex_chunks_lose_quality(self):
        encoder = VbrEncoder(quality_noise_sigma=0.0, seed=0)
        easy = encoder.encode_chunk(0, 0.5)
        hard = encoder.encode_chunk(1, 2.0)
        assert hard[9].ssim_db < easy[9].ssim_db

    def test_invalid_complexity_rejected(self):
        with pytest.raises(ValueError):
            VbrEncoder().encode_chunk(0, 0.0)

    def test_size_within_stream_varies(self):
        # Fig. 3a: VBR chunk sizes vary several-fold within one stream.
        menus = encode_clip(DEFAULT_CHANNELS[3], 200, seed=5)
        top_sizes = [m[9].size_bytes for m in menus]
        assert max(top_sizes) / min(top_sizes) > 2.0

    def test_quality_within_stream_varies(self):
        # Fig. 3b: SSIM varies chunk-by-chunk at a fixed rung.
        menus = encode_clip(DEFAULT_CHANNELS[3], 200, seed=5)
        top_ssims = [m[9].ssim_db for m in menus]
        assert max(top_ssims) - min(top_ssims) > 1.0

    def test_mean_bitrate_near_target(self):
        menus = encode_clip(DEFAULT_CHANNELS[0], 400, seed=2)
        mean_size = np.mean([m[9].size_bytes for m in menus])
        target_size = PUFFER_LADDER[9].target_bitrate * 2.002 / 8
        assert mean_size == pytest.approx(target_size, rel=0.3)


class TestEncodeSource:
    def test_chunk_indices_sequential(self):
        encoder = VbrEncoder(seed=0)
        source = VideoSource(DEFAULT_CHANNELS[0], seed=0)
        menus = encoder.encode_source(source, 5, start_index=10)
        assert [m.chunk_index for m in menus] == [10, 11, 12, 13, 14]

    def test_stream_is_lazy_and_endless(self):
        encoder = VbrEncoder(seed=0)
        source = VideoSource(DEFAULT_CHANNELS[0], seed=0)
        stream = encoder.stream(source)
        for expected_index in range(30):
            menu = next(stream)
            assert menu.chunk_index == expected_index

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            VbrEncoder(size_noise_sigma=-1.0)
        with pytest.raises(ValueError):
            VbrEncoder(chunk_duration=0.0)

    def test_deterministic_given_seed(self):
        a = encode_clip(DEFAULT_CHANNELS[2], 10, seed=3)
        b = encode_clip(DEFAULT_CHANNELS[2], 10, seed=3)
        assert [m.sizes for m in a] == [m.sizes for m in b]

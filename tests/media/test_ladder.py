"""Tests for repro.media.ladder — profiles and the Puffer ladder."""

import pytest

from repro.media.ladder import PUFFER_LADDER, EncodingLadder, EncodingProfile


def make_profile(name="x", bitrate=1e6, ssim=10.0):
    return EncodingProfile(name, 640, 360, 23, bitrate, ssim)


class TestPufferLadder:
    def test_has_ten_rungs(self):
        assert len(PUFFER_LADDER) == 10

    def test_bitrate_range_matches_paper(self):
        # "from 240p60 ... (about 200 kbps) to 1080p60 ... (about 5,500
        # kbps)" (§3.1).
        assert PUFFER_LADDER.lowest.target_bitrate == pytest.approx(200e3)
        assert PUFFER_LADDER.highest.target_bitrate == pytest.approx(5500e3)

    def test_lowest_is_240p_crf26(self):
        assert PUFFER_LADDER.lowest.height == 240
        assert PUFFER_LADDER.lowest.crf == 26

    def test_highest_is_1080p_crf20(self):
        assert PUFFER_LADDER.highest.height == 1080
        assert PUFFER_LADDER.highest.crf == 20

    def test_bitrates_strictly_increasing(self):
        rates = PUFFER_LADDER.bitrates
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_base_quality_increasing(self):
        ssims = [p.base_ssim_db for p in PUFFER_LADDER]
        assert all(a < b for a, b in zip(ssims, ssims[1:]))

    def test_quality_has_diminishing_returns(self):
        # dB gain per rung shrinks toward the top of the ladder, which is
        # what separates "maximize bitrate" from "maximize SSIM" (Fig. 4).
        ssims = [p.base_ssim_db for p in PUFFER_LADDER]
        gains = [b - a for a, b in zip(ssims, ssims[1:])]
        assert gains[0] > gains[-1]

    def test_index_of(self):
        assert PUFFER_LADDER.index_of("240p60-crf26") == 0
        assert PUFFER_LADDER.index_of("1080p60-crf20") == 9
        with pytest.raises(KeyError):
            PUFFER_LADDER.index_of("nope")


class TestEncodingLadder:
    def test_orders_by_bitrate(self):
        high = make_profile("high", 5e6)
        low = make_profile("low", 1e6)
        ladder = EncodingLadder([high, low])
        assert ladder[0] is low
        assert ladder[1] is high

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EncodingLadder([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            EncodingLadder([make_profile("a"), make_profile("a", 2e6)])

    def test_iteration(self):
        ladder = EncodingLadder([make_profile("a"), make_profile("b", 2e6)])
        assert [p.name for p in ladder] == ["a", "b"]

    def test_pixels_per_frame(self):
        assert make_profile().pixels_per_frame == 640 * 360

"""Tests for repro.media.source — channels and the complexity process."""

import numpy as np
import pytest

from repro.media.source import (
    DEFAULT_CHANNELS,
    Channel,
    SceneComplexityProcess,
    VideoSource,
)


class TestChannel:
    def test_six_default_channels(self):
        # Puffer carries six over-the-air channels (§3.1).
        assert len(DEFAULT_CHANNELS) == 6
        assert len({c.name for c in DEFAULT_CHANNELS}) == 6

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Channel("x", complexity_sigma=-0.1)
        with pytest.raises(ValueError):
            Channel("x", scene_cut_rate=1.5)
        with pytest.raises(ValueError):
            Channel("x", mean_reversion=0.0)


class TestSceneComplexityProcess:
    def test_complexity_positive(self):
        proc = SceneComplexityProcess(DEFAULT_CHANNELS[0], np.random.default_rng(0))
        for _ in range(500):
            assert proc.step() > 0

    def test_long_run_mean_near_one(self):
        # log-complexity is zero-mean, so complexity has geometric mean 1.
        proc = SceneComplexityProcess(DEFAULT_CHANNELS[0], np.random.default_rng(1))
        logs = [np.log(proc.step()) for _ in range(5000)]
        assert abs(np.mean(logs)) < 0.1

    def test_stationary_spread_matches_sigma(self):
        channel = Channel("x", complexity_sigma=0.4, scene_cut_rate=0.05)
        proc = SceneComplexityProcess(channel, np.random.default_rng(2))
        logs = [np.log(proc.step()) for _ in range(8000)]
        assert np.std(logs) == pytest.approx(0.4, rel=0.15)

    def test_autocorrelation_present(self):
        # Consecutive chunks are similar (scenes persist).
        channel = Channel("x", complexity_sigma=0.4, scene_cut_rate=0.0,
                          mean_reversion=0.05)
        proc = SceneComplexityProcess(channel, np.random.default_rng(3))
        logs = np.array([np.log(proc.step()) for _ in range(4000)])
        corr = np.corrcoef(logs[:-1], logs[1:])[0, 1]
        assert corr > 0.7


class TestVideoSource:
    def test_take(self):
        source = VideoSource(DEFAULT_CHANNELS[0], seed=0)
        values = source.take(10)
        assert len(values) == 10
        assert all(v > 0 for v in values)

    def test_take_negative_rejected(self):
        with pytest.raises(ValueError):
            VideoSource(DEFAULT_CHANNELS[0]).take(-1)

    def test_iteration_is_endless(self):
        source = VideoSource(DEFAULT_CHANNELS[0], seed=0)
        it = iter(source)
        for _ in range(100):
            assert next(it) > 0

    def test_deterministic_given_seed(self):
        a = VideoSource(DEFAULT_CHANNELS[1], seed=7).take(20)
        b = VideoSource(DEFAULT_CHANNELS[1], seed=7).take(20)
        assert a == b

    def test_different_seeds_differ(self):
        a = VideoSource(DEFAULT_CHANNELS[1], seed=7).take(20)
        b = VideoSource(DEFAULT_CHANNELS[1], seed=8).take(20)
        assert a != b

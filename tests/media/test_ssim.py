"""Tests for repro.media.ssim — dB conversions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.media.ssim import MAX_SSIM_DB, ssim_db_to_index, ssim_index_to_db


class TestConversions:
    def test_known_values(self):
        # SSIM 0.9 -> 10 dB; 0.99 -> 20 dB.
        assert ssim_index_to_db(0.9) == pytest.approx(10.0)
        assert ssim_index_to_db(0.99) == pytest.approx(20.0)

    def test_paper_headline_value(self):
        # Fugu's 16.9 dB mean SSIM corresponds to an index near 0.98.
        index = ssim_db_to_index(16.9)
        assert 0.97 < index < 0.99

    def test_zero_index_is_zero_db(self):
        assert ssim_index_to_db(0.0) == 0.0

    def test_perfect_index_clamped(self):
        assert ssim_index_to_db(1.0) == MAX_SSIM_DB

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ssim_index_to_db(-0.1)
        with pytest.raises(ValueError):
            ssim_index_to_db(1.1)
        with pytest.raises(ValueError):
            ssim_db_to_index(-1.0)

    @given(st.floats(0.0, 0.999999))
    def test_round_trip(self, index):
        assert ssim_db_to_index(ssim_index_to_db(index)) == pytest.approx(
            index, abs=1e-9
        )

    @given(st.floats(0.0, 0.99), st.floats(0.0, 0.99))
    def test_monotonic(self, a, b):
        da, db = ssim_index_to_db(a), ssim_index_to_db(b)
        if a < b:
            assert da <= db
        elif a > b:
            assert da >= db
        else:
            assert math.isclose(da, db)

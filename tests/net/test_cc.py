"""Tests for repro.net.cc — BBR-like and CUBIC-like congestion control."""

import pytest

from repro.net.cc.base import (
    DEFAULT_MSS,
    INITIAL_CWND_SEGMENTS,
    CongestionControl,
    RoundSample,
)
from repro.net.cc.bbr import BbrLike
from repro.net.cc.cubic import CubicLike


def sample(
    delivered=14600.0,
    duration=0.05,
    rtt=0.05,
    rate=None,
    link_limited=False,
    loss=False,
):
    if rate is None:
        rate = delivered * 8.0 / duration
    return RoundSample(
        delivered_bytes=delivered,
        duration=duration,
        rtt=rtt,
        delivery_rate_bps=rate,
        link_limited=link_limited,
        loss=loss,
    )


class TestBase:
    def test_initial_window_is_ten_segments(self):
        cc = BbrLike()
        assert cc.cwnd_segments == pytest.approx(INITIAL_CWND_SEGMENTS)

    def test_idle_decay_halves_per_rto(self):
        cc = BbrLike()
        cc.cwnd_bytes = 100 * DEFAULT_MSS
        cc.on_idle(idle_time=0.4, rtt=0.1)  # rto = 0.2 -> two RTOs
        assert cc.cwnd_segments == pytest.approx(25, rel=0.01)

    def test_idle_decay_floors_at_initial_window(self):
        cc = BbrLike()
        cc.cwnd_bytes = 100 * DEFAULT_MSS
        cc.on_idle(idle_time=1000.0, rtt=0.05)
        assert cc.cwnd_segments >= INITIAL_CWND_SEGMENTS

    def test_short_idle_no_decay(self):
        cc = BbrLike()
        cc.cwnd_bytes = 100 * DEFAULT_MSS
        cc.on_idle(idle_time=0.01, rtt=0.1)
        assert cc.cwnd_bytes == 100 * DEFAULT_MSS

    def test_invalid_mss_rejected(self):
        with pytest.raises(ValueError):
            CongestionControl(mss=0)


class TestBbrLike:
    def test_startup_doubles_window(self):
        cc = BbrLike()
        w0 = cc.cwnd_bytes
        cc.on_round(sample(rate=1e6))
        assert cc.cwnd_bytes >= 2 * w0 * 0.99

    def test_exits_startup_when_bandwidth_plateaus(self):
        cc = BbrLike()
        for _ in range(10):
            cc.on_round(sample(rate=5e6, rtt=0.05))
        assert not cc.in_startup

    def test_steady_state_cwnd_tracks_bdp(self):
        cc = BbrLike(cwnd_gain=2.0)
        for _ in range(15):
            cc.on_round(sample(rate=8e6, rtt=0.05))
        bdp_bytes = 8e6 / 8.0 * 0.05
        assert cc.cwnd_bytes == pytest.approx(2.0 * bdp_bytes, rel=0.05)

    def test_ignores_loss(self):
        cc = BbrLike()
        for _ in range(15):
            cc.on_round(sample(rate=8e6, rtt=0.05))
        before = cc.cwnd_bytes
        cc.on_round(sample(rate=8e6, rtt=0.05, loss=True))
        assert cc.cwnd_bytes == pytest.approx(before, rel=0.05)

    def test_long_idle_reenters_startup(self):
        cc = BbrLike()
        for _ in range(15):
            cc.on_round(sample(rate=8e6, rtt=0.05))
        assert not cc.in_startup
        cc.on_idle(idle_time=30.0, rtt=0.05)
        assert cc.in_startup

    def test_bandwidth_filter_takes_max(self):
        cc = BbrLike()
        cc.on_round(sample(rate=2e6))
        cc.on_round(sample(rate=9e6))
        cc.on_round(sample(rate=4e6))
        assert cc.bandwidth_estimate_bps == 9e6

    def test_invalid_gain_rejected(self):
        with pytest.raises(ValueError):
            BbrLike(cwnd_gain=0.0)


class TestCubicLike:
    def test_slow_start_doubles(self):
        cc = CubicLike()
        w0 = cc.cwnd_bytes
        cc.on_round(sample())
        assert cc.cwnd_bytes == pytest.approx(2 * w0)

    def test_loss_multiplicative_decrease(self):
        cc = CubicLike()
        cc.cwnd_bytes = 100 * DEFAULT_MSS
        cc.ssthresh_bytes = 50 * DEFAULT_MSS  # not in slow start
        cc.on_round(sample(loss=True))
        assert cc.cwnd_segments == pytest.approx(70, rel=0.01)

    def test_loss_sets_ssthresh(self):
        cc = CubicLike()
        cc.cwnd_bytes = 100 * DEFAULT_MSS
        cc.on_round(sample(loss=True))
        assert cc.ssthresh_bytes == cc.cwnd_bytes
        assert not cc.in_slow_start

    def test_cubic_growth_after_loss(self):
        cc = CubicLike()
        cc.cwnd_bytes = 100 * DEFAULT_MSS
        cc.on_round(sample(loss=True))
        w_after_loss = cc.cwnd_bytes
        # Growth resumes; after enough time the window re-approaches W_max.
        for _ in range(200):
            cc.on_round(sample(duration=0.1, rtt=0.05))
        assert cc.cwnd_bytes > w_after_loss

    def test_window_never_below_two_segments(self):
        cc = CubicLike()
        for _ in range(50):
            cc.on_round(sample(loss=True))
        assert cc.cwnd_segments >= 2.0

"""Property-based suite for the CUBIC controller (RFC 8312 + RFC 7661).

Invariants that must hold for *any* round schedule:

* the congestion window never drops below the controller's minimum;
* between loss events the window never shrinks (cubic growth + the
  TCP-friendly Reno floor are both non-negative);
* back-to-back losses only lower ``ssthresh`` (multiplicative decrease is
  monotone while no round completes in between);
* app-limited rounds never inflate the window (congestion-window
  validation: a send capped by application data says nothing about path
  capacity).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.cc.base import RoundSample
from repro.net.cc.cubic import CubicLike


def sample(
    loss=False,
    app_limited=False,
    duration=0.08,
    rtt=0.08,
    delivered=100_000.0,
):
    return RoundSample(
        delivered_bytes=delivered,
        duration=duration,
        rtt=rtt,
        delivery_rate_bps=delivered * 8.0 / max(duration, 1e-9),
        link_limited=False,
        loss=loss,
        app_limited=app_limited,
    )


@st.composite
def round_samples(draw):
    loss = draw(st.booleans())
    return sample(
        loss=loss,
        app_limited=(not loss) and draw(st.booleans()),
        duration=draw(st.floats(0.005, 2.0)),
        rtt=draw(st.floats(0.005, 0.5)),
        delivered=draw(st.floats(1e3, 5e6)),
    )


@st.composite
def schedules(draw):
    """An arbitrary sequence of rounds, possibly with idle gaps."""
    events = draw(
        st.lists(
            st.tuples(round_samples(), st.floats(0.0, 30.0)),
            min_size=1,
            max_size=40,
        )
    )
    return events


class TestCubicProperties:
    @given(schedules())
    @settings(max_examples=50, deadline=None)
    def test_cwnd_never_below_minimum(self, events):
        cc = CubicLike()
        floor = 2.0 * cc.mss
        for rnd, idle in events:
            cc.on_round(rnd)
            assert cc.cwnd_bytes >= floor - 1e-9
            assert math.isfinite(cc.cwnd_bytes)
            cc.on_idle(idle, rnd.rtt)
            assert cc.cwnd_bytes >= floor - 1e-9

    @given(
        st.lists(
            st.tuples(st.floats(0.005, 1.0), st.floats(0.005, 0.5)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_window_grows_monotonically_between_losses(self, rounds):
        cc = CubicLike()
        prev = cc.cwnd_bytes
        for duration, rtt in rounds:
            cc.on_round(sample(duration=duration, rtt=rtt))
            # No loss, no idle: slow start doubles, cubic/Reno only grows.
            assert cc.cwnd_bytes >= prev - 1e-9
            prev = cc.cwnd_bytes

    @given(st.integers(1, 12), st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_ssthresh_monotone_on_back_to_back_losses(self, warmup, losses):
        cc = CubicLike()
        for _ in range(warmup):
            cc.on_round(sample())
        prev_ssthresh = cc.ssthresh_bytes
        for _ in range(losses):
            cc.on_round(sample(loss=True))
            # Each loss multiplies the window (and so ssthresh) down; with
            # no growth rounds in between the sequence is non-increasing.
            assert cc.ssthresh_bytes <= prev_ssthresh
            assert cc.ssthresh_bytes >= 2.0 * cc.mss - 1e-9
            prev_ssthresh = cc.ssthresh_bytes

    @given(schedules())
    @settings(max_examples=50, deadline=None)
    def test_app_limited_rounds_never_inflate_window(self, events):
        cc = CubicLike()
        for rnd, _ in events:
            before = cc.cwnd_bytes
            forced = RoundSample(
                delivered_bytes=rnd.delivered_bytes,
                duration=rnd.duration,
                rtt=rnd.rtt,
                delivery_rate_bps=rnd.delivery_rate_bps,
                link_limited=rnd.link_limited,
                loss=False,
                app_limited=True,
            )
            cc.on_round(forced)
            assert cc.cwnd_bytes == before

    def test_app_limited_does_not_double_in_slow_start(self):
        # The concrete regression: streaming small chunks produces an
        # app-limited final round per chunk; historically each one doubled
        # cwnd in slow start without ever filling the pipe.
        cc = CubicLike()
        start = cc.cwnd_bytes
        for _ in range(20):
            cc.on_round(sample(app_limited=True))
        assert cc.cwnd_bytes == start
        # A genuine (window-limited) round still grows the window.
        cc.on_round(sample())
        assert cc.cwnd_bytes > start

    @given(st.integers(0, 8))
    @settings(max_examples=20, deadline=None)
    def test_loss_applies_multiplicative_decrease(self, warmup):
        cc = CubicLike()
        for _ in range(warmup):
            cc.on_round(sample())
        before = cc.cwnd_bytes
        cc.on_round(sample(loss=True))
        assert cc.cwnd_bytes <= before
        assert cc.cwnd_bytes >= 2.0 * cc.mss - 1e-9

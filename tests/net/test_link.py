"""Tests for repro.net.link — capacity processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import (
    MIN_CAPACITY,
    ConstantLink,
    HeavyTailLink,
    MarkovLink,
    TraceLink,
)


class TestConstantLink:
    def test_constant(self):
        link = ConstantLink(5e6)
        assert link.capacity_at(0.0) == 5e6
        assert link.capacity_at(1000.0) == 5e6

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ConstantLink(5e6).capacity_at(-1.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ConstantLink(0.0)


class TestTraceLink:
    def test_piecewise_lookup(self):
        link = TraceLink([1e6, 2e6, 3e6], epoch=1.0, loop=False)
        assert link.capacity_at(0.5) == 1e6
        assert link.capacity_at(1.5) == 2e6
        assert link.capacity_at(2.9) == 3e6

    def test_looping(self):
        link = TraceLink([1e6, 2e6], epoch=1.0, loop=True)
        assert link.capacity_at(2.5) == 1e6
        assert link.capacity_at(3.5) == 2e6

    def test_no_loop_holds_last(self):
        link = TraceLink([1e6, 2e6], epoch=1.0, loop=False)
        assert link.capacity_at(100.0) == 2e6

    def test_capacity_floor_applied(self):
        link = TraceLink([10.0])
        assert link.capacity_at(0.0) == MIN_CAPACITY

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceLink([])

    def test_duration(self):
        assert TraceLink([1e6] * 5, epoch=2.0).duration == 10.0


class TestMarkovLink:
    def test_visits_multiple_states(self):
        # CS2P-style discrete states (Fig. 2a).
        link = MarkovLink([1e6, 5e6, 20e6], switch_probability=0.2, seed=0)
        samples = link.sample_epochs(500, epoch=1.0)
        logs = np.log(samples)
        # Samples cluster tightly around state levels.
        for state in (1e6, 5e6, 20e6):
            near = np.abs(logs - np.log(state)) < 0.2
            assert near.sum() > 10

    def test_dwell_times_are_long(self):
        link = MarkovLink([1e6, 10e6], switch_probability=0.02, seed=1)
        samples = np.array(link.sample_epochs(1000))
        # With 2% switching, consecutive samples are usually in one state.
        same_state = np.abs(np.diff(np.log(samples))) < 0.5
        assert same_state.mean() > 0.9

    def test_random_access_consistent_with_sequential(self):
        link = MarkovLink([1e6, 10e6], seed=2)
        late = link.capacity_at(50.0)
        early = link.capacity_at(10.0)
        assert link.capacity_at(50.0) == late
        assert link.capacity_at(10.0) == early

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MarkovLink([])
        with pytest.raises(ValueError):
            MarkovLink([1e6], switch_probability=2.0)


class TestHeavyTailLink:
    def test_positive_capacity_always(self):
        link = HeavyTailLink(base_bps=5e6, seed=0)
        samples = link.sample_epochs(2000)
        assert all(s >= MIN_CAPACITY for s in samples)

    def test_mean_near_base(self):
        link = HeavyTailLink(base_bps=8e6, fade_rate=0.0, seed=1)
        samples = np.array(link.sample_epochs(5000))
        geo_mean = np.exp(np.mean(np.log(samples)))
        assert geo_mean == pytest.approx(8e6, rel=0.15)

    def test_fades_occur(self):
        link = HeavyTailLink(base_bps=10e6, fade_rate=0.05, seed=2)
        samples = np.array(link.sample_epochs(3000))
        assert samples.min() < 1e6  # deep fades present

    def test_no_fades_when_disabled(self):
        link = HeavyTailLink(base_bps=10e6, fade_rate=0.0, sigma=0.1, seed=3)
        samples = np.array(link.sample_epochs(3000))
        assert samples.min() > 2e6

    def test_fade_onset_is_gradual(self):
        # The epoch before the deep phase should sit between nominal and
        # deep capacity (congestion has precursors).
        link = HeavyTailLink(
            base_bps=10e6, fade_rate=0.01, sigma=0.01, seed=4,
            fade_onset_epochs=3,
        )
        # Sample at the link's own epoch so consecutive values are visible.
        samples = np.array(link.sample_epochs(5000, epoch=1.0))
        deep = samples < 2e6
        assert deep.any()
        first_deep = int(np.argmax(deep))
        assert first_deep >= 1
        # Preceding epoch is already depressed but not fully (the onset ramp).
        assert 2e6 < samples[first_deep - 1] < 9e6

    def test_continuous_not_multimodal(self):
        # Unlike CS2P's states, Puffer-style throughput evolves
        # continuously (Fig. 2b).
        from repro.traces.stats import summarize_trace

        link = HeavyTailLink(base_bps=5e6, fade_rate=0.0, seed=5)
        stats = summarize_trace(link.sample_epochs(1000))
        assert stats.modality_score <= 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HeavyTailLink(base_bps=0.0)
        with pytest.raises(ValueError):
            HeavyTailLink(base_bps=1e6, reversion=0.0)
        with pytest.raises(ValueError):
            HeavyTailLink(base_bps=1e6, fade_rate=1.5)
        with pytest.raises(ValueError):
            HeavyTailLink(base_bps=1e6, fade_duration_epochs=0.5)

    @given(st.integers(0, 1000), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_given_seed(self, seed, query_epoch):
        a = HeavyTailLink(base_bps=5e6, seed=seed).capacity_at(float(query_epoch))
        b = HeavyTailLink(base_bps=5e6, seed=seed).capacity_at(float(query_epoch))
        assert a == b

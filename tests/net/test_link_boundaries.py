"""Epoch-boundary regression tests for capacity lookups.

The original scalar lookup used ``int(t / epoch)``, which is wrong exactly
at epoch boundaries when ``epoch`` is not binary-representable: for
``t = k * epoch`` the float division can land just below ``k`` (~6% of the
time for ``epoch = 0.3``), returning the *previous* epoch's capacity at the
instant a new epoch begins.  These tests pin the corrected half-open
interval rule — epoch ``i`` owns ``[i * epoch, (i + 1) * epoch)`` — and the
scalar/vector agreement the batch kernel depends on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import (
    ConstantLink,
    HeavyTailLink,
    MarkovLink,
    TraceLink,
    epoch_index,
    epoch_index_array,
)

# 0.3 and 0.1 are the classic non-representable widths; 6.0 is the paper's
# Fig. 2 epoch; 0.25 is exactly representable (control).
EPOCHS = [0.3, 0.1, 6.0, 0.25]


class TestEpochIndex:
    @pytest.mark.parametrize("epoch", EPOCHS)
    def test_exact_boundaries_start_their_own_epoch(self, epoch):
        for k in range(2000):
            t = k * epoch
            assert epoch_index(t, epoch) == k, f"t={t!r} epoch={epoch!r}"

    @pytest.mark.parametrize("epoch", EPOCHS)
    def test_half_open_interval_rule(self, epoch):
        for k in range(500):
            t = k * epoch
            i = epoch_index(t, epoch)
            assert i * epoch <= t
            assert t < (i + 1) * epoch

    def test_midpoints(self):
        assert epoch_index(0.45, 0.3) == 1
        assert epoch_index(0.29999999, 0.3) == 0

    def test_just_below_boundary_stays_in_previous_epoch(self):
        t = np.nextafter(3 * 0.3, 0.0)
        assert epoch_index(t, 0.3) == 2

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            epoch_index(-0.1, 0.3)

    @pytest.mark.parametrize("epoch", EPOCHS)
    def test_array_matches_scalar_on_boundaries(self, epoch):
        times = np.array([k * epoch for k in range(1000)])
        idx = epoch_index_array(times, epoch)
        assert idx.tolist() == [
            epoch_index(float(t), epoch) for t in times
        ]

    @given(
        st.floats(0.0, 1e4),
        st.sampled_from(EPOCHS),
    )
    @settings(max_examples=200, deadline=None)
    def test_array_matches_scalar_everywhere(self, t, epoch):
        assert epoch_index_array(np.array([t]), epoch)[0] == epoch_index(
            t, epoch
        )

    def test_array_negative_time_rejected(self):
        with pytest.raises(ValueError):
            epoch_index_array(np.array([0.0, -1.0]), 0.3)


def _links():
    return [
        ConstantLink(5e6),
        TraceLink([1e6, 2e6, 3e6], epoch=0.3, loop=True),
        TraceLink([1e6, 2e6, 3e6], epoch=0.3, loop=False),
        MarkovLink([1e6, 4e6], epoch=0.3, seed=7),
        HeavyTailLink(5e6, epoch=0.3, seed=7),
    ]


class TestBoundaryLookups:
    def test_trace_boundary_returns_new_epoch(self):
        link = TraceLink([1e6, 2e6, 3e6], epoch=0.3, loop=False)
        # t = 3 * 0.3 = 0.8999999999999999 < 0.9 in float; it still belongs
        # to epoch 3 (held last rate), not epoch 2.
        assert link.capacity_at(3 * 0.3) == 3e6
        assert link.capacity_at(2 * 0.3) == 3e6
        assert link.capacity_at(1 * 0.3) == 2e6

    def test_trace_loop_boundary_wraps_exactly(self):
        link = TraceLink([1e6, 2e6], epoch=0.3, loop=True)
        for k in range(100):
            assert link.capacity_at(k * 0.3) == link.rates_bps[k % 2]

    def test_trace_no_loop_holds_last_at_and_past_end(self):
        link = TraceLink([1e6, 2e6], epoch=0.3, loop=False)
        end = 2 * 0.3
        assert link.capacity_at(end) == 2e6
        assert link.capacity_at(end + 123.0) == 2e6

    def test_markov_boundary_matches_sequential_realization(self):
        # Random access at exact boundaries must agree with a second link
        # realized strictly sequentially mid-epoch.
        link = MarkovLink([1e6, 2e6, 8e6], epoch=0.3, seed=3)
        ref = MarkovLink([1e6, 2e6, 8e6], epoch=0.3, seed=3)
        mid = [ref.capacity_at(k * 0.3 + 0.15) for k in range(200)]
        at_boundary = [link.capacity_at(k * 0.3) for k in range(200)]
        assert at_boundary == mid

    def test_heavytail_boundary_matches_sequential_realization(self):
        link = HeavyTailLink(5e6, epoch=0.3, seed=11)
        ref = HeavyTailLink(5e6, epoch=0.3, seed=11)
        mid = [ref.capacity_at(k * 0.3 + 0.15) for k in range(200)]
        at_boundary = [link.capacity_at(k * 0.3) for k in range(200)]
        assert at_boundary == mid

    @pytest.mark.parametrize("link", _links(), ids=lambda l: type(l).__name__)
    def test_capacity_batch_matches_capacity_at_pointwise(self, link):
        # Boundaries, near-boundaries, and interior points all at once.
        base = np.array([k * 0.3 for k in range(300)])
        times = np.concatenate(
            [base, base + 0.15, np.nextafter(base[1:], 0.0)]
        )
        batch = link.capacity_batch(times)
        scalar = [link.capacity_at(float(t)) for t in times]
        assert batch.tolist() == scalar

    @pytest.mark.parametrize("link", _links(), ids=lambda l: type(l).__name__)
    def test_capacity_batch_negative_time_rejected(self, link):
        with pytest.raises(ValueError):
            link.capacity_batch(np.array([-0.5]))

"""Tests for repro.net.path — paths and the client population model."""

import numpy as np
import pytest

from repro.net.cc.bbr import BbrLike
from repro.net.cc.cubic import CubicLike
from repro.net.link import ConstantLink
from repro.net.path import (
    SLOW_PATH_THRESHOLD_BPS,
    NetworkPath,
    PathSampler,
    PopulationModel,
)


class TestNetworkPath:
    def test_connect_builds_connection(self):
        path = NetworkPath(link=ConstantLink(5e6), base_rtt=0.05)
        conn = path.connect(seed=0)
        assert conn.base_rtt == 0.05
        assert isinstance(conn.cc, BbrLike)

    def test_cubic_path(self):
        path = NetworkPath(link=ConstantLink(5e6), base_rtt=0.05, cc_name="cubic")
        assert isinstance(path.make_cc(), CubicLike)

    def test_invalid_cc_rejected(self):
        with pytest.raises(ValueError):
            NetworkPath(link=ConstantLink(5e6), base_rtt=0.05, cc_name="reno")

    def test_invalid_rtt_rejected(self):
        with pytest.raises(ValueError):
            NetworkPath(link=ConstantLink(5e6), base_rtt=0.0)


class TestPopulationModel:
    def test_slow_path_fraction_calibrated(self):
        # Fig. 8: slow paths (< 6 Mbit/s) are ~16% of viewing time.
        model = PopulationModel()
        rng = np.random.default_rng(0)
        bases = [
            model.sample_path(rng, seed=i).link.base_bps for i in range(3000)
        ]
        slow_fraction = np.mean(np.array(bases) < SLOW_PATH_THRESHOLD_BPS)
        assert 0.10 < slow_fraction < 0.22

    def test_median_throughput(self):
        model = PopulationModel(median_throughput_bps=16e6)
        rng = np.random.default_rng(1)
        bases = [
            model.sample_path(rng, seed=i).link.base_bps for i in range(2000)
        ]
        assert np.median(bases) == pytest.approx(16e6, rel=0.15)

    def test_rtt_negatively_correlated_with_throughput(self):
        # The cold-start signal Fugu exploits (Fig. 9).
        model = PopulationModel()
        rng = np.random.default_rng(2)
        paths = [model.sample_path(rng, seed=i) for i in range(2000)]
        log_tput = np.log([p.link.base_bps for p in paths])
        log_rtt = np.log([p.base_rtt for p in paths])
        corr = np.corrcoef(log_tput, log_rtt)[0, 1]
        assert corr < -0.2

    def test_rtt_within_bounds(self):
        model = PopulationModel()
        rng = np.random.default_rng(3)
        rtts = [model.sample_path(rng).base_rtt for _ in range(500)]
        assert all(0.005 <= r <= 0.8 for r in rtts)

    def test_cubic_fraction(self):
        model = PopulationModel(cubic_fraction=0.5)
        rng = np.random.default_rng(4)
        names = [model.sample_path(rng).cc_name for _ in range(400)]
        fraction = np.mean([n == "cubic" for n in names])
        assert 0.4 < fraction < 0.6

    def test_default_all_bbr(self):
        # The primary analysis is BBR-only (§3.2).
        model = PopulationModel()
        rng = np.random.default_rng(5)
        assert all(
            model.sample_path(rng).cc_name == "bbr" for _ in range(100)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PopulationModel(median_throughput_bps=0.0)
        with pytest.raises(ValueError):
            PopulationModel(cubic_fraction=1.5)


class TestPathSampler:
    def test_deterministic_given_seed(self):
        a = PathSampler(seed=7)
        b = PathSampler(seed=7)
        pa, pb = a.next_path(), b.next_path()
        assert pa.base_rtt == pb.base_rtt
        assert pa.link.base_bps == pb.link.base_bps

    def test_paths_vary(self):
        sampler = PathSampler(seed=0)
        rtts = {sampler.next_path().base_rtt for _ in range(20)}
        assert len(rtts) == 20

    def test_custom_factory(self):
        fixed = NetworkPath(link=ConstantLink(1e6), base_rtt=0.1)
        sampler = PathSampler(path_factory=lambda rng: fixed)
        assert sampler.next_path() is fixed

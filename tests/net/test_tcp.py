"""Tests for repro.net.tcp — the fluid connection model.

These cover the properties the TTP exploits: slow-start ramp (small chunks
see lower effective throughput), idle restart, and the ``tcp_info``
snapshot semantics of the ``video_sent`` record.
"""

import numpy as np
import pytest

from repro.net.cc.cubic import CubicLike
from repro.net.link import ConstantLink, TraceLink
from repro.net.tcp import TcpConnection


def fresh_connection(rate=8e6, rtt=0.05, **kwargs):
    return TcpConnection(ConstantLink(rate), base_rtt=rtt, **kwargs)


class TestTransmit:
    def test_transmission_time_positive(self):
        conn = fresh_connection()
        res = conn.transmit(500_000, 0.0)
        assert res.transmission_time > 0

    def test_small_chunk_costs_at_least_one_rtt(self):
        conn = fresh_connection(rtt=0.08)
        res = conn.transmit(1000, 0.0)
        assert res.transmission_time >= 0.08

    def test_large_transfer_approaches_link_rate(self):
        conn = fresh_connection(rate=8e6, rtt=0.05)
        size = 20_000_000  # 20 MB: ramp cost amortized away
        res = conn.transmit(size, 0.0)
        throughput = size * 8 / res.transmission_time
        assert throughput == pytest.approx(8e6, rel=0.15)

    def test_effective_throughput_grows_with_size(self):
        # The non-linearity the TTP models (§4.2): small transfers on a
        # cold window see much lower effective throughput.
        small = fresh_connection().transmit(30_000, 0.0)
        large = fresh_connection().transmit(3_000_000, 0.0)
        tput_small = 30_000 * 8 / small.transmission_time
        tput_large = 3_000_000 * 8 / large.transmission_time
        assert tput_large > 2 * tput_small

    def test_back_to_back_chunks_keep_window_warm(self):
        conn = fresh_connection()
        t = 0.0
        times = []
        for _ in range(6):
            res = conn.transmit(400_000, t)
            times.append(res.transmission_time)
            t += res.transmission_time
        assert times[-1] < times[0]  # later chunks ride the opened window

    def test_idle_restart_slows_next_chunk(self):
        conn = fresh_connection()
        t = 0.0
        for _ in range(6):  # warm up
            t += conn.transmit(400_000, t).transmission_time
        warm = conn.transmit(400_000, t).transmission_time
        t += warm + 60.0  # long idle: slow-start-after-idle decays cwnd
        cold = conn.transmit(400_000, t).transmission_time
        assert cold > warm * 1.05

    def test_overlapping_transmissions_rejected(self):
        conn = fresh_connection()
        res = conn.transmit(1_000_000, 10.0)
        with pytest.raises(ValueError, match="before previous"):
            conn.transmit(1000, 10.0 + res.transmission_time / 2)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            fresh_connection().transmit(0, 0.0)

    def test_invalid_rtt_rejected(self):
        with pytest.raises(ValueError):
            TcpConnection(ConstantLink(1e6), base_rtt=0.0)

    def test_busy_until_tracks_completion(self):
        conn = fresh_connection()
        res = conn.transmit(500_000, 5.0)
        assert conn.busy_until == pytest.approx(5.0 + res.transmission_time)

    def test_total_bytes_sent_accumulates(self):
        conn = fresh_connection()
        t = 0.0
        for _ in range(3):
            t += conn.transmit(100_000, t).transmission_time
        assert conn.total_bytes_sent == 300_000

    def test_trace_link_variation_affects_time(self):
        slow_then_fast = TraceLink([5e5] * 10 + [2e7] * 100, epoch=1.0)
        conn = TcpConnection(slow_then_fast, base_rtt=0.05)
        slow = conn.transmit(500_000, 0.0)
        fast_start = conn.busy_until + 11.0
        fast = conn.transmit(500_000, max(fast_start, 11.0))
        assert fast.transmission_time < slow.transmission_time


class TestAppLimited:
    def test_small_chunk_does_not_deflate_delivery_rate(self):
        # A tiny chunk fits in one app-limited round; its rate sample
        # understates the path and must not lower the estimate the TTP's
        # `delivery_rate` feature sees (Linux `app_limited` semantics).
        conn = fresh_connection(rate=8e6)
        t = 0.0
        for _ in range(6):  # warm up on large chunks
            t += conn.transmit(1_000_000, t).transmission_time
        warm_rate = conn.tcp_info().delivery_rate
        t += conn.transmit(5_000, t).transmission_time
        assert conn.tcp_info().delivery_rate >= warm_rate

    def test_app_limited_round_does_not_collapse_bbr_estimate(self):
        # The windowed-max filter must not evict genuine samples for a
        # partial final round: throughput stays stable across small sends.
        conn = fresh_connection(rate=8e6)
        t = 0.0
        for _ in range(6):
            t += conn.transmit(1_000_000, t).transmission_time
        before = conn.cc.bandwidth_estimate_bps
        for _ in range(12):  # many tiny app-limited sends back to back
            t += conn.transmit(2_000, t).transmission_time
        assert conn.cc.bandwidth_estimate_bps >= before * 0.99

    def test_app_limited_rate_may_raise_estimate(self):
        # An app-limited sample that *exceeds* the estimate is still used
        # (first-ever sample on a fresh connection is app-limited when the
        # chunk is smaller than the initial window).
        conn = fresh_connection(rate=8e6)
        conn.transmit(5_000, 0.0)
        assert conn.tcp_info().delivery_rate > 0.0

    def test_round_sample_default_not_app_limited(self):
        from repro.net.cc.base import RoundSample

        sample = RoundSample(
            delivered_bytes=1e4, duration=0.05, rtt=0.05,
            delivery_rate_bps=1e6, link_limited=False, loss=False,
        )
        assert sample.app_limited is False


class TestTcpInfo:
    def test_snapshot_taken_at_send(self):
        conn = fresh_connection()
        res = conn.transmit(2_000_000, 0.0)
        # Fresh connection: snapshot shows the initial window and no
        # delivery-rate estimate.
        assert res.info_at_send.cwnd == pytest.approx(10.0)
        assert res.info_at_send.delivery_rate == 0.0

    def test_delivery_rate_populated_after_transfer(self):
        conn = fresh_connection(rate=8e6)
        conn.transmit(2_000_000, 0.0)
        info = conn.tcp_info()
        assert info.delivery_rate > 1e6

    def test_min_rtt_not_above_smoothed(self):
        conn = fresh_connection()
        t = 0.0
        for _ in range(5):
            t += conn.transmit(1_000_000, t).transmission_time
        info = conn.tcp_info()
        assert info.min_rtt <= info.rtt + 1e-9

    def test_rtt_reflects_path(self):
        fast = fresh_connection(rtt=0.02).tcp_info()
        slow = fresh_connection(rtt=0.3).tcp_info()
        assert slow.rtt > fast.rtt
        assert slow.min_rtt > fast.min_rtt

    def test_in_flight_drains_when_idle(self):
        conn = fresh_connection()
        t = conn.transmit(2_000_000, 0.0).transmission_time
        busy_info = conn.tcp_info()
        conn.transmit(1000, t + 30.0)
        idle_info = conn.tcp_info()
        assert idle_info.in_flight <= busy_info.in_flight


class TestCubicConnection:
    def test_cubic_transfers_complete(self):
        conn = TcpConnection(
            ConstantLink(4e6),
            base_rtt=0.05,
            cc=CubicLike(),
            loss_rng=np.random.default_rng(0),
        )
        t = 0.0
        for _ in range(10):
            res = conn.transmit(1_000_000, t)
            t += res.transmission_time
            assert res.transmission_time < 60.0

    def test_cubic_throughput_reasonable(self):
        conn = TcpConnection(
            ConstantLink(8e6),
            base_rtt=0.05,
            cc=CubicLike(),
            loss_rng=np.random.default_rng(1),
        )
        size = 10_000_000
        res = conn.transmit(size, 0.0)
        throughput = size * 8 / res.transmission_time
        assert 2e6 < throughput <= 8.1e6

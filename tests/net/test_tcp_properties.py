"""Property-based tests for the fluid TCP model — physical invariants that
must hold for any link, size, and schedule."""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.cc.cubic import CubicLike
from repro.net.link import ConstantLink, HeavyTailLink
from repro.net.tcp import TcpConnection


@st.composite
def connection_state(draw):
    """A connection in an arbitrary mid-session state."""
    rate = draw(st.sampled_from([3e5, 2e6, 8e6, 5e7]))
    rtt = draw(st.floats(0.01, 0.3))
    seed = draw(st.integers(0, 500))
    stochastic = draw(st.booleans())
    link = (
        HeavyTailLink(base_bps=rate, seed=seed)
        if stochastic
        else ConstantLink(rate)
    )
    conn = TcpConnection(link, base_rtt=rtt)
    t = 0.0
    for _ in range(draw(st.integers(0, 5))):
        size = draw(st.floats(1e4, 2e6))
        t += conn.transmit(size, t).transmission_time
        t += draw(st.floats(0.0, 5.0))
    return conn, t


class TestPhysicalInvariants:
    @given(connection_state(), st.floats(1e3, 5e6))
    @settings(max_examples=30, deadline=None)
    def test_transmission_time_at_least_propagation(self, state, size):
        conn, t = state
        result = conn.transmit(size, t)
        assert result.transmission_time >= conn.base_rtt - 1e-12

    @given(connection_state(), st.floats(1e4, 3e6))
    @settings(max_examples=25, deadline=None)
    def test_time_monotone_in_size(self, state, size):
        # From the same connection state, a strictly larger chunk never
        # arrives sooner (clone the connection to compare counterfactuals).
        conn, t = state
        small = copy.deepcopy(conn).transmit(size, t).transmission_time
        large = copy.deepcopy(conn).transmit(size * 2, t).transmission_time
        assert large >= small - 1e-9

    @given(connection_state(), st.floats(1e4, 3e6))
    @settings(max_examples=25, deadline=None)
    def test_effective_throughput_bounded_by_peak_capacity(self, state, size):
        conn, t = state
        result = copy.deepcopy(conn).transmit(size, t)
        throughput = size * 8.0 / result.transmission_time
        # Peak capacity over the transfer window bounds the average rate.
        times = np.arange(t, t + result.transmission_time + 1.0, 0.5)
        peak = max(conn.link.capacity_at(float(x)) for x in times)
        assert throughput <= peak * 1.05

    @given(connection_state())
    @settings(max_examples=20, deadline=None)
    def test_tcp_info_sane(self, state):
        conn, _ = state
        info = conn.tcp_info()
        assert info.cwnd >= 2.0  # never below two segments
        assert info.in_flight >= 0.0
        assert 0 < info.min_rtt <= info.rtt + 1e-9
        assert info.delivery_rate >= 0.0

    @given(connection_state(), st.floats(0.5, 60.0))
    @settings(max_examples=20, deadline=None)
    def test_idle_decay_never_grows_window(self, state, idle):
        # Slow-start-after-idle is monotone in the window: more idle time
        # never leaves a *larger* congestion window. (Transmission time
        # itself is not monotone in idle — bottleneck queues drain during
        # idle, which can legitimately lower the RTT.)
        conn, t = state
        before = conn.cc.cwnd_bytes
        idled = copy.deepcopy(conn)
        idled.transmit(1e4, t + idle)  # triggers the idle handling
        # Window at send time is captured in the snapshot.
        info = idled.tcp_info()
        assert info.cwnd * idled.mss <= max(before, 10 * idled.mss) * 2.0 + 1
        # And the decay itself never increases the pre-send window beyond
        # the restart floor (a squeezed sub-initial window may be raised
        # back to the 10-segment initial window, never past it).
        fresh = copy.deepcopy(conn)
        fresh._handle_idle(t + idle)
        floor = 10 * fresh.mss
        assert fresh.cc.cwnd_bytes <= max(before, floor) + 1e-9

    def test_deterministic_replay_via_deepcopy(self):
        conn = TcpConnection(HeavyTailLink(base_bps=5e6, seed=3), base_rtt=0.05)
        conn.transmit(1e6, 0.0)
        clone = copy.deepcopy(conn)
        a = conn.transmit(7e5, 10.0).transmission_time
        b = clone.transmit(7e5, 10.0).transmission_time
        assert a == b

    def test_cubic_invariants_hold_too(self):
        conn = TcpConnection(
            ConstantLink(4e6), base_rtt=0.05, cc=CubicLike(),
            loss_rng=np.random.default_rng(0),
        )
        t = 0.0
        for _ in range(20):
            result = conn.transmit(8e5, t)
            assert result.transmission_time >= 0.05
            info = conn.tcp_info()
            assert info.cwnd >= 2.0
            t += result.transmission_time + 0.1

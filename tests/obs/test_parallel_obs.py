"""Parallel-engine observability equivalence: merged metrics must be
bit-identical to the serial loop at any worker count.

The deterministic surface is ``ObsContext.to_dict(include_wallclock=False)``
— counters, gauges, histogram bin contents, and the (simulation-timestamped)
event trace.  Wall-clock ``profile.*`` metrics are quarantined by the
``wallclock`` tag and excluded from this comparison by construction.
"""

import json

import pytest

from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm
from repro.experiment.harness import RandomizedTrial, TrialConfig
from repro.experiment.parallel import run_trial_parallel
from repro.experiment.schemes import SchemeSpec


def classical_specs():
    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
    ]


def obs_config(n_sessions=12, seed=3):
    return TrialConfig(n_sessions=n_sessions, seed=seed, observability=True)


def deterministic_dump(trial) -> str:
    assert trial.obs is not None
    return json.dumps(
        trial.obs.to_dict(include_wallclock=False), sort_keys=True
    )


class TestObsCollection:
    def test_trial_without_observability_has_no_obs(self):
        config = TrialConfig(n_sessions=2, seed=0)
        trial = RandomizedTrial(classical_specs(), config).run()
        assert trial.obs is None
        with pytest.raises(ValueError):
            trial.dump_metrics("/tmp/never-written.json")

    def test_trial_with_observability_collects_all_layers(self):
        trial = RandomizedTrial(classical_specs(), obs_config()).run()
        counters = trial.obs.metrics.counters
        # Every instrumented layer contributed.
        assert counters["trial.sessions"] == 12
        assert counters["trial.streams"] == sum(
            len(s.streams) for s in trial.sessions
        )
        assert counters["tcp.rounds"] > 0
        assert counters["cc.bbr.bw_samples"] > 0
        assert counters["stream.chunks_sent"] > 0
        assert "stream.chunk_transmission_s" in trial.obs.metrics.histograms
        # Wall-clock session timing is collected but quarantined.
        assert "profile.session_wall_s" in trial.obs.metrics.histograms
        det = trial.obs.to_dict(include_wallclock=False)
        assert "profile.session_wall_s" not in det["metrics"]["histograms"]

    def test_events_are_simulation_timestamped_and_ordered_by_session(self):
        trial = RandomizedTrial(classical_specs(), obs_config()).run()
        events = trial.obs.tracer.events()
        assert events, "expected stream_end (and likely startup) events"
        kinds = {e.kind for e in events}
        assert "stream_end" in kinds
        # Events arrive in session-id order: the stream_id field (derived
        # from session id) must be non-decreasing across session boundaries.
        stream_ids = [dict(e.fields)["stream_id"] for e in events]
        assert stream_ids == sorted(stream_ids)


@pytest.mark.parallel_smoke
class TestParallelObsEquivalence:
    """`pytest -m parallel_smoke` — serial vs process-pool metric identity."""

    def test_merged_metrics_bit_identical_across_worker_counts(self):
        specs = classical_specs()
        config = obs_config(n_sessions=12, seed=3)
        serial = RandomizedTrial(specs, config).run()
        reference = deterministic_dump(serial)
        for workers in (1, 2, 4):
            parallel = run_trial_parallel(specs, config, workers=workers)
            assert deterministic_dump(parallel) == reference, (
                f"metrics dump diverged at workers={workers}"
            )

    def test_counter_and_bin_equality_in_detail(self):
        specs = classical_specs()
        config = obs_config(n_sessions=8, seed=5)
        serial = RandomizedTrial(specs, config).run()
        parallel = run_trial_parallel(specs, config, workers=4)
        assert (
            serial.obs.metrics.counters == parallel.obs.metrics.counters
        )
        assert sorted(serial.obs.metrics.histograms) == sorted(
            parallel.obs.metrics.histograms
        )
        for name, hist in serial.obs.metrics.histograms.items():
            if name in serial.obs.metrics._wallclock:
                continue
            other = parallel.obs.metrics.histograms[name]
            assert other.counts == hist.counts, name
            assert other.sum == hist.sum, name
            assert other.count == hist.count, name

    def test_event_order_matches_serial(self):
        specs = classical_specs()
        config = obs_config(n_sessions=8, seed=5)
        serial = RandomizedTrial(specs, config).run()
        parallel = run_trial_parallel(specs, config, workers=2)
        assert parallel.obs.tracer.events() == serial.obs.tracer.events()
        assert parallel.obs.tracer.dropped == serial.obs.tracer.dropped

    def test_dump_metrics_roundtrip(self, tmp_path):
        specs = classical_specs()
        config = obs_config(n_sessions=6, seed=7)
        trial = run_trial_parallel(specs, config, workers=2)
        path = tmp_path / "metrics.json"
        returned = trial.dump_metrics(str(path), include_wallclock=False)
        assert returned == str(path)
        assert trial.metrics_path == str(path)
        with open(path) as f:
            dump = json.load(f)
        assert dump == trial.obs.to_dict(include_wallclock=False)
        # And the serial engine writes the identical file.
        serial = RandomizedTrial(specs, config).run()
        serial_path = tmp_path / "serial.json"
        serial.dump_metrics(str(serial_path), include_wallclock=False)
        assert serial_path.read_bytes() == path.read_bytes()

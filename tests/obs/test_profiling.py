"""Tests for the obs enable/activate scoping model and profiling hooks."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Tests here mutate process-global obs state; always restore it."""
    prev_enabled, prev_active = obs.ENABLED, obs.active()
    yield
    obs.ENABLED = prev_enabled
    obs._ACTIVE = prev_active


class TestScoping:
    def test_disabled_by_default_helpers_are_noops(self):
        obs.disable()
        assert obs.ENABLED is False
        assert obs.active() is None
        # None of these should raise or allocate a context.
        obs.counter_inc("x")
        obs.gauge_set("g", 1.0)
        obs.observe("h", 1.0)
        obs.emit("e", 0.0)
        assert obs.active() is None

    def test_enable_disable(self):
        ctx = obs.enable()
        assert obs.ENABLED is True
        assert obs.active() is ctx
        obs.counter_inc("x", 2)
        assert ctx.metrics.counters["x"] == 2.0
        obs.disable()
        assert obs.ENABLED is False
        assert obs.active() is None

    def test_activate_scopes_and_restores(self):
        obs.disable()
        ctx = obs.ObsContext()
        with obs.activate(ctx) as active:
            assert active is ctx
            assert obs.ENABLED is True
            obs.counter_inc("inside")
        assert obs.ENABLED is False
        assert obs.active() is None
        assert ctx.metrics.counters["inside"] == 1.0

    def test_activate_none_is_transparent(self):
        outer = obs.enable()
        with obs.activate(None) as active:
            assert active is outer
            obs.counter_inc("still_outer")
        assert obs.active() is outer
        assert outer.metrics.counters["still_outer"] == 1.0

    def test_activate_restores_on_exception(self):
        obs.disable()
        with pytest.raises(RuntimeError):
            with obs.activate(obs.ObsContext()):
                raise RuntimeError("boom")
        assert obs.ENABLED is False
        assert obs.active() is None

    def test_nested_activate(self):
        a, b = obs.ObsContext(), obs.ObsContext()
        with obs.activate(a):
            with obs.activate(b):
                obs.counter_inc("inner")
            obs.counter_inc("outer")
        assert b.metrics.counters == {"inner": 1.0}
        assert a.metrics.counters == {"outer": 1.0}


class TestSpan:
    def test_span_disabled_returns_shared_null(self):
        obs.disable()
        s1 = obs.span("x")
        s2 = obs.span("y")
        assert s1 is s2  # singleton: zero allocation on the disabled path
        with s1:
            pass  # no-op

    def test_span_records_wallclock_histogram(self):
        ctx = obs.enable()
        with obs.span("work"):
            pass
        hist = ctx.metrics.histograms["profile.work_s"]
        assert hist.count == 1
        assert hist.spec == obs.TIME_SPEC
        assert "profile.work_s" not in (
            ctx.metrics.to_dict(include_wallclock=False)["histograms"]
        )

    def test_timed_decorator(self):
        @obs.timed("fn")
        def double(x):
            return 2 * x

        obs.disable()
        assert double(3) == 6  # works (and is a no-op) when disabled

        ctx = obs.enable()
        assert double(4) == 8
        assert ctx.metrics.histograms["profile.fn_s"].count == 1

    def test_timed_records_on_exception(self):
        @obs.timed("fails")
        def boom():
            raise ValueError("x")

        ctx = obs.enable()
        with pytest.raises(ValueError):
            boom()
        assert ctx.metrics.histograms["profile.fails_s"].count == 1


class TestContext:
    def test_merge_contexts_empty_is_none(self):
        assert obs.merge_contexts([]) is None

    def test_merge_contexts_folds_in_order(self):
        a, b = obs.ObsContext(), obs.ObsContext()
        a.metrics.inc("c", 1)
        a.tracer.emit("e", 0.0, session=0)
        b.metrics.inc("c", 2)
        b.tracer.emit("e", 1.0, session=1)
        merged = obs.merge_contexts([a, b])
        assert merged.metrics.counters["c"] == 3.0
        assert [e.time for e in merged.tracer.events()] == [0.0, 1.0]
        # Merged tracer uses the big whole-trial ring.
        assert merged.tracer.capacity == obs.MERGED_CAPACITY

    def test_context_dict_roundtrip(self):
        ctx = obs.ObsContext()
        ctx.metrics.inc("c", 4)
        ctx.metrics.observe("h", 0.5, spec=obs.TIME_SPEC)
        ctx.tracer.emit("e", 2.0, stream_id=1)
        dump = ctx.to_dict()
        assert dump["schema_version"] == obs.SCHEMA_VERSION
        back = obs.ObsContext.from_dict(dump)
        assert back.to_dict() == dump

    def test_format_summary_renders_sections(self):
        ctx = obs.ObsContext()
        ctx.metrics.inc("tcp.rounds", 10)
        ctx.metrics.set_gauge("g", 1.5)
        ctx.metrics.observe("stream.rebuffer_s", 0.5, spec=obs.TIME_SPEC)
        ctx.tracer.emit("rebuffer", 3.0, stream_id=2, duration=0.5)
        text = obs.format_summary(ctx.to_dict())
        assert "counters:" in text
        assert "tcp.rounds" in text
        assert "histograms" in text
        assert "events: 1 recorded" in text
        assert "rebuffer" in text

    def test_format_summary_empty(self):
        assert obs.format_summary({}) == "(empty dump)"

"""Tests for repro.obs.registry — counters, gauges, log-binned histograms."""

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.registry import (
    RATE_SPEC,
    SIZE_SPEC,
    TIME_SPEC,
    Histogram,
    HistogramSpec,
    MetricsRegistry,
)


class TestHistogramSpec:
    def test_validates_range(self):
        with pytest.raises(ValueError):
            HistogramSpec(lo=0.0, hi=1.0)
        with pytest.raises(ValueError):
            HistogramSpec(lo=2.0, hi=1.0)
        with pytest.raises(ValueError):
            HistogramSpec(n_bins=0)

    def test_bin_index_boundaries(self):
        spec = HistogramSpec(lo=1.0, hi=1000.0, n_bins=3)
        assert spec.bin_index(0.5) == -1  # underflow
        assert spec.bin_index(1.0) == 0
        assert spec.bin_index(999.999) == 2
        assert spec.bin_index(1000.0) == 3  # overflow
        assert spec.bin_index(1e9) == 3

    def test_edges_are_log_spaced(self):
        spec = HistogramSpec(lo=1.0, hi=100.0, n_bins=2)
        edges = spec.edges()
        assert edges[0] == pytest.approx(1.0)
        assert edges[1] == pytest.approx(10.0)
        assert edges[2] == pytest.approx(100.0)

    def test_edges_are_pure_function_of_spec(self):
        # The merge-exactness precondition: edges derive from the spec only.
        assert HistogramSpec(1e-3, 1e3, 60).edges() == TIME_SPEC.edges()

    def test_roundtrip(self):
        spec = HistogramSpec(lo=0.5, hi=8.0, n_bins=7)
        assert HistogramSpec.from_dict(spec.to_dict()) == spec

    @given(st.floats(min_value=1e-6, max_value=1e6 - 1,
                     allow_nan=False, allow_infinity=False))
    def test_bin_index_in_range_and_consistent_with_edges(self, value):
        spec = HistogramSpec()
        idx = spec.bin_index(value)
        assert 0 <= idx < spec.n_bins
        edges = spec.edges()
        # Tolerate float rounding exactly at an edge.
        assert edges[idx] <= value * (1 + 1e-12)
        assert value <= edges[idx + 1] * (1 + 1e-12)


class TestHistogram:
    def test_observe_accounting(self):
        hist = Histogram(HistogramSpec(lo=1.0, hi=100.0, n_bins=2))
        for v in (0.5, 2.0, 50.0, 200.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.counts == [1, 1]
        assert hist.sum == pytest.approx(252.5)
        assert hist.mean == pytest.approx(252.5 / 4)

    def test_merge_is_exact_bin_addition(self):
        spec = HistogramSpec(lo=1.0, hi=100.0, n_bins=4)
        a, b, both = Histogram(spec), Histogram(spec), Histogram(spec)
        for v in (1.5, 3.0, 40.0):
            a.observe(v)
            both.observe(v)
        for v in (0.1, 7.0, 7.0, 500.0):
            b.observe(v)
            both.observe(v)
        a.merge(b)
        assert a.counts == both.counts
        assert a.underflow == both.underflow
        assert a.overflow == both.overflow
        assert a.count == both.count
        assert a.to_dict() == both.to_dict()

    def test_merge_rejects_spec_mismatch(self):
        with pytest.raises(ValueError):
            Histogram(TIME_SPEC).merge(Histogram(SIZE_SPEC))

    def test_quantile_monotone_and_bounded(self):
        hist = Histogram(TIME_SPEC)
        for v in (0.01, 0.02, 0.05, 0.1, 0.5, 2.0):
            hist.observe(v)
        qs = [hist.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert qs == sorted(qs)
        assert TIME_SPEC.lo <= qs[-1] <= TIME_SPEC.hi

    def test_quantile_empty_and_invalid(self):
        hist = Histogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_roundtrip(self):
        hist = Histogram(RATE_SPEC)
        for v in (1e5, 3e6, 7e8, 1.0, 1e12):
            hist.observe(v)
        back = Histogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert back.to_dict() == hist.to_dict()
        assert back.quantile(0.5) == hist.quantile(0.5)

    def test_from_dict_rejects_bin_mismatch(self):
        data = Histogram(HistogramSpec(n_bins=4)).to_dict()
        data["counts"] = [0, 0]
        with pytest.raises(ValueError):
            Histogram.from_dict(data)

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=0, max_size=40),
           st.lists(st.floats(min_value=1e-6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=0, max_size=40))
    def test_merge_equals_concatenated_observe(self, xs, ys):
        spec = HistogramSpec()
        a, b, both = Histogram(spec), Histogram(spec), Histogram(spec)
        for v in xs:
            a.observe(v)
        for v in ys:
            b.observe(v)
        for v in xs + ys:
            both.observe(v)
        a.merge(b)
        # Bin contents are integers: exact regardless of grouping.
        assert a.counts == both.counts
        assert a.count == both.count
        # Sums are float additions: associativity differs between flat
        # observation and shard merging, so only approximate equality holds
        # there…
        assert a.sum == pytest.approx(both.sum)
        # …but merging the *same shards in the same order* — what both the
        # serial and the parallel trial engines do — is bit-exact.
        a2, b2 = Histogram(spec), Histogram(spec)
        for v in xs:
            a2.observe(v)
        for v in ys:
            b2.observe(v)
        a2.merge(b2)
        assert a2.sum == a.sum
        assert a2.to_dict() == a.to_dict()


class TestMetricsRegistry:
    def test_counters_gauges(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2.5)
        reg.set_gauge("g", 7)
        assert reg.counters["a"] == 3.5
        assert reg.gauges["g"] == 7.0
        assert len(reg) == 2

    def test_observe_binds_spec_once(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.5, spec=TIME_SPEC)
        reg.observe("h", 0.7)  # spec omitted: fine
        reg.observe("h", 0.7, spec=TIME_SPEC)  # same spec: fine
        with pytest.raises(ValueError):
            reg.observe("h", 1e3, spec=SIZE_SPEC)

    def test_merge_matches_sequential_recording(self):
        a, b, both = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for reg in (a, both):
            reg.inc("c", 2)
            reg.observe("h", 0.25, spec=TIME_SPEC)
            reg.set_gauge("g", 1)
        for reg in (b, both):
            reg.inc("c", 3)
            reg.inc("only_b")
            reg.observe("h", 0.5, spec=TIME_SPEC)
            reg.set_gauge("g", 2)
        a.merge(b)
        assert a.to_dict() == both.to_dict()

    def test_wallclock_quarantine(self):
        reg = MetricsRegistry()
        reg.inc("det.counter")
        reg.observe("det.h", 1.0, spec=TIME_SPEC)
        reg.observe("profile.x_s", 0.01, spec=TIME_SPEC, wallclock=True)
        full = reg.to_dict(include_wallclock=True)
        det = reg.to_dict(include_wallclock=False)
        assert "profile.x_s" in full["histograms"]
        assert "profile.x_s" not in det["histograms"]
        assert det["wallclock"] == []
        assert full["wallclock"] == ["profile.x_s"]
        assert "det.counter" in det["counters"]

    def test_mark_wallclock_counter(self):
        reg = MetricsRegistry()
        reg.inc("noisy")
        reg.mark_wallclock("noisy")
        assert "noisy" not in reg.to_dict(include_wallclock=False)["counters"]

    def test_wallclock_survives_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.observe("profile.y_s", 0.5, spec=TIME_SPEC, wallclock=True)
        a.merge(b)
        assert "profile.y_s" not in a.to_dict(False)["histograms"]

    def test_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("c", 5)
        reg.set_gauge("g", 3.5)
        reg.observe("h", 123.0, spec=SIZE_SPEC)
        reg.observe("profile.z_s", 0.1, spec=TIME_SPEC, wallclock=True)
        back = MetricsRegistry.from_dict(json.loads(reg.to_json()))
        assert back.to_dict() == reg.to_dict()
        assert back.to_dict(False) == reg.to_dict(False)

    def test_to_dict_keys_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        assert list(reg.to_dict()["counters"]) == ["a", "z"]


class TestSharedSpecs:
    def test_decade_resolution(self):
        # All three shared specs use 10 bins per decade.
        for spec in (TIME_SPEC, SIZE_SPEC, RATE_SPEC):
            decades = math.log10(spec.hi / spec.lo)
            assert spec.n_bins == pytest.approx(10 * decades)

"""Tests for repro.obs.tracing — bounded ring-buffer event traces."""

import json

import pytest

from repro.obs.tracing import DEFAULT_CAPACITY, EventTracer, TraceEvent


class TestTraceEvent:
    def test_make_sorts_fields(self):
        event = TraceEvent.make("rebuffer", 1.5, z=1, a=2)
        assert event.fields == (("a", 2), ("z", 1))
        assert event.to_dict() == {
            "kind": "rebuffer", "time": 1.5, "a": 2, "z": 1,
        }

    def test_kwarg_order_is_canonicalized(self):
        # Same logical event regardless of call-site kwargs order.
        assert TraceEvent.make("x", 0.0, a=1, b=2) == TraceEvent.make(
            "x", 0.0, b=2, a=1
        )

    def test_hashable_and_frozen(self):
        event = TraceEvent.make("x", 0.0, a=1)
        assert len({event, TraceEvent.make("x", 0.0, a=1)}) == 1
        with pytest.raises(AttributeError):
            event.kind = "y"


class TestEventTracer:
    def test_emit_and_order(self):
        tracer = EventTracer()
        tracer.emit("a", 0.0)
        tracer.emit("b", 1.0, stream_id=3)
        kinds = [e.kind for e in tracer.events()]
        assert kinds == ["a", "b"]
        assert len(tracer) == 2
        assert tracer.capacity == DEFAULT_CAPACITY

    def test_ring_drops_oldest_and_accounts(self):
        tracer = EventTracer(capacity=3)
        for i in range(5):
            tracer.emit("e", float(i))
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [e.time for e in tracer.events()] == [2.0, 3.0, 4.0]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_merge_appends_in_order(self):
        a, b = EventTracer(), EventTracer()
        a.emit("s0", 0.0)
        b.emit("s1", 5.0)
        b.emit("s1", 6.0)
        a.merge(b)
        assert [(e.kind, e.time) for e in a.events()] == [
            ("s0", 0.0), ("s1", 5.0), ("s1", 6.0),
        ]

    def test_merge_carries_dropped_counts(self):
        a = EventTracer(capacity=2)
        b = EventTracer(capacity=2)
        for i in range(4):
            b.emit("e", float(i))  # b drops 2
        a.emit("a0", 0.0)
        a.merge(b)  # 1 + 2 events into capacity 2: drops 1 more
        assert a.dropped == 3
        assert len(a) == 2

    def test_json_roundtrip(self):
        tracer = EventTracer(capacity=16)
        tracer.emit("startup", 0.25, stream_id=1, delay=0.25)
        tracer.emit("rebuffer", 9.5, stream_id=1, duration=1.5)
        back = EventTracer.from_dict(json.loads(json.dumps(tracer.to_dict())))
        assert back.capacity == tracer.capacity
        assert back.events() == tracer.events()
        assert back.to_dict() == tracer.to_dict()

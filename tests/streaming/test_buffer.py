"""Tests for repro.streaming.buffer — playback buffer dynamics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.buffer import (
    BUFFER_EPSILON_S,
    MAX_BUFFER_S,
    PlaybackBuffer,
)


class TestPlaybackBuffer:
    def test_starts_empty(self):
        assert PlaybackBuffer().level_s == 0.0

    def test_cap_is_fifteen_seconds(self):
        # Puffer's player caps the buffer at 15 s (§3.3).
        assert MAX_BUFFER_S == 15.0

    def test_add_and_drain(self):
        buf = PlaybackBuffer()
        buf.add(2.002)
        stall = buf.drain(1.0)
        assert stall == 0.0
        assert buf.level_s == pytest.approx(1.002)

    def test_drain_past_empty_reports_stall(self):
        buf = PlaybackBuffer()
        buf.add(2.0)
        stall = buf.drain(3.5)
        assert stall == pytest.approx(1.5)
        assert buf.level_s == 0.0

    def test_overflow_raises(self):
        buf = PlaybackBuffer(max_buffer_s=4.0)
        buf.add(2.002)
        buf.add(1.9)
        with pytest.raises(RuntimeError, match="overflow"):
            buf.add(2.002)

    def test_room_for(self):
        buf = PlaybackBuffer(max_buffer_s=4.0)
        buf.add(2.0)
        assert buf.room_for(2.0)
        assert not buf.room_for(2.5)

    def test_time_until_room(self):
        buf = PlaybackBuffer(max_buffer_s=4.0)
        buf.add(3.0)
        assert buf.time_until_room(2.0) == pytest.approx(1.0)
        assert buf.time_until_room(1.0) == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            PlaybackBuffer(max_buffer_s=0.0)
        buf = PlaybackBuffer()
        with pytest.raises(ValueError):
            buf.add(0.0)
        with pytest.raises(ValueError):
            buf.drain(-1.0)

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 2.0), st.floats(0.0, 3.0)),
            min_size=1,
            max_size=50,
        )
    )
    def test_level_never_negative_never_above_cap(self, operations):
        buf = PlaybackBuffer()
        for add_s, drain_s in operations:
            if buf.room_for(add_s):
                buf.add(add_s)
            buf.drain(drain_s)
            assert 0.0 <= buf.level_s <= buf.max_buffer_s + 1e-9

    @given(st.lists(st.floats(0.01, 5.0), min_size=1, max_size=40))
    def test_conservation(self, drains):
        # Video drained as playback + stall shortfall == requested play time.
        buf = PlaybackBuffer(max_buffer_s=1000.0)
        buf.add(10.0)
        total_played = 0.0
        total_stall = 0.0
        for d in drains:
            level_before = buf.level_s
            stall = buf.drain(d)
            total_stall += stall
            total_played += min(d, level_before)
        assert total_played + total_stall == pytest.approx(sum(drains))


class TestEpsilonContract:
    """``add()`` must never raise after ``room_for()`` said True.

    Both checks share ``BUFFER_EPSILON_S``; a second, divergent tolerance
    (the pre-unification state: a literal ``1e-9`` in one place and a
    different slack in the other) opens a gap where accumulated rounding in
    ``level_s`` passes one check and fails the other.
    """

    def test_single_named_epsilon(self):
        assert BUFFER_EPSILON_S == 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(0.001, 4.0),
                st.floats(0.0, 4.0),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_add_never_raises_after_room_for(self, operations):
        buf = PlaybackBuffer()
        for add_s, drain_s in operations:
            if buf.room_for(add_s):
                buf.add(add_s)  # must not raise: same epsilon as room_for
            buf.drain(drain_s)

    @given(st.floats(0.001, 15.0))
    @settings(max_examples=100, deadline=None)
    def test_exactly_filling_chunk_admitted(self, first):
        # The remainder computed as cap - level is admitted even when
        # level + (cap - level) lands a rounding step above the cap.
        buf = PlaybackBuffer()
        buf.add(first)
        rest = buf.max_buffer_s - buf.level_s
        if rest > 0:
            assert buf.room_for(rest)
            buf.add(rest)

    def test_beyond_epsilon_still_raises(self):
        buf = PlaybackBuffer()
        buf.add(MAX_BUFFER_S)
        assert not buf.room_for(0.001)
        with pytest.raises(RuntimeError):
            buf.add(0.001)

"""Tests for repro.streaming.replacement — the chunk-upgrade extension."""

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.link import ConstantLink
from repro.net.tcp import TcpConnection
from repro.streaming.replacement import (
    ReplacementPolicy,
    simulate_stream_with_replacement,
)
from repro.streaming.simulator import simulate_stream


def menus(n=400, seed=0):
    return encode_clip(DEFAULT_CHANNELS[0], n, seed=seed)


def connection(rate=2e7):
    return TcpConnection(ConstantLink(rate), base_rtt=0.04)


class TestReplacementPolicy:
    def test_no_throughput_no_replacement(self):
        policy = ReplacementPolicy()
        assert policy.select([], [], None) is None

    def test_selects_biggest_gain_within_deadline(self):
        policy = ReplacementPolicy(safety_factor=1.0, min_gain_db=0.1)
        ms = menus(2, seed=1)
        buffered = [(ms[0], 0), (ms[1], 8)]
        # 20 Mbps: the top rung (~1.4 MB) fetches in ~0.55 s.
        choice = policy.select(buffered, [4.0, 6.0], 2e7)
        assert choice is not None
        position, rung = choice
        assert position == 0  # the rung-0 chunk has far more headroom
        assert rung > 0

    def test_respects_deadline(self):
        policy = ReplacementPolicy(safety_factor=1.0, min_gain_db=0.1)
        ms = menus(1, seed=1)
        # 0.01 s until play: nothing fetches that fast.
        assert policy.select([(ms[0], 0)], [0.01], 2e6) is None

    def test_min_gain_filter(self):
        policy = ReplacementPolicy(min_gain_db=100.0)
        ms = menus(1, seed=1)
        assert policy.select([(ms[0], 0)], [10.0], 1e8) is None


class TestSimulation:
    def test_replacements_happen_on_fast_link(self):
        # BBA starts at the lowest rung; idle time upgrades those chunks.
        result = simulate_stream_with_replacement(
            iter(menus()), BBA(), connection(2e7), watch_time_s=90.0
        )
        assert result.replacements > 0
        assert result.wasted_bytes > 0

    def test_replacement_improves_played_quality(self):
        plain = simulate_stream(
            iter(menus(seed=3)), BBA(), connection(2e7), watch_time_s=90.0
        )
        upgraded = simulate_stream_with_replacement(
            iter(menus(seed=3)), BBA(), connection(2e7), watch_time_s=90.0
        )
        assert upgraded.mean_ssim_db > plain.mean_ssim_db

    def test_no_stalls_introduced_on_stable_link(self):
        result = simulate_stream_with_replacement(
            iter(menus(seed=4)), BBA(), connection(2e7), watch_time_s=90.0
        )
        assert result.stall_time == 0.0

    def test_time_accounting(self):
        result = simulate_stream_with_replacement(
            iter(menus(seed=5)), BBA(), connection(5e6), watch_time_s=60.0
        )
        assert result.total_time <= 60.0 + 1e-6
        assert result.play_time + result.stall_time <= result.total_time + 2.1

    def test_played_records_are_in_order(self):
        result = simulate_stream_with_replacement(
            iter(menus(seed=6)), BBA(), connection(2e7), watch_time_s=45.0
        )
        indices = [r.chunk_index for r in result.records]
        assert indices == sorted(indices)

    def test_no_replacement_on_slow_link(self):
        # A link with no headroom never has idle time worth spending.
        result = simulate_stream_with_replacement(
            iter(menus(seed=7)),
            BBA(),
            connection(8e5),
            watch_time_s=60.0,
        )
        assert result.replacements == 0

    def test_invalid_watch_time(self):
        with pytest.raises(ValueError):
            simulate_stream_with_replacement(
                iter(menus()), BBA(), connection(), watch_time_s=-1.0
            )

"""Tests for repro.streaming.session — per-stream metrics (§3.4)."""

import math

import numpy as np
import pytest

from repro.abr.base import ChunkRecord
from repro.net.tcp import TcpInfo
from repro.streaming.session import StreamResult


def info(delivery_rate=5e6):
    return TcpInfo(cwnd=20, in_flight=5, min_rtt=0.04, rtt=0.05,
                   delivery_rate=delivery_rate)


def record(i, ssim=15.0, size=500_000, tx=1.0, rate=5e6, rung=5):
    return ChunkRecord(
        chunk_index=i, rung=rung, size_bytes=size, ssim_db=ssim,
        transmission_time=tx, info_at_send=info(rate), send_time=i * 2.0,
    )


class TestMetrics:
    def test_stall_ratio(self):
        r = StreamResult(0, "x", play_time=90.0, stall_time=10.0)
        assert r.watch_time == 100.0
        assert r.stall_ratio == pytest.approx(0.1)

    def test_zero_watch_time_stall_ratio(self):
        assert StreamResult(0, "x").stall_ratio == 0.0

    def test_mean_ssim(self):
        r = StreamResult(0, "x", records=[record(0, 10.0), record(1, 20.0)])
        assert r.mean_ssim_db == pytest.approx(15.0)

    def test_mean_ssim_nan_when_empty(self):
        assert math.isnan(StreamResult(0, "x").mean_ssim_db)

    def test_ssim_variation(self):
        r = StreamResult(
            0, "x",
            records=[record(0, 10.0), record(1, 14.0), record(2, 12.0)],
        )
        assert r.ssim_variation_db == pytest.approx((4.0 + 2.0) / 2)

    def test_ssim_variation_zero_for_single_chunk(self):
        assert StreamResult(0, "x", records=[record(0)]).ssim_variation_db == 0.0

    def test_first_chunk_ssim(self):
        r = StreamResult(0, "x", records=[record(0, 8.5), record(1, 17.0)])
        assert r.first_chunk_ssim_db == 8.5

    def test_mean_bitrate(self):
        r = StreamResult(0, "x", records=[record(0, size=250_250)])
        assert r.mean_bitrate_bps == pytest.approx(1e6)

    def test_mean_delivery_rate_ignores_zero_samples(self):
        records = [record(0, rate=0.0), record(1, rate=4e6), record(2, rate=8e6)]
        r = StreamResult(0, "x", records=records)
        assert r.mean_delivery_rate_bps == pytest.approx(6e6)

    def test_mean_delivery_rate_fallback_to_observed(self):
        records = [record(0, rate=0.0, size=500_000, tx=1.0)]
        r = StreamResult(0, "x", records=records)
        assert r.mean_delivery_rate_bps == pytest.approx(4e6)

    def test_slow_path_classification(self):
        slow = StreamResult(0, "x", records=[record(0, rate=3e6)])
        fast = StreamResult(0, "x", records=[record(0, rate=9e6)])
        assert slow.is_slow_path()
        assert not fast.is_slow_path()

    def test_had_stall(self):
        assert StreamResult(0, "x", stall_time=0.5).had_stall
        assert not StreamResult(0, "x").had_stall

    def test_observed_throughput(self):
        rec = record(0, size=1_000_000, tx=2.0)
        assert rec.observed_throughput_bps == pytest.approx(4e6)

"""Tests for repro.streaming.simulator — the chunk-level event loop."""

import numpy as np
import pytest

from repro.abr.base import AbrAlgorithm
from repro.media.encoder import VbrEncoder, encode_clip
from repro.media.source import DEFAULT_CHANNELS, VideoSource
from repro.net.link import ConstantLink, TraceLink
from repro.net.tcp import TcpConnection
from repro.streaming.simulator import simulate_stream
from repro.streaming.telemetry import BufferEvent, TelemetryLog


class FixedRung(AbrAlgorithm):
    """Always chooses one rung; records contexts for inspection."""

    name = "fixed"

    def __init__(self, rung=0):
        self.rung = rung
        self.contexts = []

    def choose(self, context):
        self.contexts.append(
            (context.buffer_s, context.startup, len(context.lookahead))
        )
        return self.rung


def fast_connection(rate=20e6):
    return TcpConnection(ConstantLink(rate), base_rtt=0.03)


def menus(n=200, seed=0):
    return encode_clip(DEFAULT_CHANNELS[0], n, seed=seed)


class TestBasicLoop:
    def test_plays_until_watch_time(self):
        result = simulate_stream(
            iter(menus()), FixedRung(0), fast_connection(), watch_time_s=60.0
        )
        assert result.total_time == pytest.approx(60.0, abs=2.5)
        assert result.play_time > 50.0
        assert result.stall_time == 0.0

    def test_bounded_clip_ends_stream(self):
        result = simulate_stream(
            iter(menus(10)), FixedRung(0), fast_connection(), watch_time_s=1e9
        )
        assert len(result.records) == 10

    def test_startup_delay_is_first_chunk_arrival(self):
        result = simulate_stream(
            iter(menus()), FixedRung(0), fast_connection(), watch_time_s=30.0
        )
        assert result.startup_delay == pytest.approx(
            result.records[0].transmission_time
        )

    def test_first_decision_sees_empty_buffer_and_startup_flag(self):
        abr = FixedRung(0)
        simulate_stream(iter(menus()), abr, fast_connection(), watch_time_s=20.0)
        buffer0, startup0, lookahead0 = abr.contexts[0]
        assert buffer0 == 0.0
        assert startup0
        assert lookahead0 >= 5

    def test_buffer_respects_cap_at_decisions(self):
        abr = FixedRung(0)
        simulate_stream(
            iter(menus()), abr, fast_connection(), watch_time_s=120.0,
            max_buffer_s=15.0,
        )
        assert all(b <= 15.0 + 1e-9 for b, _, __ in abr.contexts)

    def test_server_pauses_when_buffer_full(self):
        # On a fast link, video downloads much faster than real time, so
        # without pausing a 60 s watch would fetch hundreds of chunks.
        result = simulate_stream(
            iter(menus(1000)), FixedRung(0), fast_connection(1e9),
            watch_time_s=60.0,
        )
        played_plus_buffered = result.play_time + 15.0
        assert len(result.records) * 2.002 <= played_plus_buffered + 4.1

    def test_stall_on_slow_link(self):
        slow = TcpConnection(ConstantLink(3e5), base_rtt=0.05)
        result = simulate_stream(
            iter(menus()), FixedRung(9), slow, watch_time_s=60.0
        )
        assert result.stall_time > 0

    def test_lowest_rung_avoids_stall_on_adequate_link(self):
        adequate = TcpConnection(ConstantLink(1.5e6), base_rtt=0.05)
        result = simulate_stream(
            iter(menus()), FixedRung(0), adequate, watch_time_s=60.0
        )
        assert result.stall_time == 0.0

    def test_never_began_when_viewer_leaves_instantly(self):
        result = simulate_stream(
            iter(menus()),
            FixedRung(9),
            TcpConnection(ConstantLink(2e5), base_rtt=0.05),
            watch_time_s=0.05,
        )
        assert result.never_began
        assert result.play_time == 0.0

    def test_invalid_watch_time(self):
        with pytest.raises(ValueError):
            simulate_stream(
                iter(menus()), FixedRung(0), fast_connection(), watch_time_s=-1.0
            )

    def test_out_of_range_rung_rejected(self):
        with pytest.raises(ValueError, match="chose rung"):
            simulate_stream(
                iter(menus()), FixedRung(10), fast_connection(), watch_time_s=10.0
            )


class TestAccounting:
    def test_watch_time_identity(self):
        result = simulate_stream(
            iter(menus()),
            FixedRung(5),
            TcpConnection(ConstantLink(2e6), base_rtt=0.05),
            watch_time_s=90.0,
        )
        assert result.watch_time == pytest.approx(
            result.play_time + result.stall_time
        )
        assert result.watch_time <= result.total_time + 1e-6

    def test_stall_plus_play_bounded_by_total(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            source = VideoSource(DEFAULT_CHANNELS[1], rng=rng)
            encoder = VbrEncoder(rng=rng)
            from repro.net.link import HeavyTailLink

            conn = TcpConnection(
                HeavyTailLink(base_bps=2e6, seed=seed), base_rtt=0.06
            )
            result = simulate_stream(
                encoder.stream(source), FixedRung(4), conn, watch_time_s=120.0
            )
            assert result.play_time + result.stall_time <= result.total_time + 1e-6
            assert result.total_time <= 120.0 + 1e-6

    def test_records_match_chunks_sent(self):
        result = simulate_stream(
            iter(menus(50)), FixedRung(3), fast_connection(), watch_time_s=30.0
        )
        indices = [r.chunk_index for r in result.records]
        assert indices == sorted(indices)
        assert all(r.rung == 3 for r in result.records)


class TestTelemetry:
    def test_tables_populated(self):
        log = TelemetryLog()
        simulate_stream(
            iter(menus()), FixedRung(2), fast_connection(), watch_time_s=30.0,
            stream_id=7, expt_id=3, telemetry=log,
        )
        assert len(log.video_sent) > 0
        assert len(log.video_sent) == len(log.video_acked)
        assert all(r.stream_id == 7 for r in log.video_sent)
        assert all(r.expt_id == 3 for r in log.video_acked)

    def test_sent_precedes_ack(self):
        log = TelemetryLog()
        simulate_stream(
            iter(menus()), FixedRung(2), fast_connection(), watch_time_s=30.0,
            telemetry=log,
        )
        for sent, acked in zip(log.video_sent, log.video_acked):
            assert sent.chunk_index == acked.chunk_index
            assert sent.time < acked.time

    def test_transmission_time_recoverable_from_telemetry(self):
        # Appendix B: joining video_sent and video_acked yields the chunk's
        # transmission time.
        log = TelemetryLog()
        result = simulate_stream(
            iter(menus()), FixedRung(2), fast_connection(), watch_time_s=30.0,
            telemetry=log,
        )
        for record, sent, acked in zip(
            result.records, log.video_sent, log.video_acked
        ):
            assert acked.time - sent.time == pytest.approx(
                record.transmission_time
            )

    def test_startup_event_logged(self):
        log = TelemetryLog()
        simulate_stream(
            iter(menus()), FixedRung(0), fast_connection(), watch_time_s=20.0,
            telemetry=log,
        )
        events = [r.event for r in log.client_buffer]
        assert BufferEvent.STARTUP in events

    def test_rebuffer_event_logged_on_stall(self):
        log = TelemetryLog()
        simulate_stream(
            iter(menus()),
            FixedRung(9),
            TcpConnection(ConstantLink(3e5), base_rtt=0.05),
            watch_time_s=60.0,
            telemetry=log,
        )
        events = [r.event for r in log.client_buffer]
        assert BufferEvent.REBUFFER in events

    def test_cum_rebuf_monotone(self):
        log = TelemetryLog()
        simulate_stream(
            iter(menus()),
            FixedRung(8),
            TcpConnection(ConstantLink(8e5), base_rtt=0.05),
            watch_time_s=60.0,
            telemetry=log,
        )
        values = [r.cum_rebuf for r in log.client_buffer]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))


class TestExtensionHook:
    def test_hook_extends_watch_time(self):
        calls = []

        def hook(t, result):
            calls.append(t)
            return 30.0 if len(calls) == 1 else 0.0

        result = simulate_stream(
            iter(menus(10_000)), FixedRung(0), fast_connection(),
            watch_time_s=30.0, extension_hook=hook,
        )
        assert calls
        assert result.total_time > 35.0

    def test_hook_declining_keeps_intended_time(self):
        result = simulate_stream(
            iter(menus(10_000)), FixedRung(0), fast_connection(),
            watch_time_s=30.0, extension_hook=lambda t, r: 0.0,
        )
        assert result.total_time == pytest.approx(30.0, abs=2.5)

"""Tests for repro.streaming.telemetry — open-data record formats."""

from repro.net.tcp import TcpInfo
from repro.streaming.telemetry import (
    BufferEvent,
    ClientBufferRecord,
    TelemetryLog,
    VideoAckedRecord,
    VideoSentRecord,
)


def info():
    return TcpInfo(cwnd=42.0, in_flight=7.0, min_rtt=0.04, rtt=0.055,
                   delivery_rate=6.5e6)


class TestRecords:
    def test_video_sent_from_send_copies_tcp_info(self):
        rec = VideoSentRecord.from_send(
            time=1.5, stream_id=2, expt_id=3, chunk_index=4,
            size=100_000, ssim_index=0.98, info=info(),
        )
        assert rec.cwnd == 42.0
        assert rec.in_flight == 7.0
        assert rec.min_rtt == 0.04
        assert rec.rtt == 0.055
        assert rec.delivery_rate == 6.5e6

    def test_video_sent_has_appendix_b_fields(self):
        rec = VideoSentRecord.from_send(
            time=0.0, stream_id=0, expt_id=0, chunk_index=0,
            size=1.0, ssim_index=0.9, info=info(),
        )
        d = rec.to_dict()
        for field in ("time", "stream_id", "expt_id", "size", "ssim_index",
                      "cwnd", "in_flight", "min_rtt", "rtt", "delivery_rate"):
            assert field in d

    def test_client_buffer_event_serialized_as_string(self):
        rec = ClientBufferRecord(
            time=0.0, stream_id=1, expt_id=1, event=BufferEvent.REBUFFER,
            buffer=3.5, cum_rebuf=1.0,
        )
        assert rec.to_dict()["event"] == "rebuffer"

    def test_video_acked_to_dict(self):
        rec = VideoAckedRecord(time=2.0, stream_id=1, expt_id=1, chunk_index=5)
        assert rec.to_dict() == {
            "time": 2.0, "stream_id": 1, "expt_id": 1, "chunk_index": 5,
        }


class TestTelemetryLog:
    def test_extend_merges(self):
        a, b = TelemetryLog(), TelemetryLog()
        a.video_acked.append(VideoAckedRecord(0.0, 0, 0, 0))
        b.video_acked.append(VideoAckedRecord(1.0, 1, 0, 0))
        b.client_buffer.append(
            ClientBufferRecord(0.0, 1, 0, BufferEvent.TIMER, 1.0, 0.0)
        )
        a.extend(b)
        assert len(a.video_acked) == 2
        assert len(a.client_buffer) == 1
        assert len(a) == 3

    def test_empty_log(self):
        assert len(TelemetryLog()) == 0

"""Tests for repro.streaming.telemetry — open-data record formats."""

import json

from repro.net.tcp import TcpInfo
from repro.streaming.telemetry import (
    BufferEvent,
    ClientBufferRecord,
    TelemetryLog,
    VideoAckedRecord,
    VideoSentRecord,
)


def info():
    return TcpInfo(cwnd=42.0, in_flight=7.0, min_rtt=0.04, rtt=0.055,
                   delivery_rate=6.5e6)


class TestRecords:
    def test_video_sent_from_send_copies_tcp_info(self):
        rec = VideoSentRecord.from_send(
            time=1.5, stream_id=2, expt_id=3, chunk_index=4,
            size=100_000, ssim_index=0.98, info=info(),
        )
        assert rec.cwnd == 42.0
        assert rec.in_flight == 7.0
        assert rec.min_rtt == 0.04
        assert rec.rtt == 0.055
        assert rec.delivery_rate == 6.5e6

    def test_video_sent_has_appendix_b_fields(self):
        rec = VideoSentRecord.from_send(
            time=0.0, stream_id=0, expt_id=0, chunk_index=0,
            size=1.0, ssim_index=0.9, info=info(),
        )
        d = rec.to_dict()
        for field in ("time", "stream_id", "expt_id", "size", "ssim_index",
                      "cwnd", "in_flight", "min_rtt", "rtt", "delivery_rate"):
            assert field in d

    def test_client_buffer_event_serialized_as_string(self):
        rec = ClientBufferRecord(
            time=0.0, stream_id=1, expt_id=1, event=BufferEvent.REBUFFER,
            buffer=3.5, cum_rebuf=1.0,
        )
        assert rec.to_dict()["event"] == "rebuffer"

    def test_video_acked_to_dict(self):
        rec = VideoAckedRecord(time=2.0, stream_id=1, expt_id=1, chunk_index=5)
        assert rec.to_dict() == {
            "time": 2.0, "stream_id": 1, "expt_id": 1, "chunk_index": 5,
        }


class TestTelemetryLog:
    def test_extend_merges(self):
        a, b = TelemetryLog(), TelemetryLog()
        a.video_acked.append(VideoAckedRecord(0.0, 0, 0, 0))
        b.video_acked.append(VideoAckedRecord(1.0, 1, 0, 0))
        b.client_buffer.append(
            ClientBufferRecord(0.0, 1, 0, BufferEvent.TIMER, 1.0, 0.0)
        )
        a.extend(b)
        assert len(a.video_acked) == 2
        assert len(a.client_buffer) == 1
        assert len(a) == 3

    def test_empty_log(self):
        assert len(TelemetryLog()) == 0


def roundtrip(rec):
    """to_dict -> JSON text -> parse -> from_dict, like the open data."""
    return type(rec).from_dict(json.loads(json.dumps(rec.to_dict())))


class TestJsonRoundTrip:
    """Every record type survives asdict -> JSON -> parse *exactly*."""

    def sent(self):
        return VideoSentRecord.from_send(
            time=12.25, stream_id=7, expt_id=3, chunk_index=11,
            size=250_000.0, ssim_index=0.9712, info=info(),
        )

    def acked(self):
        return VideoAckedRecord(time=12.5, stream_id=7, expt_id=3,
                                chunk_index=11)

    def buffered(self, event=BufferEvent.REBUFFER):
        return ClientBufferRecord(
            time=13.0, stream_id=7, expt_id=3, event=event,
            buffer=4.25, cum_rebuf=0.75,
        )

    def test_video_sent_roundtrip_exact(self):
        rec = self.sent()
        back = roundtrip(rec)
        assert back == rec
        assert back.to_dict() == rec.to_dict()
        # Types, not just values: stream ids are dict keys downstream.
        assert type(back.stream_id) is int
        assert type(back.time) is float

    def test_video_acked_roundtrip_exact(self):
        rec = self.acked()
        back = roundtrip(rec)
        assert back == rec
        assert type(back.chunk_index) is int

    def test_client_buffer_roundtrip_exact_every_event(self):
        for event in BufferEvent:
            rec = self.buffered(event)
            back = roundtrip(rec)
            assert back == rec
            # The historical bug: a parsed record carried a plain-str event
            # that compared equal but crashed to_dict (`str` has no .value).
            assert isinstance(back.event, BufferEvent)
            assert back.to_dict() == rec.to_dict()

    def test_client_buffer_accepts_plain_string_event(self):
        rec = ClientBufferRecord(
            time=0.0, stream_id=1, expt_id=1, event="startup",
            buffer=0.0, cum_rebuf=0.0,
        )
        assert rec.event is BufferEvent.STARTUP
        assert rec.to_dict()["event"] == "startup"

    def test_int_typed_fields_coerced_from_json_floats(self):
        # A permissive producer may emit 7.0 for an integer column.
        data = self.acked().to_dict()
        data["stream_id"] = 7.0
        back = VideoAckedRecord.from_dict(data)
        assert back == self.acked()
        assert type(back.stream_id) is int

    def test_telemetry_log_roundtrip(self):
        log = TelemetryLog()
        log.video_sent.append(self.sent())
        log.video_acked.append(self.acked())
        log.client_buffer.append(self.buffered())
        back = TelemetryLog.from_json(log.to_json())
        assert back.video_sent == log.video_sent
        assert back.video_acked == log.video_acked
        assert back.client_buffer == log.client_buffer
        assert back.to_json() == log.to_json()

    def test_from_send_normalizes_numpy_scalars(self):
        np = __import__("numpy")
        rec = VideoSentRecord.from_send(
            time=np.float64(1.5), stream_id=np.int64(2), expt_id=3,
            chunk_index=np.int32(4), size=np.float64(1e5),
            ssim_index=0.98, info=info(),
        )
        # json.dumps chokes on np.int64; builtin coercion at the source
        # keeps the row serializable and round-trip type-exact.
        text = json.dumps(rec.to_dict())
        assert VideoSentRecord.from_dict(json.loads(text)) == rec
        assert type(rec.stream_id) is int
        assert type(rec.size) is float

"""Tests for the periodic client_buffer TIMER reports (Appendix B)."""

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS
from repro.net.link import ConstantLink
from repro.net.tcp import TcpConnection
from repro.streaming import BufferEvent, TelemetryLog, simulate_stream


def run(interval, watch=30.0, rate=2e7):
    log = TelemetryLog()
    simulate_stream(
        iter(encode_clip(DEFAULT_CHANNELS[0], 200, seed=0)),
        BBA(),
        TcpConnection(ConstantLink(rate), base_rtt=0.03),
        watch_time_s=watch,
        telemetry=log,
        buffer_report_interval=interval,
    )
    return log


class TestTimerReports:
    def test_disabled_by_default(self):
        log = run(None)
        timers = [
            r for r in log.client_buffer if r.event == BufferEvent.TIMER
        ]
        # Only the per-chunk TIMER records from chunk completion remain.
        assert len(timers) < 50

    def test_quarter_second_cadence(self):
        log = run(0.25, watch=20.0)
        timers = [
            r
            for r in log.client_buffer
            if r.event == BufferEvent.TIMER and r.time % 0.25 < 1e-9
        ]
        # ~80 quarter-second boundaries in 20 s of playback.
        assert len(timers) >= 60

    def test_report_times_monotone(self):
        log = run(0.25, watch=15.0)
        periodic = [
            r.time
            for r in log.client_buffer
            if r.event == BufferEvent.TIMER
        ]
        assert periodic == sorted(periodic)

    def test_reported_buffer_bounded(self):
        log = run(0.25, watch=20.0)
        for record in log.client_buffer:
            assert 0.0 <= record.buffer <= 15.0 + 1e-9

    def test_cum_rebuf_monotone_across_reports(self):
        # 0.25 Mbit/s: below the lowest rung's bitrate, so stalls occur.
        log = run(0.25, watch=40.0, rate=2.5e5)
        values = [r.cum_rebuf for r in log.client_buffer]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
        assert values[-1] > 0  # the slow path did stall

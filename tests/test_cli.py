"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.minutes == 5.0
        assert args.mbps == 6.0

    def test_detectability_args(self):
        args = build_parser().parse_args(
            ["detectability", "--streams", "100", "200", "--trials", "3"]
        )
        assert args.streams == [100, 200]
        assert args.trials == 3


class TestCommands:
    def test_quickstart_runs(self, capsys):
        code = main(["quickstart", "--minutes", "0.5", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bba" in out
        assert "mpc_hm" in out

    def test_detectability_runs(self, capsys):
        code = main(
            [
                "detectability",
                "--streams", "100",
                "--trials", "2",
                "--improvement", "0.5",
            ]
        )
        assert code == 0
        assert "P(detect)" in capsys.readouterr().out

    def test_train_fugu_writes_model(self, tmp_path, capsys):
        out_file = tmp_path / "ttp.json"
        code = main(
            [
                "train-fugu",
                "--streams", "6",
                "--iterations", "0",
                "--epochs", "1",
                "--output", str(out_file),
            ]
        )
        assert code == 0
        state = json.loads(out_file.read_text())
        assert len(state["models"]) == 5

    def test_saved_model_loads_back(self, tmp_path):
        from repro.core.ttp import TransmissionTimePredictor

        out_file = tmp_path / "ttp.json"
        main(
            [
                "train-fugu",
                "--streams", "6",
                "--iterations", "0",
                "--epochs", "1",
                "--output", str(out_file),
            ]
        )
        predictor = TransmissionTimePredictor()
        predictor.load_state_dict(json.loads(out_file.read_text()))

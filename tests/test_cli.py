"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.minutes == 5.0
        assert args.mbps == 6.0

    def test_detectability_args(self):
        args = build_parser().parse_args(
            ["detectability", "--streams", "100", "200", "--trials", "3"]
        )
        assert args.streams == [100, 200]
        assert args.trials == 3


class TestCommands:
    def test_quickstart_runs(self, capsys):
        code = main(["quickstart", "--minutes", "0.5", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bba" in out
        assert "mpc_hm" in out

    def test_detectability_runs(self, capsys):
        code = main(
            [
                "detectability",
                "--streams", "100",
                "--trials", "2",
                "--improvement", "0.5",
            ]
        )
        assert code == 0
        assert "P(detect)" in capsys.readouterr().out

    def test_train_fugu_writes_model(self, tmp_path, capsys):
        out_file = tmp_path / "ttp.json"
        code = main(
            [
                "train-fugu",
                "--streams", "6",
                "--iterations", "0",
                "--epochs", "1",
                "--output", str(out_file),
            ]
        )
        assert code == 0
        state = json.loads(out_file.read_text())
        assert len(state["models"]) == 5

    def test_saved_model_loads_back(self, tmp_path):
        from repro.core.ttp import TransmissionTimePredictor

        out_file = tmp_path / "ttp.json"
        main(
            [
                "train-fugu",
                "--streams", "6",
                "--iterations", "0",
                "--epochs", "1",
                "--output", str(out_file),
            ]
        )
        predictor = TransmissionTimePredictor()
        predictor.load_state_dict(json.loads(out_file.read_text()))


class TestObsCommands:
    def test_obs_parser_defaults(self):
        args = build_parser().parse_args(["obs", "collect"])
        assert args.sessions == 32
        assert args.workers == 1
        assert args.out == "metrics.json"
        assert args.deterministic is False

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_obs_collect_writes_dump(self, tmp_path, capsys):
        out_file = tmp_path / "metrics.json"
        code = main(
            [
                "obs", "collect",
                "--sessions", "4",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        dump = json.loads(out_file.read_text())
        assert dump["schema_version"] == 1
        assert dump["metrics"]["counters"]["trial.sessions"] == 4
        assert "tcp.rounds" in dump["metrics"]["counters"]
        captured = capsys.readouterr()
        assert "counters:" in captured.out
        assert "events:" in captured.out

    def test_obs_collect_deterministic_excludes_wallclock(self, tmp_path):
        out_file = tmp_path / "metrics.json"
        main(
            [
                "obs", "collect",
                "--sessions", "3",
                "--deterministic",
                "--out", str(out_file),
            ]
        )
        dump = json.loads(out_file.read_text())
        names = list(dump["metrics"]["counters"]) + list(
            dump["metrics"]["histograms"]
        )
        assert not any(n.startswith("profile.") for n in names)
        assert dump["metrics"]["wallclock"] == []

    def test_obs_collect_deterministic_dump_stable_across_workers(
        self, tmp_path
    ):
        files = []
        for workers in ("1", "2"):
            path = tmp_path / f"metrics-{workers}.json"
            main(
                [
                    "obs", "collect",
                    "--sessions", "6",
                    "--workers", workers,
                    "--deterministic",
                    "--out", str(path),
                ]
            )
            files.append(path.read_bytes())
        assert files[0] == files[1]

    def test_obs_summary_renders_dump(self, tmp_path, capsys):
        out_file = tmp_path / "metrics.json"
        main(["obs", "collect", "--sessions", "3", "--out", str(out_file)])
        capsys.readouterr()  # drop collect output
        code = main(["obs", "summary", str(out_file), "--events", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "trial.sessions" in out
        assert "histograms" in out

    def test_trial_metrics_out(self, tmp_path, capsys):
        from repro import obs
        from repro.__main__ import _obs_collect_specs
        from repro.experiment import RandomizedTrial, TrialConfig

        # Exercise the plumbing `repro trial --metrics-out` uses without
        # paying for scheme training: an instrumented mini-trial dumped via
        # TrialResult.dump_metrics.
        trial = RandomizedTrial(
            _obs_collect_specs(),
            TrialConfig(n_sessions=3, seed=1, observability=True),
        ).run()
        path = tmp_path / "trial-metrics.json"
        trial.dump_metrics(str(path))
        assert trial.metrics_path == str(path)
        dump = json.loads(path.read_text())
        assert dump["schema_version"] == obs.SCHEMA_VERSION
        assert dump["metrics"]["counters"]["trial.sessions"] == 3

    def test_trial_parser_metrics_out_default(self):
        args = build_parser().parse_args(["trial"])
        assert args.metrics_out is None

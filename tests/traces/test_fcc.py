"""Tests for repro.traces.fcc — FCC-style trace synthesis."""

import numpy as np
import pytest

from repro.traces.fcc import (
    FccTraceConfig,
    fcc_trace_link,
    generate_fcc_dataset,
    generate_fcc_trace,
)


class TestGenerate:
    def test_duration(self):
        trace = generate_fcc_trace(FccTraceConfig(duration_s=100), seed=0)
        assert len(trace) == 100

    def test_cap_respected(self):
        config = FccTraceConfig(cap_bps=12e6)
        for seed in range(20):
            trace = generate_fcc_trace(config, seed=seed)
            assert max(trace) <= 12e6

    def test_means_span_configured_band(self):
        config = FccTraceConfig()
        means = [
            np.mean(generate_fcc_trace(config, seed=s)) for s in range(200)
        ]
        assert min(means) < 1e6  # slow DSL-like traces present
        assert max(means) > 3e6  # faster cable-like traces present

    def test_within_trace_variability_is_mild(self):
        # FCC broadband traces are tame compared with Puffer paths — the
        # crux of the Fig. 11 mismatch.
        config = FccTraceConfig()
        cvs = []
        for seed in range(30):
            trace = np.array(generate_fcc_trace(config, seed=seed))
            cvs.append(trace.std() / trace.mean())
        assert np.mean(cvs) < 0.5

    def test_no_deep_outages(self):
        config = FccTraceConfig()
        for seed in range(30):
            trace = np.array(generate_fcc_trace(config, seed=seed))
            assert trace.min() > trace.mean() * 0.2

    def test_tamer_than_heavy_tail_link(self):
        from repro.net.link import HeavyTailLink
        from repro.traces.stats import summarize_trace

        fcc = summarize_trace(generate_fcc_trace(seed=1))
        puffer = summarize_trace(
            HeavyTailLink(base_bps=3e6, fade_rate=0.02, seed=1).sample_epochs(
                320, epoch=1.0
            )
        )
        assert fcc.tail_ratio < puffer.tail_ratio

    def test_deterministic_given_seed(self):
        assert generate_fcc_trace(seed=5) == generate_fcc_trace(seed=5)

    def test_dataset_size_and_variety(self):
        traces = generate_fcc_dataset(10, seed=0)
        assert len(traces) == 10
        means = [np.mean(t) for t in traces]
        assert len(set(np.round(means, 0))) > 5

    def test_dataset_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            generate_fcc_dataset(0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FccTraceConfig(duration_s=0)
        with pytest.raises(ValueError):
            FccTraceConfig(min_mean_bps=8e6, max_mean_bps=4e6)
        with pytest.raises(ValueError):
            FccTraceConfig(reversion=0.0)

    def test_link_builder(self):
        link = fcc_trace_link(seed=3)
        assert link.capacity_at(0.0) > 0
        assert link.loop

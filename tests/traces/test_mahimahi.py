"""Tests for repro.traces.mahimahi — trace format I/O."""

import pytest

from repro.net.link import TraceLink
from repro.traces.mahimahi import (
    PACKET_BITS,
    link_from_mahimahi,
    rates_to_trace,
    read_mahimahi_trace,
    trace_to_rates,
    write_mahimahi_trace,
)


class TestIo:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace"
        times = [0, 5, 5, 12, 100]
        write_mahimahi_trace(path, times)
        assert read_mahimahi_trace(path) == times

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace"
        path.write_text("1\n\n2\n\n")
        assert read_mahimahi_trace(path) == [1, 2]

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "trace"
        path.write_text("1\nfoo\n")
        with pytest.raises(ValueError, match="not an integer"):
            read_mahimahi_trace(path)

    def test_decreasing_timestamps_rejected(self, tmp_path):
        path = tmp_path / "trace"
        path.write_text("5\n3\n")
        with pytest.raises(ValueError, match="non-decreasing"):
            read_mahimahi_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "trace"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_mahimahi_trace(path)

    def test_write_rejects_decreasing(self, tmp_path):
        with pytest.raises(ValueError):
            write_mahimahi_trace(tmp_path / "t", [3, 1])

    def test_write_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_mahimahi_trace(tmp_path / "t", [])


class TestConversion:
    def test_trace_to_rates_counts_packets(self):
        # 4 packets in the first second -> 4 * 12000 bits/s.
        rates = trace_to_rates([0, 250, 500, 750, 1500], epoch=1.0)
        assert rates[0] == 4 * PACKET_BITS
        assert rates[1] == 1 * PACKET_BITS

    def test_rates_to_trace_preserves_rate(self):
        rates = [1.2e6, 2.4e6]
        times = rates_to_trace(rates, epoch=1.0)
        recovered = trace_to_rates(times, epoch=1.0)
        assert recovered[0] == pytest.approx(1.2e6, rel=0.01)
        assert recovered[1] == pytest.approx(2.4e6, rel=0.01)

    def test_rates_to_trace_rejects_too_slow(self):
        with pytest.raises(ValueError, match="no packets"):
            rates_to_trace([10.0], epoch=1.0)

    def test_link_from_mahimahi(self):
        times = rates_to_trace([1.2e6] * 5, epoch=1.0)
        link = link_from_mahimahi(times, epoch=1.0)
        assert isinstance(link, TraceLink)
        assert link.capacity_at(2.0) == pytest.approx(1.2e6, rel=0.01)

    def test_invalid_epoch(self):
        with pytest.raises(ValueError):
            trace_to_rates([0, 1], epoch=0.0)

"""Tests for repro.traces.stats — trace statistics and the Fig. 2 modality
discriminator."""

import numpy as np
import pytest

from repro.net.link import HeavyTailLink, MarkovLink
from repro.traces.stats import (
    pooled_throughput_distribution,
    summarize_trace,
)


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize_trace([1e6, 2e6, 3e6, 4e6])
        assert stats.mean_bps == pytest.approx(2.5e6)
        assert stats.median_bps == pytest.approx(2.5e6)
        assert stats.n_epochs == 4

    def test_constant_trace(self):
        stats = summarize_trace([5e6] * 100)
        assert stats.std_bps == 0.0
        assert stats.coefficient_of_variation == 0.0
        assert stats.modality_score == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_trace([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            summarize_trace([1.0, -1.0])

    def test_tail_ratio(self):
        stats = summarize_trace(list(np.linspace(1e6, 10e6, 100)))
        assert stats.tail_ratio > 5

    def test_markov_link_is_multimodal(self):
        # Fig. 2a: CS2P-style discrete states produce a multimodal
        # log-throughput histogram.
        link = MarkovLink(
            [1e6, 8e6], switch_probability=0.05, jitter_sigma=0.02, seed=0
        )
        stats = summarize_trace(link.sample_epochs(800, epoch=1.0))
        assert stats.modality_score >= 2

    def test_heavy_tail_link_is_unimodal(self):
        # Fig. 2b: Puffer-style continuous evolution has one broad mode.
        link = HeavyTailLink(base_bps=3e6, fade_rate=0.0, seed=0)
        stats = summarize_trace(link.sample_epochs(800, epoch=1.0))
        assert stats.modality_score <= 2

    def test_modality_discriminates_on_average(self):
        markov_scores, heavy_scores = [], []
        for seed in range(10):
            markov = MarkovLink(
                [8e5, 4e6, 2e7], switch_probability=0.04,
                jitter_sigma=0.03, seed=seed,
            )
            heavy = HeavyTailLink(base_bps=4e6, fade_rate=0.0, seed=seed)
            markov_scores.append(
                summarize_trace(markov.sample_epochs(600, epoch=1.0)).modality_score
            )
            heavy_scores.append(
                summarize_trace(heavy.sample_epochs(600, epoch=1.0)).modality_score
            )
        assert np.mean(markov_scores) > np.mean(heavy_scores)


class TestPooled:
    def test_pooled_distribution(self):
        pooled = pooled_throughput_distribution([[1.0, 2.0], [3.0]])
        assert pooled == [1.0, 2.0, 3.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pooled_throughput_distribution([])
